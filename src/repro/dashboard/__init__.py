"""``python -m repro.dashboard``: a stdlib-only live view over a trace file.

Tails any telemetry sink (JSONL or SQLite) with a
:class:`~repro.telemetry.sinks.TraceFollower` and serves a small
auto-refreshing web page -- cluster utilisation, queue depth, per-shard
imbalance and restart counters, and live JCT percentiles -- from
``http.server``.  No third-party dependencies, no websockets: the page
polls ``/data`` (a JSON snapshot) every couple of seconds, which is plenty
for a scheduler whose rounds are minutes long.

The aggregation lives in :class:`DashboardAggregator`, a pure fold over
:class:`~repro.telemetry.events.TraceEvent` streams, so tests (and
``--once``, the CI smoke mode) can use it without binding a port.
"""

from __future__ import annotations

import argparse
import http.server
import json
import math
import threading
from typing import Dict, List, Optional

from repro.telemetry.events import (
    EVENT_FEDERATION,
    EVENT_JOB,
    EVENT_ROUND,
    EVENT_ROUTE,
    EVENT_RPC_FAULTS,
    EVENT_SUPERVISOR,
    TraceEvent,
)
from repro.telemetry.sinks import TraceFollower


def percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 100]); None on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class DashboardAggregator:
    """Folds a trace's event stream into the dashboard's display state."""

    def __init__(self) -> None:
        self.events_seen = 0
        self.last_time = 0.0
        #: source -> latest round payload (utilisation / queue / running).
        self.rounds: Dict[str, Dict[str, object]] = {}
        #: source -> supervisor restart / degrade counters.
        self.restarts: Dict[str, Dict[str, int]] = {}
        self.jcts: List[float] = []
        self.jobs_tracked = 0
        self.jobs_finished = 0
        self.routed: Dict[str, int] = {}
        self.rpc_faults: Dict[str, object] = {}
        self.federation: Dict[str, object] = {}

    def consume(self, events: List[TraceEvent]) -> None:
        for event in events:
            self.events_seen += 1
            self.last_time = max(self.last_time, event.time)
            payload = dict(event.payload)
            if event.kind == EVENT_ROUND:
                self.rounds[event.source] = payload
            elif event.kind == EVENT_JOB:
                op = payload.get("op")
                if op == "tracked":
                    self.jobs_tracked += 1
                elif op == "status" and "jct" in payload:
                    self.jobs_finished += 1
                    self.jcts.append(float(payload["jct"]))
            elif event.kind == EVENT_SUPERVISOR:
                counters = self.restarts.setdefault(
                    event.source, {"restart": 0, "degrade": 0, "checkpoint": 0}
                )
                op = str(payload.get("op"))
                counters[op] = counters.get(op, 0) + 1
            elif event.kind == EVENT_ROUTE:
                shard = f"shard{payload.get('shard')}"
                self.routed[shard] = self.routed.get(shard, 0) + 1
            elif event.kind == EVENT_RPC_FAULTS:
                self.rpc_faults = payload
            elif event.kind == EVENT_FEDERATION:
                self.federation = payload

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state for ``/data`` and the ``--once`` text view."""
        shards = sorted(s for s in self.rounds if s.startswith("shard"))
        utils = [float(self.rounds[s].get("utilization", 0.0)) for s in shards]
        imbalance = (max(utils) - min(utils)) if len(utils) > 1 else 0.0
        return {
            "events": self.events_seen,
            "sim_time": self.last_time,
            "jobs": {
                "tracked": self.jobs_tracked,
                "finished": self.jobs_finished,
                "in_flight": self.jobs_tracked - self.jobs_finished,
            },
            "jct": {
                "p50": percentile(self.jcts, 50),
                "p90": percentile(self.jcts, 90),
                "p99": percentile(self.jcts, 99),
            },
            "sources": {
                source: {
                    "round": payload.get("round"),
                    "running": payload.get("running"),
                    "queued": payload.get("queued"),
                    "utilization": payload.get("utilization"),
                    "routed": self.routed.get(source),
                    "restarts": self.restarts.get(source, {}).get("restart", 0),
                }
                for source, payload in sorted(self.rounds.items())
            },
            "shard_imbalance": round(imbalance, 6),
            "supervisor": self.restarts,
            "rpc_faults": self.rpc_faults,
            "federation": self.federation,
        }

    def render_text(self) -> str:
        """Plain-text snapshot (the ``--once`` mode / smoke check)."""
        snap = self.snapshot()
        lines = [
            f"events={snap['events']}  sim_time={snap['sim_time']:.0f}s",
            "jobs: tracked={tracked} finished={finished} in-flight={in_flight}".format(
                **snap["jobs"]
            ),
        ]
        jct = snap["jct"]
        if jct["p50"] is not None:
            lines.append(
                "jct: p50={p50:.0f}s p90={p90:.0f}s p99={p99:.0f}s".format(**jct)
            )
        for source, row in snap["sources"].items():
            util = row["utilization"]
            lines.append(
                f"  {source:<12} round={row['round']} running={row['running']} "
                f"queued={row['queued']} "
                f"util={'-' if util is None else format(float(util), '.3f')} "
                f"restarts={row['restarts']}"
            )
        if len([s for s in snap["sources"] if s.startswith("shard")]) > 1:
            lines.append(f"shard imbalance (max-min util): {snap['shard_imbalance']:.3f}")
        return "\n".join(lines)


_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>repro dashboard</title>
<style>
 body { font-family: ui-monospace, monospace; background: #111; color: #ddd;
        margin: 2em; }
 h1 { font-size: 1.1em; color: #9cf; }
 table { border-collapse: collapse; margin: 1em 0; }
 td, th { padding: 0.25em 0.9em; border-bottom: 1px solid #333;
          text-align: right; }
 th { color: #9cf; } td:first-child, th:first-child { text-align: left; }
 .bar { display: inline-block; height: 0.7em; background: #4a8;
        vertical-align: middle; }
 #meta { color: #888; }
</style></head>
<body>
<h1>repro telemetry &mdash; <span id="trace"></span></h1>
<div id="meta">waiting for data&hellip;</div>
<table id="jobs"></table>
<table id="sources"></table>
<script>
function row(cells, tag) {
  return "<tr>" + cells.map(c => "<" + (tag||"td") + ">" + c +
         "</" + (tag||"td") + ">").join("") + "</tr>";
}
function fmt(x, d) { return x == null ? "-" : Number(x).toFixed(d); }
async function tick() {
  try {
    const r = await fetch("/data");
    const s = await r.json();
    document.getElementById("trace").textContent = s.trace;
    document.getElementById("meta").textContent =
      s.events + " events, sim time " + fmt(s.sim_time, 0) + "s" +
      (s.shard_imbalance ? ", shard imbalance " + fmt(s.shard_imbalance, 3) : "");
    document.getElementById("jobs").innerHTML =
      row(["jobs tracked", "finished", "in flight",
           "JCT p50", "p90", "p99"], "th") +
      row([s.jobs.tracked, s.jobs.finished, s.jobs.in_flight,
           fmt(s.jct.p50, 0) + "s", fmt(s.jct.p90, 0) + "s",
           fmt(s.jct.p99, 0) + "s"]);
    let html = row(["source", "round", "running", "queued",
                    "utilization", "", "restarts"], "th");
    for (const [src, v] of Object.entries(s.sources)) {
      const u = v.utilization == null ? 0 : v.utilization;
      html += row([src, v.round, v.running, v.queued, fmt(v.utilization, 3),
        '<span class="bar" style="width:' + Math.round(u * 120) + 'px"></span>',
        v.restarts]);
    }
    document.getElementById("sources").innerHTML = html;
  } catch (e) { document.getElementById("meta").textContent = "poll failed: " + e; }
}
tick(); setInterval(tick, 2000);
</script>
</body></html>
"""


class _Handler(http.server.BaseHTTPRequestHandler):
    aggregator: DashboardAggregator
    follower: TraceFollower
    lock: threading.Lock
    trace_path: str

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/data":
            with self.lock:
                self.aggregator.consume(self.follower.poll())
                body = dict(self.aggregator.snapshot(), trace=self.trace_path)
            payload = json.dumps(body).encode("utf-8")
            self._respond(payload, "application/json")
        elif self.path == "/":
            self._respond(_PAGE.encode("utf-8"), "text/html; charset=utf-8")
        else:
            self.send_error(404)

    def _respond(self, body: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: object) -> None:  # quiet by default
        pass


def serve(trace_path: str, host: str, port: int) -> None:
    aggregator = DashboardAggregator()
    handler = type(
        "BoundHandler",
        (_Handler,),
        {
            "aggregator": aggregator,
            "follower": TraceFollower(trace_path),
            "lock": threading.Lock(),
            "trace_path": trace_path,
        },
    )
    with http.server.ThreadingHTTPServer((host, port), handler) as server:
        bound = server.socket.getsockname()
        print(f"dashboard on http://{bound[0]}:{bound[1]}/ tailing {trace_path}")
        server.serve_forever()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dashboard",
        description=(
            "Live web dashboard over a telemetry trace (JSONL or SQLite). "
            "Tails the file as the run writes it; works equally on a "
            "finished trace."
        ),
    )
    parser.add_argument("trace", help="trace file to tail")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8800)
    parser.add_argument(
        "--once",
        action="store_true",
        help="print one text snapshot of the trace and exit (no server)",
    )
    args = parser.parse_args(argv)

    if args.once:
        aggregator = DashboardAggregator()
        aggregator.consume(TraceFollower(args.trace).poll())
        print(aggregator.render_text())
        return 0
    try:
        serve(args.trace, args.host, args.port)
    except KeyboardInterrupt:
        pass
    return 0
