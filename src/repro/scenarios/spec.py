"""Declarative scenario specifications and their deterministic compilation.

A :class:`ScenarioSpec` bundles everything one dynamic-cluster experiment
needs: the initial cluster (:class:`~repro.cluster.builder.ClusterSpec`), a
workload generator reference (:class:`WorkloadSpec`) and a *timeline* of
declarative entries -- scheduled failures and recoveries, capacity scale-out
and scale-in, GPU-generation upgrades, spot-preemption waves, maintenance
windows, Bernoulli churn and load spikes.  Entries may be stochastic ("fail
25% of the nodes"); :meth:`ScenarioSpec.compile` resolves every choice with
a seed into a pre-sampled stream of concrete
:class:`~repro.scenarios.events.ClusterEvent`s plus a concrete trace, so the
same ``(spec, seed)`` pair always yields bit-identical dynamics.

The compiled stream drives a
:class:`~repro.scenarios.timeline.TimelineClusterManager`, whose
``next_event_time`` lets the simulator fast-forward between churn events --
scenario dynamics cost full rounds only where something actually happens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.builder import ClusterSpec, build_cluster_from_spec
from repro.cluster.failures import FailureInjector
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.scenarios.events import (
    ClusterEvent,
    GpuUpgradeEvent,
    NodeFailureEvent,
    NodeRecoveryEvent,
    ScaleInEvent,
    ScaleOutEvent,
)
from repro.scenarios.timeline import TimelineClusterManager
from repro.workloads.bursty import add_spike
from repro.workloads.philly import generate_philly_trace
from repro.workloads.pollux_trace import generate_pollux_trace
from repro.workloads.tiresias_trace import generate_tiresias_trace
from repro.workloads.trace import Trace

__all__ = [
    "WorkloadSpec",
    "CompileContext",
    "TimelineEntry",
    "FailNodes",
    "RecoverNodes",
    "ScaleOut",
    "ScaleIn",
    "UpgradeGpus",
    "Maintenance",
    "SpotWave",
    "BernoulliChurn",
    "LoadSpike",
    "ScenarioSpec",
    "CompiledScenario",
]

#: Workload generator registry: name -> callable(num_jobs, jobs_per_hour, seed).
WORKLOAD_GENERATORS: Dict[str, Callable[..., Trace]] = {
    "philly": generate_philly_trace,
    "pollux": generate_pollux_trace,
    "tiresias": generate_tiresias_trace,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Reference to a trace generator plus its sizing parameters."""

    generator: str = "philly"
    num_jobs: int = 120
    jobs_per_hour: float = 8.0
    #: Extra generator kwargs as a tuple of (name, value) pairs so the spec
    #: stays hashable/frozen.
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.generator not in WORKLOAD_GENERATORS:
            known = ", ".join(sorted(WORKLOAD_GENERATORS))
            raise ConfigurationError(
                f"unknown workload generator {self.generator!r}; known: {known}"
            )
        if self.num_jobs < 1:
            raise ConfigurationError(f"num_jobs must be >= 1, got {self.num_jobs}")
        if self.jobs_per_hour <= 0:
            raise ConfigurationError(f"jobs_per_hour must be > 0, got {self.jobs_per_hour}")

    def build(self, seed: int) -> Trace:
        return WORKLOAD_GENERATORS[self.generator](
            num_jobs=self.num_jobs,
            jobs_per_hour=self.jobs_per_hour,
            seed=seed,
            **dict(self.params),
        )


@dataclass(frozen=True)
class CompileContext:
    """Facts a timeline entry may consult while compiling."""

    #: Node ids of the initial cluster (scale-out ids are assigned later, at
    #: apply time, so stochastic entries sample from the initial pool).
    node_ids: Tuple[int, ...]
    round_duration: float


class TimelineEntry:
    """One declarative element of a scenario timeline.

    Subclasses resolve themselves into concrete cluster events via
    :meth:`compile_events`; the one workload-level entry
    (:class:`LoadSpike`) is handled separately by
    :meth:`ScenarioSpec.compile`, which is the only place that owns the
    trace.  ``rng`` is a per-entry stream derived from the scenario seed and
    the entry's position, so reordering or editing one entry never perturbs
    another's samples.
    """

    def compile_events(
        self, rng: random.Random, ctx: CompileContext
    ) -> List[ClusterEvent]:
        return []


def _resolve_targets(
    rng: random.Random,
    ctx: CompileContext,
    node_ids: Tuple[int, ...],
    count: Optional[int],
    fraction: Optional[float],
    entry_name: str,
) -> Tuple[int, ...]:
    """Resolve an entry's node selection: explicit ids, a count or a fraction.

    Sampling (count/fraction) draws without replacement from the initial
    node pool and returns the chosen ids sorted, so the event's apply order
    is deterministic and readable in logs.
    """
    if node_ids:
        return tuple(node_ids)
    pool = list(ctx.node_ids)
    if fraction is not None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"{entry_name}: fraction must be in [0, 1]")
        count = int(round(fraction * len(pool)))
    if count is None:
        raise ConfigurationError(
            f"{entry_name} needs node_ids, count or fraction to pick targets"
        )
    count = max(0, min(count, len(pool)))
    return tuple(sorted(rng.sample(pool, count)))


@dataclass(frozen=True)
class FailNodes(TimelineEntry):
    """Fail nodes at ``at``; optionally recover them ``recover_after`` later."""

    at: float
    node_ids: Tuple[int, ...] = ()
    count: Optional[int] = None
    fraction: Optional[float] = None
    recover_after: Optional[float] = None

    def compile_events(self, rng, ctx) -> List[ClusterEvent]:
        targets = _resolve_targets(rng, ctx, self.node_ids, self.count, self.fraction, "FailNodes")
        if not targets:
            return []  # a fraction rounding to zero nodes must not emit no-op events
        events: List[ClusterEvent] = [NodeFailureEvent(time=self.at, node_ids=targets)]
        if self.recover_after is not None:
            if self.recover_after <= 0:
                raise ConfigurationError("FailNodes.recover_after must be > 0")
            events.append(
                NodeRecoveryEvent(time=self.at + self.recover_after, node_ids=targets)
            )
        return events


@dataclass(frozen=True)
class RecoverNodes(TimelineEntry):
    """Recover explicitly named nodes at ``at``."""

    at: float
    node_ids: Tuple[int, ...] = ()

    def compile_events(self, rng, ctx) -> List[ClusterEvent]:
        del rng, ctx
        return [NodeRecoveryEvent(time=self.at, node_ids=self.node_ids)]


@dataclass(frozen=True)
class ScaleOut(TimelineEntry):
    """Add ``num_nodes`` fresh nodes at ``at`` (optionally of a newer GPU type)."""

    at: float
    num_nodes: int
    gpus_per_node: int = 4
    gpu_type: str = "v100"
    network_bw_gbps: float = 10.0

    def compile_events(self, rng, ctx) -> List[ClusterEvent]:
        del rng, ctx
        return [
            ScaleOutEvent(
                time=self.at,
                num_nodes=self.num_nodes,
                gpus_per_node=self.gpus_per_node,
                gpu_type=self.gpu_type,
                network_bw_gbps=self.network_bw_gbps,
            )
        ]


@dataclass(frozen=True)
class ScaleIn(TimelineEntry):
    """Remove capacity at ``at``: named nodes, or the newest ``num_nodes``."""

    at: float
    num_nodes: int = 0
    node_ids: Tuple[int, ...] = ()

    def compile_events(self, rng, ctx) -> List[ClusterEvent]:
        del rng, ctx
        return [ScaleInEvent(time=self.at, node_ids=self.node_ids, num_nodes=self.num_nodes)]


@dataclass(frozen=True)
class UpgradeGpus(TimelineEntry):
    """Rolling GPU-generation upgrade: one node every ``stagger`` seconds."""

    at: float
    gpu_type: str = "a100"
    node_ids: Tuple[int, ...] = ()
    count: Optional[int] = None
    fraction: Optional[float] = None
    stagger: float = 0.0

    def compile_events(self, rng, ctx) -> List[ClusterEvent]:
        targets = _resolve_targets(rng, ctx, self.node_ids, self.count, self.fraction, "UpgradeGpus")
        if self.stagger < 0:
            raise ConfigurationError("UpgradeGpus.stagger must be >= 0")
        if not targets:
            return []
        if self.stagger == 0:
            return [GpuUpgradeEvent(time=self.at, node_ids=targets, gpu_type=self.gpu_type)]
        return [
            GpuUpgradeEvent(
                time=self.at + index * self.stagger,
                node_ids=(node_id,),
                gpu_type=self.gpu_type,
            )
            for index, node_id in enumerate(targets)
        ]


@dataclass(frozen=True)
class Maintenance(TimelineEntry):
    """Planned maintenance window: nodes leave at ``start``, return after ``duration``."""

    start: float
    duration: float
    node_ids: Tuple[int, ...] = ()
    count: Optional[int] = None
    fraction: Optional[float] = None

    def compile_events(self, rng, ctx) -> List[ClusterEvent]:
        if self.duration <= 0:
            raise ConfigurationError("Maintenance.duration must be > 0")
        targets = _resolve_targets(rng, ctx, self.node_ids, self.count, self.fraction, "Maintenance")
        if not targets:
            return []
        return [
            NodeFailureEvent(time=self.start, node_ids=targets),
            NodeRecoveryEvent(time=self.start + self.duration, node_ids=targets),
        ]


@dataclass(frozen=True)
class SpotWave(TimelineEntry):
    """Spot-market preemption waves: a fraction of nodes reclaimed, then back.

    Wave ``k`` (of ``repeat``) reclaims a freshly sampled ``fraction`` of the
    initial node pool at ``at + k * period`` and returns it ``outage``
    seconds later.
    """

    at: float
    fraction: float = 0.25
    outage: float = 3600.0
    period: float = 14400.0
    repeat: int = 1

    def compile_events(self, rng, ctx) -> List[ClusterEvent]:
        if self.repeat < 1:
            raise ConfigurationError("SpotWave.repeat must be >= 1")
        if self.outage <= 0:
            raise ConfigurationError("SpotWave.outage must be > 0")
        if self.repeat > 1 and self.period <= 0:
            raise ConfigurationError("SpotWave.period must be > 0 when repeating")
        if self.repeat > 1 and self.outage > self.period:
            # Overlapping waves would be silently truncated: re-failing an
            # already-failed node is a no-op, so the *earlier* wave's recovery
            # would cut the later wave's outage short.  Fail loudly instead.
            raise ConfigurationError(
                "SpotWave.outage must be <= period (waves may not overlap); "
                f"got outage={self.outage}, period={self.period}"
            )
        events: List[ClusterEvent] = []
        for wave in range(self.repeat):
            start = self.at + wave * self.period
            targets = _resolve_targets(
                rng, ctx, (), None, self.fraction, "SpotWave"
            )
            if not targets:
                continue
            events.append(NodeFailureEvent(time=start, node_ids=targets))
            events.append(NodeRecoveryEvent(time=start + self.outage, node_ids=targets))
        return events


@dataclass(frozen=True)
class BernoulliChurn(TimelineEntry):
    """The classic :class:`~repro.cluster.failures.FailureInjector` process.

    Pre-sampled over ``horizon_rounds`` rounds with the injector's exact
    seed-and-draw-order semantics, so runs match what per-round stepping
    with ``FailureInjector(failure_prob, recovery_prob, seed)`` produced --
    without forcing per-round stepping.  ``seed=None`` derives the stream
    from the scenario seed.
    """

    failure_prob: float
    recovery_prob: float
    horizon_rounds: int
    seed: Optional[int] = None

    def compile_events(self, rng, ctx) -> List[ClusterEvent]:
        seed = self.seed if self.seed is not None else rng.randrange(2**31)
        injector = FailureInjector(
            failure_prob=self.failure_prob,
            recovery_prob=self.recovery_prob,
            seed=seed,
        )
        return injector.compile_timeline(
            ctx.node_ids, ctx.round_duration, self.horizon_rounds
        )


@dataclass(frozen=True)
class LoadSpike(TimelineEntry):
    """Workload-level entry: short jobs flooding in during a window.

    Compiled into extra trace jobs (not cluster events) by
    :meth:`ScenarioSpec.compile`; composes with fast-forward through the
    ordinary arrival bound.
    """

    at: float
    num_jobs: int = 16
    duration_seconds: float = 3600.0
    min_minutes: float = 10.0
    max_minutes: float = 60.0
    repeat: int = 1
    period: float = 86400.0

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ConfigurationError("LoadSpike.repeat must be >= 1")
        if self.repeat > 1 and self.period <= 0:
            raise ConfigurationError("LoadSpike.period must be > 0 when repeating")

    def inject(self, trace: Trace, seed: int) -> Trace:
        for wave in range(self.repeat):
            trace = add_spike(
                trace,
                start_time=self.at + wave * self.period,
                num_jobs=self.num_jobs,
                duration_seconds=self.duration_seconds,
                seed=seed + wave,
                min_minutes=self.min_minutes,
                max_minutes=self.max_minutes,
            )
        return trace


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, fully declarative description of one dynamic-cluster scenario."""

    name: str
    cluster: ClusterSpec
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    timeline: Tuple[TimelineEntry, ...] = ()
    round_duration: float = 300.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if self.round_duration <= 0:
            raise ConfigurationError("round_duration must be > 0")

    def compile(self, seed: int) -> "CompiledScenario":
        """Resolve every stochastic choice with ``seed`` into concrete streams.

        Each timeline entry compiles against its own RNG stream derived from
        ``(seed, entry index, entry type)``, so the compilation is a pure
        function of the spec and the seed: same inputs, bit-identical event
        stream and trace, regardless of how many times (or in which process)
        it runs.
        """
        ctx = CompileContext(
            node_ids=tuple(range(self.cluster.num_nodes)),
            round_duration=self.round_duration,
        )
        trace = self.workload.build(seed)
        events: List[ClusterEvent] = []
        for index, entry in enumerate(self.timeline):
            rng = random.Random(f"{seed}/{index}/{type(entry).__name__}")
            if isinstance(entry, LoadSpike):
                trace = entry.inject(trace, seed=rng.randrange(2**31))
            else:
                events.extend(entry.compile_events(rng, ctx))
        events.sort(key=lambda e: e.time)  # stable: equal times keep entry order
        return CompiledScenario(
            spec=self,
            seed=seed,
            trace=trace,
            events=tuple(events),
        )


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario with every random choice made: ready to simulate.

    The event tuple is immutable and shared; per-run mutable state lives in
    the :class:`~repro.scenarios.timeline.TimelineClusterManager`, so call
    :meth:`make_cluster_manager` (and :meth:`build_cluster`,
    ``trace.fresh_jobs()``) once per simulation.
    """

    spec: ScenarioSpec
    seed: int
    trace: Trace
    events: Tuple[ClusterEvent, ...]

    def build_cluster(self) -> ClusterState:
        return build_cluster_from_spec(self.spec.cluster)

    def make_cluster_manager(self) -> TimelineClusterManager:
        return TimelineClusterManager(self.events)

    def with_seed(self, seed: int) -> "CompiledScenario":
        return self.spec.compile(seed)

    def event_times(self) -> List[float]:
        return [event.time for event in self.events]

    def describe(self) -> str:
        cluster = self.spec.cluster
        return (
            f"{self.spec.name}: {cluster.num_nodes}x{cluster.gpus_per_node} "
            f"{cluster.gpu_type} GPUs, {len(self.trace)} jobs, "
            f"{len(self.events)} cluster events"
        )
