"""Concrete, deterministic cluster events.

A :class:`ClusterEvent` is one fully-resolved mutation of cluster membership
at a known simulated time: every random choice was made at scenario-compile
time (see :mod:`repro.scenarios.spec`), so applying the same event stream to
the same cluster always produces the same state.  Events are applied by the
:class:`~repro.scenarios.timeline.TimelineClusterManager` from inside the
scheduling loop's cluster-management step; each ``apply`` returns the ids of
jobs whose allocation was revoked (the engine preempts the running ones so
the policies reschedule them).

Events are tolerant of membership drift: failing a node that was scaled in,
or recovering a node that is already healthy, is a no-op rather than an
error, so declarative timelines can reference nodes without tracking every
earlier event's effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cluster.node import Node
from repro.cluster.topology import p3_8xlarge_topology, uniform_topology
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError

__all__ = [
    "ClusterEvent",
    "NodeFailureEvent",
    "NodeRecoveryEvent",
    "ScaleOutEvent",
    "ScaleInEvent",
    "GpuUpgradeEvent",
]


@dataclass(frozen=True)
class ClusterEvent:
    """Base class: one membership change at simulated time ``time``."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.time}")

    @property
    def kind(self) -> str:
        return type(self).__name__

    def apply(self, cluster_state: ClusterState) -> List[int]:
        """Mutate ``cluster_state``; returns ids of jobs losing their GPUs."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """JSON-safe declarative fields for the ``cluster`` trace kind.

        Only compile-time facts (which nodes, how many, what type) -- the
        apply-time consequences (evicted jobs) are recorded separately by
        the emitter, so a description never depends on cluster state.
        """
        return {}


@dataclass(frozen=True)
class NodeFailureEvent(ClusterEvent):
    """Mark nodes failed (crash, spot reclamation, maintenance entry)."""

    node_ids: Tuple[int, ...] = ()

    def describe(self) -> Dict[str, object]:
        return {"node_ids": list(self.node_ids)}

    def apply(self, cluster_state: ClusterState) -> List[int]:
        affected: List[int] = []
        for node_id in self.node_ids:
            if node_id not in cluster_state.nodes:
                continue
            if cluster_state.nodes[node_id].failed:
                continue
            for job_id in cluster_state.mark_node_failed(node_id):
                if job_id not in affected:
                    affected.append(job_id)
        return affected


@dataclass(frozen=True)
class NodeRecoveryEvent(ClusterEvent):
    """Bring previously failed nodes back into the schedulable pool."""

    node_ids: Tuple[int, ...] = ()

    def describe(self) -> Dict[str, object]:
        return {"node_ids": list(self.node_ids)}

    def apply(self, cluster_state: ClusterState) -> List[int]:
        for node_id in self.node_ids:
            if node_id in cluster_state.nodes:
                cluster_state.mark_node_recovered(node_id)
        return []


@dataclass(frozen=True)
class ScaleOutEvent(ClusterEvent):
    """Add freshly provisioned nodes (capacity scale-out, hetero drift).

    Node ids are assigned at apply time as the next unused ids, which is
    deterministic because the whole event stream is.
    """

    num_nodes: int = 1
    gpus_per_node: int = 4
    gpu_type: str = "v100"
    network_bw_gbps: float = 10.0
    cpu_cores_per_node: float = 32.0
    mem_gb_per_node: float = 244.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.gpus_per_node < 1:
            raise ConfigurationError(f"gpus_per_node must be >= 1, got {self.gpus_per_node}")

    def describe(self) -> Dict[str, object]:
        return {
            "num_nodes": self.num_nodes,
            "gpus_per_node": self.gpus_per_node,
            "gpu_type": self.gpu_type,
        }

    def apply(self, cluster_state: ClusterState) -> List[int]:
        next_id = max(cluster_state.nodes, default=-1) + 1
        topology = (
            p3_8xlarge_topology()
            if self.gpus_per_node == 4
            else uniform_topology(self.gpus_per_node)
        )
        for offset in range(self.num_nodes):
            cluster_state.add_node(
                Node(
                    node_id=next_id + offset,
                    num_gpus=self.gpus_per_node,
                    gpu_type_name=self.gpu_type,
                    cpu_cores=self.cpu_cores_per_node,
                    mem_gb=self.mem_gb_per_node,
                    network_bw_gbps=self.network_bw_gbps,
                    topology=topology,
                )
            )
        return []


@dataclass(frozen=True)
class ScaleInEvent(ClusterEvent):
    """Remove nodes permanently (capacity scale-in).

    With explicit ``node_ids`` exactly those nodes (when still present) are
    removed; with ``num_nodes`` the highest-id nodes go first -- the most
    recently scaled-out capacity, matching how elastic pools shrink.  At
    least one node is always left so the cluster never empties.
    """

    node_ids: Tuple[int, ...] = ()
    num_nodes: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if bool(self.node_ids) == bool(self.num_nodes):
            raise ConfigurationError(
                "ScaleInEvent needs exactly one of node_ids or num_nodes"
            )
        if self.num_nodes < 0:
            raise ConfigurationError(f"num_nodes must be >= 0, got {self.num_nodes}")

    def describe(self) -> Dict[str, object]:
        return {"node_ids": list(self.node_ids), "num_nodes": self.num_nodes}

    def apply(self, cluster_state: ClusterState) -> List[int]:
        if self.node_ids:
            targets = [n for n in self.node_ids if n in cluster_state.nodes]
        else:
            targets = sorted(cluster_state.nodes, reverse=True)[: self.num_nodes]
        evicted: List[int] = []
        for node_id in targets:
            if len(cluster_state.nodes) <= 1:
                break
            for job_id in cluster_state.remove_node(node_id):
                if job_id not in evicted:
                    evicted.append(job_id)
        return evicted


@dataclass(frozen=True)
class GpuUpgradeEvent(ClusterEvent):
    """Replace a node's GPUs with a newer generation (rolling upgrade).

    Implemented as remove + re-add under the same node id: jobs on the node
    are evicted (the upgrade takes the machine down), its GPUs get fresh
    global ids of the new type, and every other hardware fact is preserved.
    """

    node_ids: Tuple[int, ...] = ()
    gpu_type: str = "a100"

    def describe(self) -> Dict[str, object]:
        return {"node_ids": list(self.node_ids), "gpu_type": self.gpu_type}

    def apply(self, cluster_state: ClusterState) -> List[int]:
        evicted: List[int] = []
        for node_id in self.node_ids:
            if node_id not in cluster_state.nodes:
                continue
            old = cluster_state.nodes[node_id]
            for job_id in cluster_state.remove_node(node_id):
                if job_id not in evicted:
                    evicted.append(job_id)
            cluster_state.add_node(
                Node(
                    node_id=node_id,
                    num_gpus=old.num_gpus,
                    gpu_type_name=self.gpu_type,
                    cpu_cores=old.cpu_cores,
                    mem_gb=old.mem_gb,
                    network_bw_gbps=old.network_bw_gbps,
                    topology=old.topology,
                )
            )
        return evicted
