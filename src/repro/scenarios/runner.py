"""The scenario matrix runner behind ``python -m repro.scenarios``.

Fans the policy x placement x scenario matrix out through the multi-process
sweep harness (:func:`repro.experiments.harness.run_sweep`).  Every cell is
simulated twice from the same compiled scenario:

* **fast-forward on** -- the event-skipping engine, with the scenario
  timeline bounding ``next_event_time`` so skipping stays active between
  churn events;
* **stepping** -- the same engine with ``fast_forward=False``, executing
  every round (what per-round failure injection used to force).

Both runs must produce identical per-job completion times, round logs and
round counts (``schedule_parity``) -- scenario dynamics are scheduled state
changes, not noise, so fast-forward remains a pure performance feature under
churn.  The report also carries per-scenario summaries: JCT distribution
(avg/median/p95/p99), policy preemptions, event-driven evictions and the
capacity-weighted utilisation integrated over the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import PolicySpec, SweepTask, run_sweep
from repro.metrics.summary import scenario_summary
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.placement.first_free import FirstFreePlacement
from repro.policies.scheduling import FifoScheduling, SrtfScheduling, TiresiasScheduling
from repro.scenarios.registry import SMOKE_SCENARIOS, get_scenario, scenario_names
from repro.telemetry.events import run_metadata
from repro.simulator.engine import SimulationResult

#: Seed every scenario in the checked-in matrix is compiled with.
SCENARIO_SEED = 20240701

POLICY_FACTORIES = {
    "fifo": FifoScheduling,
    "srtf": SrtfScheduling,
    "tiresias": TiresiasScheduling,
}

PLACEMENT_FACTORIES = {
    "consolidated": ConsolidatedPlacement,
    "first-free": FirstFreePlacement,
}

#: (policy, placement) combinations of the full matrix: every policy against
#: the paper's default placement, plus a second placement for one gang and
#: one discretised policy.
FULL_COMBOS: Tuple[Tuple[str, str], ...] = (
    ("fifo", "consolidated"),
    ("srtf", "consolidated"),
    ("tiresias", "consolidated"),
    ("fifo", "first-free"),
    ("tiresias", "first-free"),
)

#: CI smoke: 2 policies x 1 placement x 2 churn-heavy scenarios.
SMOKE_COMBOS: Tuple[Tuple[str, str], ...] = (
    ("fifo", "consolidated"),
    ("tiresias", "consolidated"),
)


def _cell_parity(fastforward: SimulationResult, stepping: SimulationResult) -> bool:
    ff_completions = {j.job_id: j.completion_time for j in fastforward.jobs}
    step_completions = {j.job_id: j.completion_time for j in stepping.jobs}
    return (
        ff_completions == step_completions
        and fastforward.round_log == stepping.round_log
        and fastforward.rounds == stepping.rounds
    )


def run_scenario_matrix(
    smoke: bool = False,
    seed: int = SCENARIO_SEED,
    scenarios: Optional[Sequence[str]] = None,
    combos: Optional[Sequence[Tuple[str, str]]] = None,
    processes: Optional[int] = None,
    started_at: Optional[float] = None,
) -> Dict[str, object]:
    """Run the scenario matrix; returns the ``BENCH_scenarios.json`` payload.

    ``started_at`` is the caller's wall-clock stamp for the report metadata
    (the CLI passes ``time.time()``); the library never reads the clock.
    """
    if scenarios is None:
        scenarios = SMOKE_SCENARIOS if smoke else scenario_names()
    if combos is None:
        combos = SMOKE_COMBOS if smoke else FULL_COMBOS

    compiled = {name: get_scenario(name, smoke=smoke).compile(seed) for name in scenarios}

    tasks: List[SweepTask] = []
    for scenario_name in scenarios:
        scenario = compiled[scenario_name]
        for policy_name, placement_name in combos:
            for mode in ("fastforward", "stepping"):
                spec = PolicySpec(
                    label=f"{scenario_name}/{policy_name}/{placement_name}/{mode}",
                    scheduling=POLICY_FACTORIES[policy_name],
                    placement=PLACEMENT_FACTORIES[placement_name],
                )
                tasks.append(
                    SweepTask(
                        label=spec.label,
                        trace=scenario.trace,
                        spec=spec,
                        run_kwargs={
                            # num_nodes is unused because a fresh cluster is
                            # passed explicitly, but run_policy requires it.
                            "num_nodes": scenario.spec.cluster.num_nodes,
                            "cluster": scenario.build_cluster(),
                            "cluster_manager": scenario.make_cluster_manager(),
                            "round_duration": scenario.spec.round_duration,
                            "fast_forward": mode == "fastforward",
                        },
                    )
                )

    results = dict(run_sweep(tasks, processes=processes))

    cells: Dict[str, object] = {}
    all_parity = True
    max_speedup = 0.0
    for scenario_name in scenarios:
        scenario = compiled[scenario_name]
        for policy_name, placement_name in combos:
            base = f"{scenario_name}/{policy_name}/{placement_name}"
            fastforward = results[f"{base}/fastforward"]
            stepping = results[f"{base}/stepping"]
            parity = _cell_parity(fastforward, stepping)
            all_parity = all_parity and parity
            ff_rps = (
                fastforward.rounds / fastforward.wall_time_s
                if fastforward.wall_time_s > 0
                else float("inf")
            )
            step_rps = (
                stepping.rounds / stepping.wall_time_s
                if stepping.wall_time_s > 0
                else float("inf")
            )
            speedup = ff_rps / step_rps if step_rps > 0 else None
            if speedup is not None:
                max_speedup = max(max_speedup, speedup)
            summary = scenario_summary(
                fastforward.jobs,
                fastforward.tracked_job_ids,
                fastforward.round_log,
                eviction_count=fastforward.eviction_count,
            )
            cells[base] = {
                "scenario": scenario_name,
                "policy": policy_name,
                "placement": placement_name,
                "schedule_parity": parity,
                "rounds": fastforward.rounds,
                "cluster_events": len(scenario.events),
                "fastforward_wall_s": round(fastforward.wall_time_s, 4),
                "stepping_wall_s": round(stepping.wall_time_s, 4),
                "fastforward_rounds_per_sec": round(ff_rps, 1),
                "stepping_rounds_per_sec": round(step_rps, 1),
                "speedup_rounds_per_sec": round(speedup, 2) if speedup else None,
                "summary": {
                    key: (round(value, 4) if isinstance(value, float) else value)
                    for key, value in summary.as_dict().items()
                },
            }

    config = {
        "seed": seed,
        "smoke": smoke,
        "scenarios": sorted(scenarios),
        "combos": [f"{policy}/{placement}" for policy, placement in combos],
    }
    return {
        "seed": seed,
        "smoke": smoke,
        "metadata": run_metadata(seed, config, started_at),
        "scenarios": {
            name: {
                "description": compiled[name].spec.description,
                "cluster_events": len(compiled[name].events),
                "jobs": len(compiled[name].trace),
            }
            for name in scenarios
        },
        "matrix": sorted(cells),
        "all_schedule_parity": all_parity,
        "max_speedup_rounds_per_sec": round(max_speedup, 2),
        "cells": cells,
    }
