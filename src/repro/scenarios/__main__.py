"""CLI entry point: ``python -m repro.scenarios [--smoke] [--out PATH]``."""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.scenarios.registry import scenario_names
from repro.scenarios.runner import SCENARIO_SEED, run_scenario_matrix


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description=(
            "Run the policy x placement x scenario matrix (fast-forward vs. "
            "per-round stepping, schedule-parity checked)."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration: 2 policies x 2 churn-heavy scenarios",
    )
    parser.add_argument(
        "--out",
        default="BENCH_scenarios.json",
        help="output JSON path (default: BENCH_scenarios.json); '-' to skip writing",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=SCENARIO_SEED,
        help=f"scenario compilation seed (default: {SCENARIO_SEED})",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=scenario_names(),
        help="run only the named scenario(s); repeatable",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes for the sweep (default: one per task, capped at CPUs)",
    )
    args = parser.parse_args(argv)

    report = run_scenario_matrix(
        smoke=args.smoke,
        seed=args.seed,
        scenarios=args.scenario,
        processes=args.processes,
        started_at=time.time(),
    )
    if args.out != "-":
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    json.dump(report, sys.stdout, indent=2)
    print()
    if not report["all_schedule_parity"]:
        print("SCHEDULE PARITY FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
