"""Named scenarios: the shapes of cluster/workload dynamics we ship.

Each entry is a builder returning a fully declarative
:class:`~repro.scenarios.spec.ScenarioSpec`; compile one with a seed to get
its deterministic event stream.  ``smoke=True`` yields a smaller cluster and
trace with the same dynamic shape, used by CI and the test suite.

Sizing note: the Philly demand mix goes up to 16-GPU jobs (4 nodes).  Every
scenario keeps *permanent* capacity at >= 4 healthy 4-GPU nodes (scale-in
never cuts below that), and every failure -- storms, spot waves, maintenance,
Bernoulli churn -- carries a scheduled or probabilistic recovery, so churn
may transiently dip capacity below a 16-GPU gang (smoke failure-storm can
briefly hold 3 healthy nodes when its two waves sample disjoint targets) but
the job always becomes placeable again and every run terminates.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cluster.builder import ClusterSpec
from repro.core.exceptions import ConfigurationError
from repro.scenarios.spec import (
    BernoulliChurn,
    FailNodes,
    LoadSpike,
    Maintenance,
    ScaleIn,
    ScaleOut,
    ScenarioSpec,
    SpotWave,
    UpgradeGpus,
    WorkloadSpec,
)

__all__ = ["SCENARIOS", "SMOKE_SCENARIOS", "get_scenario", "scenario_names"]

HOUR = 3600.0


def _cluster(smoke: bool) -> ClusterSpec:
    return ClusterSpec(num_nodes=6 if smoke else 16, gpus_per_node=4, gpu_type="v100")


def _workload(smoke: bool) -> WorkloadSpec:
    if smoke:
        return WorkloadSpec(generator="philly", num_jobs=30, jobs_per_hour=6.0)
    return WorkloadSpec(generator="philly", num_jobs=120, jobs_per_hour=8.0)


def _steady(smoke: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="steady",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        description="Static cluster, the paper's default setting; control cell.",
    )


def _diurnal_spike(smoke: bool) -> ScenarioSpec:
    spikes = LoadSpike(
        at=1 * HOUR if smoke else 5 * HOUR,
        num_jobs=8 if smoke else 20,
        duration_seconds=HOUR,
        repeat=2,
        period=2 * HOUR if smoke else 6 * HOUR,
    )
    return ScenarioSpec(
        name="diurnal-spike",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=(spikes,),
        description="Short-job load spikes recurring on a daily rhythm (§5.1 style).",
    )


def _failure_storm(smoke: bool) -> ScenarioSpec:
    first = 1 * HOUR if smoke else 4 * HOUR
    return ScenarioSpec(
        name="failure-storm",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=(
            FailNodes(at=first, fraction=0.25, recover_after=2 * HOUR),
            FailNodes(at=first + 0.5 * HOUR, fraction=0.2, recover_after=2 * HOUR),
        ),
        description="Correlated failure burst taking out ~40% of nodes, staggered recovery.",
    )


def _spot_market(smoke: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="spot-market",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=(
            SpotWave(
                at=1 * HOUR if smoke else 2 * HOUR,
                fraction=0.25,
                outage=HOUR,
                period=2 * HOUR if smoke else 4 * HOUR,
                repeat=2 if smoke else 3,
            ),
        ),
        description="Periodic spot reclamation waves: a quarter of the pool vanishes, returns.",
    )


def _rolling_upgrade(smoke: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="rolling-upgrade",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=(
            UpgradeGpus(
                at=1 * HOUR if smoke else 3 * HOUR,
                fraction=0.5,
                gpu_type="a100",
                stagger=0.5 * HOUR,
            ),
        ),
        description="Half the fleet upgraded to A100s one node at a time.",
    )


def _hetero_drift(smoke: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="hetero-drift",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=(
            ScaleOut(at=1 * HOUR if smoke else 4 * HOUR, num_nodes=2 if smoke else 4, gpu_type="a100"),
            ScaleOut(at=3 * HOUR if smoke else 9 * HOUR, num_nodes=2 if smoke else 4, gpu_type="a100", network_bw_gbps=20.0),
        ),
        description="Cluster drifts heterogeneous as newer GPU generations join.",
    )


def _scale_cycle(smoke: bool) -> ScenarioSpec:
    if smoke:
        timeline = (
            ScaleOut(at=1 * HOUR, num_nodes=4),
            ScaleIn(at=3 * HOUR, num_nodes=4),
        )
    else:
        timeline = (
            ScaleOut(at=2 * HOUR, num_nodes=8),
            ScaleIn(at=8 * HOUR, num_nodes=8),
            ScaleOut(at=11 * HOUR, num_nodes=4),
            ScaleIn(at=14 * HOUR, num_nodes=4),
        )
    return ScenarioSpec(
        name="scale-cycle",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=timeline,
        description="Elastic capacity: scale-out under load, newest nodes reclaimed later.",
    )


def _maintenance_window(smoke: bool) -> ScenarioSpec:
    first = 1 * HOUR if smoke else 5 * HOUR
    second = 3 * HOUR if smoke else 10 * HOUR
    return ScenarioSpec(
        name="maintenance-window",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=(
            Maintenance(start=first, duration=1.5 * HOUR, fraction=0.25),
            Maintenance(start=second, duration=1.5 * HOUR, fraction=0.25),
        ),
        description="Planned rolling maintenance: a quarter of nodes down per window.",
    )


def _bernoulli_churn(smoke: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="bernoulli-churn",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=(
            BernoulliChurn(
                failure_prob=0.004 if smoke else 0.002,
                recovery_prob=0.05,
                horizon_rounds=100 if smoke else 300,
            ),
        ),
        description="The classic FailureInjector process, pre-sampled into a timeline.",
    )


def _chaos(smoke: bool) -> ScenarioSpec:
    """Data-plane churn designed to pair with control-plane fault injection.

    The chaos bench (``python -m repro.bench --chaos``) runs this scenario
    through the deployment path with an armed
    :class:`~repro.runtime.rpc.FaultPlan`, so lease revocations race node
    failures and spot reclamations while the RPC layer is dropping and
    duplicating messages -- the harshest setting the exactly-once lease
    protocol must stay bit-identical under (see ``docs/robustness.md``).
    """
    first = 1 * HOUR if smoke else 3 * HOUR
    return ScenarioSpec(
        name="chaos",
        cluster=_cluster(smoke),
        workload=_workload(smoke),
        timeline=(
            FailNodes(at=first, fraction=0.25, recover_after=1.5 * HOUR),
            SpotWave(
                at=first + HOUR,
                fraction=0.2,
                outage=HOUR,
                period=2 * HOUR if smoke else 4 * HOUR,
                repeat=2,
            ),
        ),
        description="Failure burst plus spot waves; paired with RPC fault injection.",
    )


SCENARIOS: Dict[str, Callable[[bool], ScenarioSpec]] = {
    "steady": _steady,
    "diurnal-spike": _diurnal_spike,
    "failure-storm": _failure_storm,
    "spot-market": _spot_market,
    "rolling-upgrade": _rolling_upgrade,
    "hetero-drift": _hetero_drift,
    "scale-cycle": _scale_cycle,
    "maintenance-window": _maintenance_window,
    "bernoulli-churn": _bernoulli_churn,
    "chaos": _chaos,
}

#: The churn-heavy subset CI exercises (2 policies x 2 scenarios).
SMOKE_SCENARIOS = ("failure-storm", "scale-cycle")


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def get_scenario(name: str, smoke: bool = False) -> ScenarioSpec:
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(f"unknown scenario {name!r}; known scenarios: {known}")
    return SCENARIOS[name](smoke)
