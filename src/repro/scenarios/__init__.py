"""The scenario engine: declarative, deterministic cluster/workload dynamics.

See :mod:`repro.scenarios.spec` for the declarative layer,
:mod:`repro.scenarios.events` for the concrete event stream,
:mod:`repro.scenarios.timeline` for the fast-forward-aware cluster manager,
:mod:`repro.scenarios.registry` for the named scenarios and
:mod:`repro.scenarios.runner` for the benchmark matrix
(``python -m repro.scenarios``).
"""

from repro.scenarios.events import (
    ClusterEvent,
    GpuUpgradeEvent,
    NodeFailureEvent,
    NodeRecoveryEvent,
    ScaleInEvent,
    ScaleOutEvent,
)
from repro.scenarios.registry import SCENARIOS, get_scenario, scenario_names
from repro.scenarios.spec import (
    BernoulliChurn,
    CompiledScenario,
    FailNodes,
    LoadSpike,
    Maintenance,
    RecoverNodes,
    ScaleIn,
    ScaleOut,
    ScenarioSpec,
    SpotWave,
    TimelineEntry,
    UpgradeGpus,
    WorkloadSpec,
)
from repro.scenarios.timeline import TimelineClusterManager

__all__ = [
    "ClusterEvent",
    "NodeFailureEvent",
    "NodeRecoveryEvent",
    "ScaleOutEvent",
    "ScaleInEvent",
    "GpuUpgradeEvent",
    "TimelineClusterManager",
    "TimelineEntry",
    "FailNodes",
    "RecoverNodes",
    "ScaleOut",
    "ScaleIn",
    "UpgradeGpus",
    "Maintenance",
    "SpotWave",
    "BernoulliChurn",
    "LoadSpike",
    "WorkloadSpec",
    "ScenarioSpec",
    "CompiledScenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
]
