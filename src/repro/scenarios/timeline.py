"""Timeline-driven cluster management that composes with fast-forward.

:class:`TimelineClusterManager` is the bridge between a compiled scenario's
event stream and the scheduling loop: it implements the two-method
:class:`~repro.core.abstractions.ClusterManager` contract -- ``update``
applies every event whose time has arrived, ``next_event_time`` exposes the
next pending event -- so the simulator's event-skipping fast-forward stays
active *between* churn events instead of being disabled by churn, and stops
exactly one round before each event so the event's round executes in full.

Determinism: the stream is fixed at construction, events at equal times keep
their compile order (stable sort), and nothing here draws randomness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.abstractions import ClusterManager
from repro.core.cluster_state import ClusterState
from repro.scenarios.events import ClusterEvent

__all__ = ["TimelineClusterManager"]


class TimelineClusterManager(ClusterManager):
    """Applies a pre-compiled, sorted stream of cluster events."""

    name = "scenario-timeline"

    def __init__(self, events: Sequence[ClusterEvent]) -> None:
        self._events: List[ClusterEvent] = sorted(events, key=lambda e: e.time)
        self._next = 0
        #: Number of events applied so far.
        self.events_applied = 0
        #: ``(time, event kind, affected job ids)`` per applied event.
        self.applied_log: List[Tuple[float, str, Tuple[int, ...]]] = []
        #: Full applied records ``(time, event, affected job ids)`` for the
        #: telemetry drain; ``_drained`` is the cursor of what was already
        #: reported, so each firing is emitted exactly once even across
        #: checkpoint/restore (both lists pickle with the manager).
        self._applied_events: List[Tuple[float, ClusterEvent, Tuple[int, ...]]] = []
        self._drained = 0

    # ------------------------------------------------------------------
    # ClusterManager contract
    # ------------------------------------------------------------------

    def update(self, cluster_state: ClusterState, current_time: float) -> List[int]:
        """Apply every event due by ``current_time``; returns affected job ids."""
        affected: List[int] = []
        while self._next < len(self._events) and self._events[self._next].time <= current_time:
            event = self._events[self._next]
            self._next += 1
            ids = event.apply(cluster_state)
            self.events_applied += 1
            self.applied_log.append((current_time, event.kind, tuple(ids)))
            self._applied_events.append((current_time, event, tuple(ids)))
            for job_id in ids:
                if job_id not in affected:
                    affected.append(job_id)
        return affected

    def next_event_time(self, current_time: float) -> Optional[float]:
        """Time of the next pending event; ``None`` once the stream is drained.

        The engine consults this only after ``update`` ran at the current
        time, so the head of the stream is always strictly in the future --
        returning it re-enables fast-forward for the whole gap up to (one
        round short of) the event.
        """
        del current_time
        if self._next >= len(self._events):
            return None
        return self._events[self._next].time

    def drain_applied(self) -> List[Tuple[float, ClusterEvent, Tuple[int, ...]]]:
        """Applied events not yet reported to telemetry (cursor advances).

        Called by the engine once per round after :meth:`update`; the
        returned triples become ``cluster`` trace events.  Purely a read of
        already-recorded state -- draining (or never draining) cannot change
        the schedule.
        """
        out = self._applied_events[self._drained :]
        self._drained = len(self._applied_events)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        return len(self._events) - self._next

    @property
    def total_events(self) -> int:
        return len(self._events)
