"""``repro.lint``: the invariant linter's CLI package.

Thin alias so the command is ``python -m repro.lint`` (symmetrical with
``repro.bench`` / ``repro.trace``); the implementation lives in
:mod:`repro.analysis`.
"""

from repro.analysis.cli import build_parser, main

__all__ = ["build_parser", "main"]
