"""GPU type catalogue.

The Blox case studies compare placement policies across hardware generations
(P100 clusters with 100 Gbps interconnects vs. V100 clusters with 10 Gbps).
Each :class:`GPUType` carries a relative compute factor (normalised to the
V100) used by the execution model and by heterogeneity-aware policies (Gavel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class GPUType:
    """A GPU model with its relative training throughput.

    ``compute_factor`` is the throughput of this GPU relative to a V100 for a
    typical training workload; the per-iteration time of a job running on this
    GPU type is its profiled V100 iteration time divided by this factor.
    """

    name: str
    compute_factor: float
    memory_gb: float

    def __post_init__(self) -> None:
        if self.compute_factor <= 0:
            raise ConfigurationError(f"compute_factor must be > 0, got {self.compute_factor}")
        if self.memory_gb <= 0:
            raise ConfigurationError(f"memory_gb must be > 0, got {self.memory_gb}")


#: Catalogue of GPU models used throughout the paper's experiments.
GPU_TYPES: Dict[str, GPUType] = {
    "k80": GPUType(name="k80", compute_factor=0.30, memory_gb=12.0),
    "p100": GPUType(name="p100", compute_factor=0.60, memory_gb=16.0),
    "v100": GPUType(name="v100", compute_factor=1.00, memory_gb=16.0),
    "a100": GPUType(name="a100", compute_factor=2.20, memory_gb=40.0),
}


def get_gpu_type(name: str) -> GPUType:
    """Look up a GPU type by name (case insensitive).

    Raises :class:`~repro.core.exceptions.ConfigurationError` for unknown names
    so misconfigured experiments fail loudly rather than silently defaulting.
    """
    key = name.lower()
    if key not in GPU_TYPES:
        known = ", ".join(sorted(GPU_TYPES))
        raise ConfigurationError(f"unknown GPU type {name!r}; known types: {known}")
    return GPU_TYPES[key]
