"""Helpers to construct clusters matching the paper's experimental setups.

The Blox evaluation uses homogeneous clusters of 4-GPU servers (p3.8xlarge-like
V100 nodes with 10 Gbps cross-node links, or P100 nodes with 100 Gbps links as
in the original Tiresias study).  :func:`build_cluster` builds a
:class:`~repro.core.cluster_state.ClusterState` from a simple spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.node import Node
from repro.cluster.topology import IntraNodeTopology, p3_8xlarge_topology, uniform_topology
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a homogeneous cluster."""

    num_nodes: int
    gpus_per_node: int = 4
    gpu_type: str = "v100"
    network_bw_gbps: float = 10.0
    cpu_cores_per_node: float = 32.0
    mem_gb_per_node: float = 244.0
    use_p3_topology: bool = True

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.gpus_per_node < 1:
            raise ConfigurationError(f"gpus_per_node must be >= 1, got {self.gpus_per_node}")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node


def build_cluster(
    num_nodes: int,
    gpus_per_node: int = 4,
    gpu_type: str = "v100",
    network_bw_gbps: float = 10.0,
    cpu_cores_per_node: float = 32.0,
    mem_gb_per_node: float = 244.0,
    topology: Optional[IntraNodeTopology] = None,
) -> ClusterState:
    """Build a homogeneous cluster.

    The default (4x V100 per node, 10 Gbps network, p3.8xlarge intra-node
    topology) matches the main setup in the paper; the Tiresias placement study
    instead uses P100 nodes with 100 Gbps links (pass ``gpu_type="p100"`` and
    ``network_bw_gbps=100``).
    """
    if topology is None:
        topology = p3_8xlarge_topology() if gpus_per_node == 4 else uniform_topology(gpus_per_node)
    cluster = ClusterState()
    for node_id in range(num_nodes):
        cluster.add_node(
            Node(
                node_id=node_id,
                num_gpus=gpus_per_node,
                gpu_type_name=gpu_type,
                cpu_cores=cpu_cores_per_node,
                mem_gb=mem_gb_per_node,
                network_bw_gbps=network_bw_gbps,
                topology=topology,
            )
        )
    return cluster


def build_cluster_from_spec(spec: ClusterSpec) -> ClusterState:
    """Build a cluster from a :class:`ClusterSpec`."""
    topology = None
    if spec.use_p3_topology and spec.gpus_per_node == 4:
        topology = p3_8xlarge_topology()
    return build_cluster(
        num_nodes=spec.num_nodes,
        gpus_per_node=spec.gpus_per_node,
        gpu_type=spec.gpu_type,
        network_bw_gbps=spec.network_bw_gbps,
        cpu_cores_per_node=spec.cpu_cores_per_node,
        mem_gb_per_node=spec.mem_gb_per_node,
        topology=topology,
    )
