"""Failure injection for the cluster-management abstraction.

The cluster management abstraction in Blox is responsible for detecting failed
nodes and removing them from the schedulable pool.  For simulation we inject
failures (and optional recoveries) with a seeded random process so tests are
deterministic.

Two ways to run the same process:

* :meth:`FailureInjector.step` -- the original per-round form: called once per
  scheduling round with the live cluster, drawing one Bernoulli sample per
  node per round.  Using it forces every round to execute (the simulator
  cannot predict when the next failure lands), which throws away the
  event-skipping speedups.
* :meth:`FailureInjector.compile_timeline` -- the timeline-compiling adapter:
  pre-samples the *entire* process with the same seed and the exact same draw
  order, producing a deterministic stream of
  :class:`~repro.scenarios.events.ClusterEvent`s.  Driven through a
  :class:`~repro.scenarios.timeline.TimelineClusterManager`, the schedule is
  identical to per-round stepping (see the parity test in
  ``tests/test_failure_timeline.py``) while fast-forward stays active between
  the pre-sampled failures.

Seed semantics (shared by both forms): one ``random.Random(seed)`` stream;
each round visits nodes in id order and draws exactly one sample per node --
a failure check for healthy nodes, a recovery check for failed ones.  The
health evolution seen by the draws is the injector's own (nothing else fails
or recovers nodes in between), which is what makes pre-sampling exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Sequence

from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.scenarios.events import ClusterEvent
    from repro.scenarios.timeline import TimelineClusterManager


@dataclass
class FailureInjector:
    """Randomly fails (and recovers) nodes at each scheduling round.

    ``failure_prob`` is the per-node probability of failing in a given round;
    ``recovery_prob`` the per-round probability that a failed node comes back.
    With the defaults (both 0) the injector is a no-op, which is what the
    paper's main experiments assume.
    """

    failure_prob: float = 0.0
    recovery_prob: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    failed_rounds: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_prob <= 1.0:
            raise ConfigurationError("failure_prob must be in [0, 1]")
        if not 0.0 <= self.recovery_prob <= 1.0:
            raise ConfigurationError("recovery_prob must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def step(self, cluster_state: ClusterState) -> List[int]:
        """Apply one round of failures/recoveries; returns job ids to reschedule."""
        affected_jobs: List[int] = []
        if self.failure_prob == 0.0 and self.recovery_prob == 0.0:
            return affected_jobs
        for node in list(cluster_state.nodes.values()):
            if not node.failed and self._rng.random() < self.failure_prob:
                affected_jobs.extend(cluster_state.mark_node_failed(node.node_id))
                self.failed_rounds += 1
            elif node.failed and self._rng.random() < self.recovery_prob:
                # Go through the indexed API so the cluster's cached free-GPU
                # counters stay consistent with node health.
                cluster_state.mark_node_recovered(node.node_id)
        return affected_jobs

    # ------------------------------------------------------------------
    # Timeline compilation
    # ------------------------------------------------------------------

    def compile_timeline(
        self,
        node_ids: Sequence[int],
        round_duration: float,
        num_rounds: int,
        start_round: int = 0,
    ) -> List["ClusterEvent"]:
        """Pre-sample ``num_rounds`` rounds of the process into concrete events.

        Replays exactly the draw sequence :meth:`step` would consume when
        called once per round starting at round ``start_round`` (time
        ``start_round * round_duration``) on a cluster whose nodes are
        ``node_ids`` in iteration order: per round, one draw per node -- a
        failure check while healthy, a recovery check while failed -- against
        a private health ledger seeded all-healthy.  A fresh
        ``random.Random(self.seed)`` is used, so compiling does not perturb
        (and is not perturbed by) any interleaved :meth:`step` calls.

        Returns, per round that changed anything, a
        :class:`~repro.scenarios.events.NodeFailureEvent` and/or
        :class:`~repro.scenarios.events.NodeRecoveryEvent` stamped with the
        round's start time.  Within a round the failure event precedes the
        recovery event; both list nodes in draw order, so the affected-job
        ids reported when the timeline is applied match what interleaved
        per-node :meth:`step` processing reports (distinct nodes' health
        changes commute, and only failures report affected jobs).
        """
        from repro.scenarios.events import ClusterEvent, NodeFailureEvent, NodeRecoveryEvent

        if round_duration <= 0:
            raise ConfigurationError(f"round_duration must be > 0, got {round_duration}")
        if num_rounds < 0:
            raise ConfigurationError(f"num_rounds must be >= 0, got {num_rounds}")
        events: List[ClusterEvent] = []
        if self.failure_prob == 0.0 and self.recovery_prob == 0.0:
            return events
        rng = random.Random(self.seed)
        failed = {node_id: False for node_id in node_ids}
        for round_number in range(start_round, start_round + num_rounds):
            time = round_number * round_duration
            fails: List[int] = []
            recoveries: List[int] = []
            for node_id in node_ids:
                if not failed[node_id] and rng.random() < self.failure_prob:
                    failed[node_id] = True
                    fails.append(node_id)
                elif failed[node_id] and rng.random() < self.recovery_prob:
                    failed[node_id] = False
                    recoveries.append(node_id)
            if fails:
                events.append(NodeFailureEvent(time=time, node_ids=tuple(fails)))
            if recoveries:
                events.append(NodeRecoveryEvent(time=time, node_ids=tuple(recoveries)))
        return events

    def as_cluster_manager(
        self,
        node_ids: Sequence[int],
        round_duration: float,
        num_rounds: int,
        start_round: int = 0,
    ) -> "TimelineClusterManager":
        """Timeline cluster manager driving the pre-sampled failure process.

        Drop-in for wiring the injector into a
        :class:`~repro.simulator.engine.Simulator`: unlike per-round
        :meth:`step` calls, the resulting manager exposes
        ``next_event_time`` so event-skipping stays enabled between failures.
        """
        from repro.scenarios.timeline import TimelineClusterManager

        return TimelineClusterManager(
            self.compile_timeline(node_ids, round_duration, num_rounds, start_round)
        )
