"""Failure injection for the cluster-management abstraction.

The cluster management abstraction in Blox is responsible for detecting failed
nodes and removing them from the schedulable pool.  For simulation we inject
failures (and optional recoveries) with a seeded random process so tests are
deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError


@dataclass
class FailureInjector:
    """Randomly fails (and recovers) nodes at each scheduling round.

    ``failure_prob`` is the per-node probability of failing in a given round;
    ``recovery_prob`` the per-round probability that a failed node comes back.
    With the defaults (both 0) the injector is a no-op, which is what the
    paper's main experiments assume.
    """

    failure_prob: float = 0.0
    recovery_prob: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    failed_rounds: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_prob <= 1.0:
            raise ConfigurationError("failure_prob must be in [0, 1]")
        if not 0.0 <= self.recovery_prob <= 1.0:
            raise ConfigurationError("recovery_prob must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def step(self, cluster_state: ClusterState) -> List[int]:
        """Apply one round of failures/recoveries; returns job ids to reschedule."""
        affected_jobs: List[int] = []
        if self.failure_prob == 0.0 and self.recovery_prob == 0.0:
            return affected_jobs
        for node in list(cluster_state.nodes.values()):
            if not node.failed and self._rng.random() < self.failure_prob:
                affected_jobs.extend(cluster_state.mark_node_failed(node.node_id))
                self.failed_rounds += 1
            elif node.failed and self._rng.random() < self.recovery_prob:
                # Go through the indexed API so the cluster's cached free-GPU
                # counters stay consistent with node health.
                cluster_state.mark_node_recovered(node.node_id)
        return affected_jobs
