"""Cluster substrate: GPU types, nodes, intra-node topology and cluster builders.

Only the dependency-free building blocks are re-exported here;
:mod:`repro.cluster.builder` and :mod:`repro.cluster.failures` depend on
:class:`repro.core.cluster_state.ClusterState` (which itself is built from the
node types below), so they are imported lazily by callers to avoid an import
cycle between the two packages.
"""

from repro.cluster.gpu_types import GPUType, GPU_TYPES, get_gpu_type
from repro.cluster.node import GPU, Node
from repro.cluster.topology import IntraNodeTopology, p3_8xlarge_topology, uniform_topology

__all__ = [
    "GPUType",
    "GPU_TYPES",
    "get_gpu_type",
    "GPU",
    "Node",
    "IntraNodeTopology",
    "p3_8xlarge_topology",
    "uniform_topology",
]
