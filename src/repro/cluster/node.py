"""Node and GPU records that make up the cluster.

A :class:`Node` holds fixed hardware facts (GPU type, CPU cores, memory,
cross-node network bandwidth, intra-node GPU topology) plus mutable auxiliary
resource accounting used by resource-sensitive schedulers such as Synergy.
Per-GPU assignment state lives in :class:`~repro.core.cluster_state.ClusterState`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.gpu_types import GPUType, get_gpu_type
from repro.cluster.topology import IntraNodeTopology, uniform_topology
from repro.core.exceptions import AllocationError, ConfigurationError


@dataclass
class GPU:
    """One accelerator in the cluster.

    ``gpu_id`` is a cluster-global identifier; ``local_gpu_id`` is the index of
    the GPU within its node, used by intra-node placement policies.
    """

    gpu_id: int
    node_id: int
    local_gpu_id: int
    gpu_type: GPUType
    job_id: Optional[int] = None

    @property
    def is_free(self) -> bool:
        return self.job_id is None

    @property
    def state(self) -> str:
        """Either ``"free"`` or ``"running"``, matching the Blox GPU table."""
        return "free" if self.is_free else "running"


@dataclass
class Node:
    """A server in the cluster."""

    node_id: int
    num_gpus: int
    gpu_type_name: str = "v100"
    cpu_cores: float = 32.0
    mem_gb: float = 244.0
    network_bw_gbps: float = 10.0
    topology: Optional[IntraNodeTopology] = None
    failed: bool = False
    cpu_allocated: float = 0.0
    mem_allocated: float = 0.0
    _cpu_by_job: dict = field(default_factory=dict)
    _mem_by_job: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError(f"node {self.node_id} has {self.num_gpus} GPUs")
        if self.topology is None:
            self.topology = uniform_topology(self.num_gpus)
        if self.topology.num_gpus != self.num_gpus:
            raise ConfigurationError(
                f"node {self.node_id}: topology covers {self.topology.num_gpus} GPUs, "
                f"node has {self.num_gpus}"
            )

    @property
    def gpu_type(self) -> GPUType:
        return get_gpu_type(self.gpu_type_name)

    @property
    def cpu_free(self) -> float:
        return self.cpu_cores - self.cpu_allocated

    @property
    def mem_free(self) -> float:
        return self.mem_gb - self.mem_allocated

    def allocate_aux(self, job_id: int, cpus: float, mem_gb: float) -> None:
        """Reserve CPU cores and memory for a job (Synergy-style accounting).

        The reservation is additive per job so repeated launches on the same
        node accumulate, and :meth:`release_aux` returns exactly what was taken.
        """
        if cpus < 0 or mem_gb < 0:
            raise AllocationError("auxiliary resource demands must be non-negative")
        self.cpu_allocated += cpus
        self.mem_allocated += mem_gb
        self._cpu_by_job[job_id] = self._cpu_by_job.get(job_id, 0.0) + cpus
        self._mem_by_job[job_id] = self._mem_by_job.get(job_id, 0.0) + mem_gb

    def release_aux(self, job_id: int) -> None:
        """Release all CPU/memory previously reserved for ``job_id`` on this node."""
        self.cpu_allocated -= self._cpu_by_job.pop(job_id, 0.0)
        self.mem_allocated -= self._mem_by_job.pop(job_id, 0.0)
        # Guard against floating point drift ever producing tiny negatives.
        self.cpu_allocated = max(0.0, self.cpu_allocated)
        self.mem_allocated = max(0.0, self.mem_allocated)

    def aux_allocation(self, job_id: int) -> tuple:
        """Return ``(cpus, mem_gb)`` currently reserved for a job on this node."""
        return self._cpu_by_job.get(job_id, 0.0), self._mem_by_job.get(job_id, 0.0)

    def aux_job_ids(self) -> List[int]:
        """Ids of jobs holding any CPU/memory reservation on this node, sorted."""
        return sorted(set(self._cpu_by_job) | set(self._mem_by_job))

    def aux_allocations(self) -> Dict[int, tuple]:
        """All per-job ``(cpus, mem_gb)`` reservations on this node."""
        return {job_id: self.aux_allocation(job_id) for job_id in self.aux_job_ids()}

    def clone(self) -> "Node":
        """Deep copy built from public APIs (used by cluster snapshots)."""
        new_node = Node(
            node_id=self.node_id,
            num_gpus=self.num_gpus,
            gpu_type_name=self.gpu_type_name,
            cpu_cores=self.cpu_cores,
            mem_gb=self.mem_gb,
            network_bw_gbps=self.network_bw_gbps,
            topology=self.topology,
            failed=self.failed,
        )
        for job_id, (cpus, mem_gb) in self.aux_allocations().items():
            new_node.allocate_aux(job_id, cpus, mem_gb)
        return new_node
