"""Intra-node GPU interconnect topology.

The bandwidth-aware intra-node placement policy (Blox §5.3, Table 4) exploits
the fact that GPU pairs inside a server are connected with different link
bandwidths (the motivation comes from Blink): on a p3.8xlarge, GPU 0 and GPU 3
enjoy roughly twice the bandwidth of GPU 0 and GPU 1.  We model a node's
interconnect as a symmetric pairwise bandwidth matrix in Gbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Sequence

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class IntraNodeTopology:
    """A symmetric matrix of pairwise GPU-to-GPU bandwidths within a node."""

    bandwidth_gbps: tuple

    def __post_init__(self) -> None:
        n = len(self.bandwidth_gbps)
        for row in self.bandwidth_gbps:
            if len(row) != n:
                raise ConfigurationError("intra-node bandwidth matrix must be square")
        for i in range(n):
            for j in range(n):
                if abs(self.bandwidth_gbps[i][j] - self.bandwidth_gbps[j][i]) > 1e-9:
                    raise ConfigurationError("intra-node bandwidth matrix must be symmetric")

    @property
    def num_gpus(self) -> int:
        return len(self.bandwidth_gbps)

    def pair_bandwidth(self, local_a: int, local_b: int) -> float:
        """Bandwidth (Gbps) of the link between two local GPU indices."""
        return self.bandwidth_gbps[local_a][local_b]

    def aggregate_bandwidth(self, local_gpus: Sequence[int]) -> float:
        """Average pairwise bandwidth across a set of local GPUs.

        This is the metric tracked by the intra-node placement experiment
        (Table 4): the bandwidth "observed" by a multi-GPU job placed on this
        set of GPUs.  A single-GPU set has no communication, so we return 0.
        """
        gpus = list(local_gpus)
        if len(gpus) < 2:
            return 0.0
        pairs = list(combinations(gpus, 2))
        return sum(self.pair_bandwidth(a, b) for a, b in pairs) / len(pairs)

    def best_subset(self, free_local_gpus: Sequence[int], count: int) -> List[int]:
        """Pick ``count`` GPUs from the free set maximising aggregate bandwidth.

        Nodes have at most a handful of GPUs so exhaustive search over subsets
        is cheap and exact.
        """
        free = list(free_local_gpus)
        if count <= 0:
            return []
        if len(free) < count:
            raise ConfigurationError(
                f"requested {count} GPUs but only {len(free)} are free on this node"
            )
        if count == 1:
            return [free[0]]
        best = None
        best_bw = -1.0
        for subset in combinations(free, count):
            bw = self.aggregate_bandwidth(subset)
            if bw > best_bw:
                best_bw = bw
                best = list(subset)
        return best if best is not None else free[:count]


def uniform_topology(num_gpus: int, bandwidth_gbps: float = 50.0) -> IntraNodeTopology:
    """All GPU pairs connected at the same bandwidth (e.g. a full NVSwitch)."""
    matrix = tuple(
        tuple(0.0 if i == j else bandwidth_gbps for j in range(num_gpus))
        for i in range(num_gpus)
    )
    return IntraNodeTopology(bandwidth_gbps=matrix)


def p3_8xlarge_topology() -> IntraNodeTopology:
    """The asymmetric 4-GPU NVLink topology of an AWS p3.8xlarge.

    Bandwidths follow the imbalance highlighted by Blink: "diagonal" pairs
    (0-3 and 1-2) have double-width NVLink connections (~100 Gbps) while the
    remaining pairs have single links (~50 Gbps).
    """
    double, single = 100.0, 50.0
    matrix = (
        (0.0, single, single, double),
        (single, 0.0, double, single),
        (single, double, 0.0, single),
        (double, single, single, 0.0),
    )
    return IntraNodeTopology(bandwidth_gbps=matrix)
