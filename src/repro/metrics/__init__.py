"""Scheduler evaluation metrics: JCT, responsiveness, makespan, CDFs."""

from repro.metrics.summary import (
    average,
    percentile,
    cdf_points,
    jct_summary,
    SummaryStats,
)
from repro.metrics.collector import UtilizationCollector, ApplicationMetricCollector

__all__ = [
    "average",
    "percentile",
    "cdf_points",
    "jct_summary",
    "SummaryStats",
    "UtilizationCollector",
    "ApplicationMetricCollector",
]
