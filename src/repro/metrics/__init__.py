"""Scheduler evaluation metrics: JCT, responsiveness, makespan, CDFs."""

from repro.metrics.summary import (
    average,
    percentile,
    cdf_points,
    capacity_weighted_utilization,
    jct_summary,
    scenario_summary,
    ScenarioSummary,
    SummaryStats,
)
from repro.metrics.collector import UtilizationCollector, ApplicationMetricCollector

__all__ = [
    "average",
    "percentile",
    "cdf_points",
    "capacity_weighted_utilization",
    "jct_summary",
    "scenario_summary",
    "ScenarioSummary",
    "SummaryStats",
    "UtilizationCollector",
    "ApplicationMetricCollector",
]
