"""Summary statistics used across the paper's figures.

All the evaluation figures report either an average (JCT, responsiveness) or a
CDF of job completion times.  These helpers are deliberately dependency-light
(plain Python lists in, plain Python numbers out) so they can be used from
benchmarks and tests without importing the whole simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.job import Job


def average(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input (so plots of empty sweeps don't crash)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def cdf_points(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Return ``(sorted_values, cumulative_fractions)`` for a CDF plot."""
    ordered = sorted(values)
    n = len(ordered)
    fractions = [(i + 1) / n for i in range(n)] if n else []
    return ordered, fractions


@dataclass(frozen=True)
class SummaryStats:
    """Aggregate statistics over a set of finished jobs."""

    count: int
    avg_jct: float
    median_jct: float
    p95_jct: float
    avg_responsiveness: float
    makespan: float
    avg_preemptions: float
    p99_jct: float = 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "avg_jct": self.avg_jct,
            "median_jct": self.median_jct,
            "p95_jct": self.p95_jct,
            "p99_jct": self.p99_jct,
            "avg_responsiveness": self.avg_responsiveness,
            "makespan": self.makespan,
            "avg_preemptions": self.avg_preemptions,
        }


def jct_summary(jobs: Sequence[Job], tracked_ids: Optional[Sequence[int]] = None) -> SummaryStats:
    """Compute the paper's headline metrics over finished jobs.

    ``tracked_ids`` restricts the computation to a subset of jobs (the paper
    tracks jobs 3000-4000 of the Philly trace to measure steady-state
    behaviour); jobs in the subset that never finished are ignored.
    """
    if tracked_ids is not None:
        wanted = set(tracked_ids)
        jobs = [j for j in jobs if j.job_id in wanted]
    finished = [j for j in jobs if j.completion_time is not None]
    jcts = [j.job_completion_time() for j in finished]
    responsiveness = [j.responsiveness() for j in finished if j.responsiveness() is not None]
    makespan = 0.0
    if finished:
        makespan = max(j.completion_time for j in finished) - min(j.arrival_time for j in finished)
    return SummaryStats(
        count=len(finished),
        avg_jct=average(jcts),
        median_jct=percentile(jcts, 50),
        p95_jct=percentile(jcts, 95),
        p99_jct=percentile(jcts, 99),
        avg_responsiveness=average(responsiveness),
        makespan=makespan,
        avg_preemptions=average([j.num_preemptions for j in finished]),
    )


def capacity_weighted_utilization(round_log: Sequence[object]) -> float:
    """Time-integrated busy capacity over time-integrated healthy capacity.

    ``round_log`` is a sequence of round records carrying ``busy_capacity``
    and ``healthy_capacity`` (see
    :class:`~repro.simulator.engine.RoundRecord`; duck-typed here to keep
    this module free of simulator imports).  Weighting by per-round healthy
    capacity -- rather than averaging per-round ratios -- makes the number
    robust to rounds where most of the cluster is failed or scaled in: an
    empty cluster contributes nothing instead of a misleading 0% or 100%.
    """
    busy = 0.0
    healthy = 0.0
    for record in round_log:
        busy += record.busy_capacity
        healthy += record.healthy_capacity
    if healthy <= 0:
        return 0.0
    return busy / healthy


@dataclass(frozen=True)
class ScenarioSummary:
    """Per-scenario report row: JCT distribution plus churn-facing metrics."""

    stats: SummaryStats
    preemption_count: int
    eviction_count: int
    capacity_weighted_utilization: float

    def as_dict(self) -> dict:
        out = self.stats.as_dict()
        out["preemption_count"] = self.preemption_count
        out["eviction_count"] = self.eviction_count
        out["capacity_weighted_utilization"] = self.capacity_weighted_utilization
        return out


def scenario_summary(
    jobs: Sequence[Job],
    tracked_ids: Optional[Sequence[int]],
    round_log: Sequence[object],
    eviction_count: int = 0,
) -> ScenarioSummary:
    """Aggregate one scenario run into the metrics the scenario matrix reports.

    ``eviction_count`` is the number of running jobs kicked off their GPUs by
    cluster events (node failures, scale-in, upgrades), as counted by the
    simulation engine; ``preemption_count`` additionally includes
    policy-initiated preemptions.  Both are whole-run totals over *all* jobs
    (the engine cannot attribute an eviction to the tracked subset), so
    ``preemption_count >= eviction_count`` always holds; only the JCT
    statistics honour ``tracked_ids``.
    """
    return ScenarioSummary(
        stats=jct_summary(jobs, tracked_ids),
        preemption_count=sum(j.num_preemptions for j in jobs),
        eviction_count=eviction_count,
        capacity_weighted_utilization=capacity_weighted_utilization(round_log),
    )


@dataclass(frozen=True)
class FaultStats:
    """Fault-injection and recovery counters of one chaos-exposed run.

    One record covers both halves of the robustness layer
    (``docs/robustness.md``): the control-plane RPC fault injector
    (:class:`~repro.runtime.rpc.FaultPlan` -- drops, delays, duplicates,
    lost replies, and the retries/dedups that absorb them) and the federation
    shard supervisor (worker restarts, checkpoints, replayed commands, and
    the graceful-degradation counters).  Runs without chaos report all
    zeros; a gated chaos run asserts the relevant counters are *nonzero*,
    so a silently disabled injector cannot masquerade as a passing gate.
    """

    # -- control-plane RPC fault injection (runtime layer) -------------
    rpc_calls: int = 0
    faults_injected: int = 0
    drops: int = 0
    delays: int = 0
    duplicates: int = 0
    lost_replies: int = 0
    retries: int = 0
    duplicates_suppressed: int = 0
    #: Calls that failed even after every retry (aborts the run).
    exhausted: int = 0
    # -- federation shard supervision (worker recovery) -----------------
    worker_restarts: int = 0
    checkpoints: int = 0
    replayed_commands: int = 0
    dead_shards: int = 0
    rerouted_jobs: int = 0
    lost_jobs: int = 0

    def as_dict(self) -> dict:
        return {
            "rpc_calls": self.rpc_calls,
            "faults_injected": self.faults_injected,
            "drops": self.drops,
            "delays": self.delays,
            "duplicates": self.duplicates,
            "lost_replies": self.lost_replies,
            "retries": self.retries,
            "duplicates_suppressed": self.duplicates_suppressed,
            "exhausted": self.exhausted,
            "worker_restarts": self.worker_restarts,
            "checkpoints": self.checkpoints,
            "replayed_commands": self.replayed_commands,
            "dead_shards": self.dead_shards,
            "rerouted_jobs": self.rerouted_jobs,
            "lost_jobs": self.lost_jobs,
        }

    def any_recovery(self) -> bool:
        """Whether any fault was actually absorbed (the chaos-gate predicate)."""
        return (
            self.retries > 0
            or self.duplicates_suppressed > 0
            or self.worker_restarts > 0
            or self.rerouted_jobs > 0
        )


@dataclass(frozen=True)
class FederationTiming:
    """Wall-time breakdown of one federation run.

    ``routing_time_s`` is the serialised parent-side section (router decisions
    plus gang submission); ``advance_time_s`` is the time spent advancing and
    draining shards -- in parallel mode, the parent's wait on the slowest
    shard per lockstep step.  ``shard_busy_time_s`` is each shard's own
    in-loop execution time; its max/sum ratio bounds the achievable parallel
    speedup (the lockstep barrier waits for the slowest shard at every routing
    event).  ``workers`` is the number of worker processes (0 = in-process
    serial engine).
    """

    wall_time_s: float
    routing_time_s: float
    advance_time_s: float
    shard_busy_time_s: Tuple[float, ...] = ()
    workers: int = 0

    def as_dict(self) -> dict:
        return {
            "wall_time_s": self.wall_time_s,
            "routing_time_s": self.routing_time_s,
            "advance_time_s": self.advance_time_s,
            "shard_busy_time_s": list(self.shard_busy_time_s),
            "workers": self.workers,
        }


@dataclass(frozen=True)
class FederationSummary:
    """Aggregate report over the shards of one federation run.

    ``shards`` carries one :class:`ScenarioSummary` per shard (empty shards
    included -- their JCT stats are all zero with ``count=0``); ``pooled``
    recomputes the JCT distribution over the union of all shards' jobs, which
    is *not* derivable from the per-shard percentiles.  The pooled
    capacity-weighted utilisation divides summed busy integrals by summed
    healthy integrals across every shard's round log, so an idle shard drags
    the federation number down instead of vanishing from an average of
    ratios.
    """

    shards: Tuple[ScenarioSummary, ...]
    pooled: SummaryStats
    #: Jobs *routed* to each shard (finished or not, tracked or not) -- the
    #: same quantity :meth:`repro.federation.engine.FederationResult.jobs_per_shard`
    #: reports; per-shard finished-tracked counts live in
    #: ``shards[i].stats.count``.
    jobs_per_shard: Tuple[int, ...]
    preemption_count: int
    eviction_count: int
    capacity_weighted_utilization: float
    #: max/mean of routed jobs per shard; 1.0 is perfectly balanced,
    #: ``num_shards`` is everything on one shard, 0.0 if nothing was routed.
    routing_imbalance: float
    #: Wall-time breakdown of the run, when the engine measured one.
    timing: Optional[FederationTiming] = None

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def as_dict(self) -> dict:
        out = self.pooled.as_dict()
        out["num_shards"] = self.num_shards
        out["jobs_per_shard"] = list(self.jobs_per_shard)
        out["preemption_count"] = self.preemption_count
        out["eviction_count"] = self.eviction_count
        out["capacity_weighted_utilization"] = self.capacity_weighted_utilization
        out["routing_imbalance"] = self.routing_imbalance
        if self.timing is not None:
            out["timing"] = self.timing.as_dict()
        out["shards"] = [shard.as_dict() for shard in self.shards]
        return out


def federation_summary(
    shard_jobs: Sequence[Sequence[Job]],
    shard_round_logs: Sequence[Sequence[object]],
    shard_eviction_counts: Optional[Sequence[int]] = None,
    tracked_ids: Optional[Sequence[int]] = None,
    timing: Optional[FederationTiming] = None,
) -> FederationSummary:
    """Aggregate per-shard runs into one :class:`FederationSummary`.

    Inputs are parallel sequences, one entry per shard; a shard that was
    never routed a job contributes an empty job list (and its round log of
    idle rounds still weighs into the pooled utilisation).  ``tracked_ids``
    restricts every JCT statistic -- per shard and pooled -- to the global
    tracked window; per-shard summaries simply see the subset of tracked ids
    that landed on them.
    """
    if len(shard_jobs) != len(shard_round_logs):
        raise ValueError(
            f"shard_jobs ({len(shard_jobs)}) and shard_round_logs "
            f"({len(shard_round_logs)}) must have one entry per shard"
        )
    if shard_eviction_counts is None:
        shard_eviction_counts = [0] * len(shard_jobs)
    if len(shard_eviction_counts) != len(shard_jobs):
        raise ValueError(
            f"shard_eviction_counts ({len(shard_eviction_counts)}) must have "
            f"one entry per shard ({len(shard_jobs)})"
        )
    shards = tuple(
        scenario_summary(jobs, tracked_ids, round_log, eviction_count=evictions)
        for jobs, round_log, evictions in zip(
            shard_jobs, shard_round_logs, shard_eviction_counts
        )
    )
    pooled_jobs = [job for jobs in shard_jobs for job in jobs]
    pooled = jct_summary(pooled_jobs, tracked_ids)
    # Concatenating the logs pools the busy/healthy integrals: the helper
    # sums both across all records before dividing.
    pooled_log = [record for round_log in shard_round_logs for record in round_log]
    counts = tuple(len(jobs) for jobs in shard_jobs)
    mean_count = sum(counts) / len(counts) if counts else 0.0
    imbalance = max(counts) / mean_count if mean_count > 0 else 0.0
    return FederationSummary(
        shards=shards,
        pooled=pooled,
        jobs_per_shard=counts,
        preemption_count=sum(shard.preemption_count for shard in shards),
        eviction_count=sum(shard.eviction_count for shard in shards),
        capacity_weighted_utilization=capacity_weighted_utilization(pooled_log),
        routing_imbalance=imbalance,
        timing=timing,
    )
