"""Metric collection abstraction instances.

Blox's metric collection abstraction aggregates server-centric and job-centric
statistics for other modules to consume.  The simulator pushes application
metrics (loss, iteration time, throughput) into each job's metrics dictionary;
the collectors here aggregate cluster-level time series and per-job histories
used by experiments and by policies such as Optimus (loss) and Themis (fair
share estimates).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List

from repro.core.abstractions import MetricCollector
from repro.core.cluster_state import ClusterState
from repro.core.job_state import JobState


@dataclass
class UtilizationCollector(MetricCollector):
    """Records a per-round time series of cluster utilisation and queue length."""

    name: str = "utilization-collector"
    timestamps: List[float] = field(default_factory=list)
    utilization: List[float] = field(default_factory=list)
    running_jobs: List[int] = field(default_factory=list)
    queued_jobs: List[int] = field(default_factory=list)

    def collect(self, job_state: JobState, cluster_state: ClusterState, current_time: float) -> None:
        self.timestamps.append(current_time)
        self.utilization.append(cluster_state.utilization())
        self.running_jobs.append(len(job_state.running_jobs()))
        active = len(job_state.active_jobs())
        self.queued_jobs.append(active - len(job_state.running_jobs()))

    def average_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return sum(self.utilization) / len(self.utilization)


@dataclass
class ApplicationMetricCollector(MetricCollector):
    """Keeps a bounded history of selected application metrics per job.

    Policies that need a trend rather than the latest value (e.g. Optimus'
    convergence estimation or Pollux's goodput) read from these histories.
    Each series is a ``deque(maxlen=max_history)``, so appending once the
    window is full costs O(1) instead of the O(n) front-trim a list needs.
    """

    keys: tuple = ("loss", "throughput")
    max_history: int = 100
    name: str = "application-metric-collector"
    history: Dict[int, Dict[str, Deque[float]]] = field(default_factory=dict)

    def _new_series(self) -> Deque[float]:
        return deque(maxlen=self.max_history)

    def collect(self, job_state: JobState, cluster_state: ClusterState, current_time: float) -> None:
        for job in job_state.running_jobs():
            job_history = self.history.setdefault(
                job.job_id, {k: self._new_series() for k in self.keys}
            )
            for key in self.keys:
                if key in job.metrics:
                    series = job_history.get(key)
                    if series is None:
                        series = job_history[key] = self._new_series()
                    series.append(float(job.metrics[key]))

    def latest(self, job_id: int, key: str, default: float = 0.0) -> float:
        series = self.history.get(job_id, {}).get(key)
        return series[-1] if series else default
