"""An in-memory stand-in for the gRPC layer used by the real Blox deployment.

Every call between the CentralScheduler, the WorkerManagers and the client
library goes through an :class:`InMemoryRpcChannel`.  The channel delivers
messages synchronously (the components run in one process here) but accounts
for the *cost* each call would have over the network using a simple
:class:`RpcCostModel`; the lease-renewal scalability experiment (Fig. 19)
takes the busiest endpoint of a round of lease traffic as that round's
critical-path latency.

Cost attribution is **caller-aware**: every call bills its client-side cost
(``base_ms``: serialisation + network round trip) to the *calling* endpoint
and its handling cost (``server_ms``) to the *receiving* endpoint.  Calls a
handler makes while serving a request are automatically attributed to the
endpoint running that handler (the channel keeps a context stack), so when a
worker fans a lease revocation out to its peers, the fan-out bills the worker
and its peers -- never the scheduler that sent the single original revoke.
Independent endpoints proceed in parallel in the modelled network, which is
why the critical path is the per-endpoint *maximum*, not the global sum.

Fault injection
---------------

The chaos half of the robustness layer (``docs/robustness.md``): a
:class:`FaultPlan` draws one fault per *delivery attempt* from a per-seed
RNG, scenario-engine style -- same seed, same call sequence, same faults --
and the channel absorbs the failures with a :class:`RetryPolicy`
(exponential backoff, billed to the caller: waiting is latency) plus
idempotency tokens.  Every ``call()`` gets a token (auto-generated when the
caller does not pass one), the first *executed* delivery caches its result
under that token, and later deliveries of the same token return the cache
without re-running the handler.  Together these give **exactly-once**
semantics per logical call under drops (handler never ran -- retry runs it),
lost replies (handler ran, reply vanished -- the retry is deduplicated) and
duplicates (second delivery suppressed), which is what lets a chaos run's
*schedule* stay bit-identical to a fault-free run even though its fault and
latency counters differ.  When retries are disabled or exhausted the call
raises :class:`~repro.core.exceptions.RpcFaultError`.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import ConfigurationError, RpcFaultError
from repro.metrics.summary import FaultStats
from repro.telemetry.events import EVENT_RPC_FAULTS

#: Completed-call results remembered for duplicate suppression.  Bounds the
#: dedup memory; old tokens can only be re-delivered within a retry window,
#: which is far narrower than this.
_DEDUP_CACHE_SIZE = 4096


@dataclass(frozen=True)
class RpcCostModel:
    """Latency model for one RPC between two components.

    ``base_ms`` is the per-call client-side overhead (serialisation + network
    round trip), billed to the caller; ``server_ms`` is the time the receiving
    server spends handling the call, billed to the callee.  Calls into a
    single server serialise on that server, which is what makes a centralised
    lease server a bottleneck as the cluster scales.
    """

    base_ms: float = 0.02
    server_ms: float = 0.03

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.server_ms < 0:
            raise ConfigurationError("RPC cost components must be >= 0")


@dataclass(frozen=True)
class FaultSpec:
    """Per-delivery fault probabilities (cumulative; must sum to <= 1).

    ``drop``: the request vanishes before the handler runs.  ``lose_reply``:
    the handler runs but the reply vanishes -- the dangerous one, since a
    naive retry would re-execute a non-idempotent operation.  ``duplicate``:
    the request is delivered twice back to back.  ``delay``: the call
    succeeds but pays ``delay_ms`` extra latency.
    """

    drop_rate: float = 0.0
    lose_reply_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_ms: float = 5.0

    def __post_init__(self) -> None:
        rates = (
            self.drop_rate,
            self.lose_reply_rate,
            self.duplicate_rate,
            self.delay_rate,
        )
        if any(r < 0 for r in rates) or sum(rates) > 1.0:
            raise ConfigurationError(
                f"fault rates must be >= 0 and sum to <= 1, got {rates}"
            )
        if self.delay_ms < 0:
            raise ConfigurationError(f"delay_ms must be >= 0, got {self.delay_ms}")


class FaultPlan:
    """Seeded fault source: one RNG draw per delivery attempt.

    Deterministic the same way scenario timelines are: the channel consumes
    draws in call order (the runtime is single-threaded), so a given
    ``(spec, seed)`` injects the same fault at the same call every run --
    which is what makes chaos runs replayable and their parity gates
    meaningful.  ``methods``, when given, restricts injection to those RPC
    method names (other calls always succeed).
    """

    def __init__(
        self,
        spec: FaultSpec,
        seed: int = 0,
        methods: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.methods = None if methods is None else frozenset(methods)
        self._rng = random.Random(seed)
        self.drops = 0
        self.lost_replies = 0
        self.duplicates = 0
        self.delays = 0

    @property
    def faults_injected(self) -> int:
        return self.drops + self.lost_replies + self.duplicates + self.delays

    def draw(self, endpoint: str, method: str) -> str:
        """Fault of the next delivery attempt: one of drop/lose_reply/
        duplicate/delay/ok."""
        if self.methods is not None and method not in self.methods:
            return "ok"
        roll = self._rng.random()
        spec = self.spec
        threshold = spec.drop_rate
        if roll < threshold:
            self.drops += 1
            return "drop"
        threshold += spec.lose_reply_rate
        if roll < threshold:
            self.lost_replies += 1
            return "lose_reply"
        threshold += spec.duplicate_rate
        if roll < threshold:
            self.duplicates += 1
            return "duplicate"
        threshold += spec.delay_rate
        if roll < threshold:
            self.delays += 1
            return "delay"
        return "ok"


@dataclass(frozen=True)
class RetryPolicy:
    """How many delivery attempts a call gets, and what waiting costs.

    Backoff before attempt ``k`` (k >= 2) is ``base * 2**(k-2)`` capped at
    ``backoff_max_ms``, billed to the *caller* -- time spent waiting for a
    retry is latency on that endpoint's critical path, exactly like the
    round trip itself.
    """

    max_attempts: int = 4
    backoff_base_ms: float = 1.0
    backoff_max_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise ConfigurationError("backoff components must be >= 0")

    def backoff_ms(self, attempt: int) -> float:
        if attempt <= 1:
            return 0.0
        return min(self.backoff_base_ms * (2 ** (attempt - 2)), self.backoff_max_ms)


@dataclass
class RpcCall:
    """A record of one delivered message (kept for tests and debugging)."""

    target: str
    method: str
    payload: Any
    caller: Optional[str] = None


class InMemoryRpcChannel:
    """Synchronous message delivery with per-endpoint cost accounting.

    ``fault_plan``/``retry_policy`` arm the chaos layer; both default to off,
    in which case delivery, accounting and the call log behave exactly as the
    fault-free channel always has (single attempt, no token bookkeeping
    beyond an unused counter).
    """

    def __init__(
        self,
        cost_model: RpcCostModel = RpcCostModel(),
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.cost_model = cost_model
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self._handlers: Dict[Tuple[str, str], Callable[[Any], Any]] = {}
        self.call_log: List[RpcCall] = []
        #: Total busy time per endpoint in milliseconds, used to compute the
        #: critical-path latency of a round of lease traffic.
        self.endpoint_busy_ms: Dict[str, float] = {}
        self.total_calls = 0
        #: Endpoints currently executing a handler (innermost last); nested
        #: calls made from inside a handler bill their client-side cost to the
        #: endpoint running that handler.
        self._context: List[str] = []
        #: idempotency token -> cached handler result (bounded LRU-ish).
        self._dedup: "OrderedDict[str, Any]" = OrderedDict()
        self._token_seq = 0
        # Lifetime counters (never cleared by reset_accounting -- the fault
        # record spans the whole run, while busy-time resets every round).
        self.lifetime_calls = 0
        self.retries = 0
        self.duplicates_suppressed = 0
        self.exhausted = 0
        #: Optional telemetry: (recorder, clock, interval).  Every
        #: ``interval`` calls the channel streams a FaultStats snapshot, so
        #: chaos runs are observable live instead of only post-run.
        self._telemetry: Optional[Tuple] = None

    def set_telemetry(self, recorder, clock, interval: int = 1024) -> None:
        """Stream periodic ``rpc-faults`` counter snapshots to ``recorder``."""
        if interval < 1:
            raise ConfigurationError(f"telemetry interval must be >= 1, got {interval}")
        self._telemetry = (recorder, clock, interval)

    def register(self, endpoint: str, method: str, handler: Callable[[Any], Any]) -> None:
        """Register a handler for ``method`` on ``endpoint``."""
        self._handlers[(endpoint, method)] = handler

    def unregister_endpoint(self, endpoint: str) -> None:
        """Drop every handler of ``endpoint`` (the node left the cluster)."""
        for key in [k for k in self._handlers if k[0] == endpoint]:
            del self._handlers[key]

    def has_endpoint(self, endpoint: str) -> bool:
        return any(key[0] == endpoint for key in self._handlers)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _bill(self, endpoint: Optional[str], cost_ms: float) -> None:
        if endpoint is None or cost_ms == 0.0:
            return
        self.endpoint_busy_ms[endpoint] = (
            self.endpoint_busy_ms.get(endpoint, 0.0) + cost_ms
        )

    def _execute(self, key: Tuple[str, str], payload: Any, token: str) -> Any:
        """Run the handler at most once per token; duplicates hit the cache."""
        if token in self._dedup:
            self.duplicates_suppressed += 1
            return self._dedup[token]
        endpoint = key[0]
        self._context.append(endpoint)
        try:
            result = self._handlers[key](payload)
        finally:
            self._context.pop()
        self._dedup[token] = result
        while len(self._dedup) > _DEDUP_CACHE_SIZE:
            self._dedup.popitem(last=False)
        return result

    def call(
        self,
        endpoint: str,
        method: str,
        payload: Any = None,
        caller: Optional[str] = None,
        log: bool = True,
        idempotency_token: Optional[str] = None,
    ) -> Any:
        """Deliver a message, attributing client cost to the caller and server
        cost to the receiver.

        ``caller`` names the endpoint issuing the call; when omitted, a call
        made from inside a handler is attributed to the endpoint running that
        handler.  ``log=False`` skips the per-call record (bulk traffic such
        as metric pulls would otherwise dominate the log) but still counts
        and bills the call.  ``idempotency_token`` names the *logical*
        operation: deliveries sharing a token execute the handler once and
        share its result.  Protocol code passes stable tokens (e.g. one per
        lease revocation); anonymous calls get a fresh per-call token, which
        still protects them against the channel's own retries and injected
        duplicates.
        """
        key = (endpoint, method)
        if key not in self._handlers:
            raise ConfigurationError(f"no handler registered for {method!r} on {endpoint!r}")
        if caller is None and self._context:
            caller = self._context[-1]
        self.total_calls += 1
        self.lifetime_calls += 1
        if self._telemetry is not None:
            recorder, clock, interval = self._telemetry
            if self.lifetime_calls % interval == 0:
                recorder.emit(
                    EVENT_RPC_FAULTS, clock(), self.fault_stats().as_dict()
                )
        if log:
            self.call_log.append(
                RpcCall(target=endpoint, method=method, payload=payload, caller=caller)
            )
        if self.fault_plan is None and idempotency_token is None:
            # Fault-free fast path: byte-for-byte the historical channel.
            self._bill(caller, self.cost_model.base_ms)
            self._bill(endpoint, self.cost_model.server_ms)
            self._context.append(endpoint)
            try:
                return self._handlers[key](payload)
            finally:
                self._context.pop()
        if idempotency_token is None:
            self._token_seq += 1
            idempotency_token = f"auto:{self._token_seq}"
        max_attempts = 1 if self.retry_policy is None else self.retry_policy.max_attempts
        attempt = 0
        while True:
            attempt += 1
            if self.retry_policy is not None:
                self._bill(caller, self.retry_policy.backoff_ms(attempt))
            fault = (
                self.fault_plan.draw(endpoint, method)
                if self.fault_plan is not None
                else "ok"
            )
            self._bill(caller, self.cost_model.base_ms)
            if fault == "drop":
                # Request lost in flight: the server never saw it.
                delivered, result = False, None
            else:
                if fault == "delay":
                    self._bill(caller, self.fault_plan.spec.delay_ms)
                self._bill(endpoint, self.cost_model.server_ms)
                result = self._execute(key, payload, idempotency_token)
                if fault == "duplicate":
                    # Second copy of the same message arrives: it costs the
                    # server another handling slot, but the token suppresses
                    # re-execution.
                    self._bill(endpoint, self.cost_model.server_ms)
                    self._execute(key, payload, idempotency_token)
                # A lost reply executed the handler; the caller just cannot
                # know that -- only a deduplicated retry can surface the
                # cached result.
                delivered = fault != "lose_reply"
            if delivered:
                return result
            if attempt >= max_attempts:
                self.exhausted += 1
                raise RpcFaultError(
                    f"RPC {method!r} to {endpoint!r} failed after {attempt} "
                    f"attempt(s) under fault injection (last fault: {fault})"
                )
            self.retries += 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def busy_ms(self, endpoint: str) -> float:
        return self.endpoint_busy_ms.get(endpoint, 0.0)

    def critical_path_ms(self) -> float:
        """Busiest endpoint since the last reset: endpoints run in parallel,
        so the slowest one bounds the round."""
        if not self.endpoint_busy_ms:
            return 0.0
        return max(self.endpoint_busy_ms.values())

    def reset_accounting(self) -> None:
        """Clear cost counters (the call handlers stay registered).

        Lifetime fault/retry counters survive: they describe the run, not
        the round.
        """
        self.endpoint_busy_ms.clear()
        self.call_log.clear()
        self.total_calls = 0

    def fault_stats(self) -> FaultStats:
        """Chaos counters of this channel's lifetime (RPC half of the record)."""
        plan = self.fault_plan
        return FaultStats(
            rpc_calls=self.lifetime_calls,
            faults_injected=plan.faults_injected if plan is not None else 0,
            drops=plan.drops if plan is not None else 0,
            delays=plan.delays if plan is not None else 0,
            duplicates=plan.duplicates if plan is not None else 0,
            lost_replies=plan.lost_replies if plan is not None else 0,
            retries=self.retries,
            duplicates_suppressed=self.duplicates_suppressed,
            exhausted=self.exhausted,
        )
