"""An in-memory stand-in for the gRPC layer used by the real Blox deployment.

Every call between the CentralScheduler, the WorkerManagers and the client
library goes through an :class:`InMemoryRpcChannel`.  The channel delivers
messages synchronously (the components run in one process here) but accounts
for the *cost* each call would have over the network using a simple
:class:`RpcCostModel`; the lease-renewal scalability experiment (Fig. 19) sums
these costs to compare central and optimistic lease renewal as the cluster
grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class RpcCostModel:
    """Latency model for one RPC between two components.

    ``base_ms`` is the per-call overhead (serialisation + network round trip);
    ``server_ms`` is the time the receiving server spends handling the call.
    Calls to a single server serialise on that server, which is what makes a
    centralised lease server a bottleneck as the cluster scales.
    """

    base_ms: float = 0.02
    server_ms: float = 0.03

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.server_ms < 0:
            raise ConfigurationError("RPC cost components must be >= 0")


@dataclass
class RpcCall:
    """A record of one delivered message (kept for tests and debugging)."""

    target: str
    method: str
    payload: Any


class InMemoryRpcChannel:
    """Synchronous message delivery with per-endpoint cost accounting."""

    def __init__(self, cost_model: RpcCostModel = RpcCostModel()) -> None:
        self.cost_model = cost_model
        self._handlers: Dict[Tuple[str, str], Callable[[Any], Any]] = {}
        self.call_log: List[RpcCall] = []
        #: Total busy time per endpoint in milliseconds, used to compute the
        #: critical-path latency of a round of lease traffic.
        self.endpoint_busy_ms: Dict[str, float] = {}
        self.total_calls = 0

    def register(self, endpoint: str, method: str, handler: Callable[[Any], Any]) -> None:
        """Register a handler for ``method`` on ``endpoint``."""
        self._handlers[(endpoint, method)] = handler

    def call(self, endpoint: str, method: str, payload: Any = None) -> Any:
        """Deliver a message and account for its cost on the receiving endpoint."""
        key = (endpoint, method)
        if key not in self._handlers:
            raise ConfigurationError(f"no handler registered for {method!r} on {endpoint!r}")
        self.total_calls += 1
        self.call_log.append(RpcCall(target=endpoint, method=method, payload=payload))
        self.endpoint_busy_ms[endpoint] = (
            self.endpoint_busy_ms.get(endpoint, 0.0)
            + self.cost_model.base_ms
            + self.cost_model.server_ms
        )
        return self._handlers[key](payload)

    def busy_ms(self, endpoint: str) -> float:
        return self.endpoint_busy_ms.get(endpoint, 0.0)

    def reset_accounting(self) -> None:
        """Clear cost counters (the call handlers stay registered)."""
        self.endpoint_busy_ms.clear()
        self.call_log.clear()
        self.total_calls = 0
