"""An in-memory stand-in for the gRPC layer used by the real Blox deployment.

Every call between the CentralScheduler, the WorkerManagers and the client
library goes through an :class:`InMemoryRpcChannel`.  The channel delivers
messages synchronously (the components run in one process here) but accounts
for the *cost* each call would have over the network using a simple
:class:`RpcCostModel`; the lease-renewal scalability experiment (Fig. 19)
takes the busiest endpoint of a round of lease traffic as that round's
critical-path latency.

Cost attribution is **caller-aware**: every call bills its client-side cost
(``base_ms``: serialisation + network round trip) to the *calling* endpoint
and its handling cost (``server_ms``) to the *receiving* endpoint.  Calls a
handler makes while serving a request are automatically attributed to the
endpoint running that handler (the channel keeps a context stack), so when a
worker fans a lease revocation out to its peers, the fan-out bills the worker
and its peers -- never the scheduler that sent the single original revoke.
Independent endpoints proceed in parallel in the modelled network, which is
why the critical path is the per-endpoint *maximum*, not the global sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class RpcCostModel:
    """Latency model for one RPC between two components.

    ``base_ms`` is the per-call client-side overhead (serialisation + network
    round trip), billed to the caller; ``server_ms`` is the time the receiving
    server spends handling the call, billed to the callee.  Calls into a
    single server serialise on that server, which is what makes a centralised
    lease server a bottleneck as the cluster scales.
    """

    base_ms: float = 0.02
    server_ms: float = 0.03

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.server_ms < 0:
            raise ConfigurationError("RPC cost components must be >= 0")


@dataclass
class RpcCall:
    """A record of one delivered message (kept for tests and debugging)."""

    target: str
    method: str
    payload: Any
    caller: Optional[str] = None


class InMemoryRpcChannel:
    """Synchronous message delivery with per-endpoint cost accounting."""

    def __init__(self, cost_model: RpcCostModel = RpcCostModel()) -> None:
        self.cost_model = cost_model
        self._handlers: Dict[Tuple[str, str], Callable[[Any], Any]] = {}
        self.call_log: List[RpcCall] = []
        #: Total busy time per endpoint in milliseconds, used to compute the
        #: critical-path latency of a round of lease traffic.
        self.endpoint_busy_ms: Dict[str, float] = {}
        self.total_calls = 0
        #: Endpoints currently executing a handler (innermost last); nested
        #: calls made from inside a handler bill their client-side cost to the
        #: endpoint running that handler.
        self._context: List[str] = []

    def register(self, endpoint: str, method: str, handler: Callable[[Any], Any]) -> None:
        """Register a handler for ``method`` on ``endpoint``."""
        self._handlers[(endpoint, method)] = handler

    def unregister_endpoint(self, endpoint: str) -> None:
        """Drop every handler of ``endpoint`` (the node left the cluster)."""
        for key in [k for k in self._handlers if k[0] == endpoint]:
            del self._handlers[key]

    def has_endpoint(self, endpoint: str) -> bool:
        return any(key[0] == endpoint for key in self._handlers)

    def call(
        self,
        endpoint: str,
        method: str,
        payload: Any = None,
        caller: Optional[str] = None,
        log: bool = True,
    ) -> Any:
        """Deliver a message, attributing client cost to the caller and server
        cost to the receiver.

        ``caller`` names the endpoint issuing the call; when omitted, a call
        made from inside a handler is attributed to the endpoint running that
        handler.  ``log=False`` skips the per-call record (bulk traffic such
        as metric pulls would otherwise dominate the log) but still counts
        and bills the call.
        """
        key = (endpoint, method)
        if key not in self._handlers:
            raise ConfigurationError(f"no handler registered for {method!r} on {endpoint!r}")
        if caller is None and self._context:
            caller = self._context[-1]
        self.total_calls += 1
        if log:
            self.call_log.append(
                RpcCall(target=endpoint, method=method, payload=payload, caller=caller)
            )
        if caller is not None:
            self.endpoint_busy_ms[caller] = (
                self.endpoint_busy_ms.get(caller, 0.0) + self.cost_model.base_ms
            )
        self.endpoint_busy_ms[endpoint] = (
            self.endpoint_busy_ms.get(endpoint, 0.0) + self.cost_model.server_ms
        )
        self._context.append(endpoint)
        try:
            return self._handlers[key](payload)
        finally:
            self._context.pop()

    def busy_ms(self, endpoint: str) -> float:
        return self.endpoint_busy_ms.get(endpoint, 0.0)

    def critical_path_ms(self) -> float:
        """Busiest endpoint since the last reset: endpoints run in parallel,
        so the slowest one bounds the round."""
        if not self.endpoint_busy_ms:
            return 0.0
        return max(self.endpoint_busy_ms.values())

    def reset_accounting(self) -> None:
        """Clear cost counters (the call handlers stay registered)."""
        self.endpoint_busy_ms.clear()
        self.call_log.clear()
        self.total_calls = 0
