"""Deployment-path components: CentralScheduler, WorkerManager, client library.

Blox deploys as three processes communicating over gRPC: a ``CentralScheduler``
running the scheduling loop, a ``WorkerManager`` per node executing launches
and preemptions and storing per-job metrics, and a ``BloxClientLibrary`` linked
into each training job (a data-loader wrapper performing lease checks at
iteration boundaries plus a metric push API).  This package reproduces those
components in-process, with an explicit message-passing layer standing in for
gRPC, so the lease protocols (central vs optimistic renewal, two-phase
revocation for distributed jobs) and the "only two modules change between
simulation and deployment" property can be exercised and measured.

The channel doubles as the control-plane chaos layer: arming it with a
:class:`FaultPlan` injects seeded drop/delay/duplicate/lost-reply faults into
every call, and a :class:`RetryPolicy` plus per-operation idempotency tokens
make the lease protocol exactly-once under those faults (see
``docs/robustness.md``).
"""

from repro.runtime.rpc import (
    FaultPlan,
    FaultSpec,
    InMemoryRpcChannel,
    RetryPolicy,
    RpcCostModel,
)
from repro.runtime.worker_manager import WorkerManager
from repro.runtime.client_library import BloxDataLoader, WorkerMetricsCollector
from repro.runtime.lease import (
    CentralLeaseManager,
    OptimisticLeaseManager,
    build_lease_setup,
)
from repro.runtime.metrics import WorkerMetricsAggregator
from repro.runtime.central_scheduler import (
    CentralScheduler,
    DeploymentBloxManager,
    MembershipSyncManager,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InMemoryRpcChannel",
    "RetryPolicy",
    "RpcCostModel",
    "WorkerManager",
    "BloxDataLoader",
    "WorkerMetricsCollector",
    "WorkerMetricsAggregator",
    "CentralLeaseManager",
    "OptimisticLeaseManager",
    "build_lease_setup",
    "CentralScheduler",
    "DeploymentBloxManager",
    "MembershipSyncManager",
]
