"""Deployment-path metric collection.

In a real Blox deployment applications push arbitrary key-value metrics into
their node's WorkerManager (via :class:`WorkerMetricsCollector`), and the
CentralScheduler's metric-collection abstraction aggregates the per-node
stores each round over RPC (``pull_metrics``).  This module bridges those two
halves into the simulator's :class:`~repro.core.abstractions.MetricCollector`
contract so the same scheduling loop drives metric collection on both paths:

* the *application side* is stood in for by pushing each running job's
  scalar metrics (work done, plus whatever the execution model published
  into ``job.metrics``) to the job's primary WorkerManager through a
  :class:`WorkerMetricsCollector` -- a node-local call, exactly like a real
  training process talking to its local daemon;
* the *scheduler side* pulls every registered worker's store over the RPC
  channel and merges the per-job dictionaries into one cluster-wide view
  that policies and experiments can read.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.core.abstractions import MetricCollector
from repro.core.cluster_state import ClusterState
from repro.core.job_state import JobState
from repro.runtime.client_library import WorkerMetricsCollector
from repro.runtime.lease import SCHEDULER_ENDPOINT
from repro.runtime.rpc import InMemoryRpcChannel
from repro.runtime.worker_manager import WorkerManager


class WorkerMetricsAggregator(MetricCollector):
    """Aggregates WorkerManager metric stores through the collector contract.

    ``workers`` is a *live* mapping (the lease manager's registry), so
    membership changes mid-run are picked up automatically: new nodes start
    being pulled, departed nodes stop.  Pull calls are real RPCs (they bill
    the scheduler endpoint between lease rounds) but are excluded from the
    per-call log, which is reserved for lease traffic.
    """

    name = "worker-metrics"

    def __init__(
        self,
        channel: InMemoryRpcChannel,
        workers: Mapping[int, WorkerManager],
        keys: Sequence[str] = ("loss", "throughput"),
    ) -> None:
        self.channel = channel
        self.workers = workers
        self.keys: Tuple[str, ...] = tuple(keys)
        #: Last-known metrics per job, merged across all workers; jobs keep
        #: their final values after they finish (their worker store is
        #: cleared, the aggregate is not).
        self.latest: Dict[int, Dict[str, object]] = {}
        self.pull_rounds = 0

    def collect(
        self,
        job_state: JobState,
        cluster_state: ClusterState,
        current_time: float,
    ) -> None:
        # Application side: each running job reports to its primary worker.
        for job in job_state.running_jobs():
            node_ids = cluster_state.nodes_for_job(job.job_id)
            if not node_ids:
                continue
            worker = self.workers.get(node_ids[0])
            if worker is None:
                continue
            payload: Dict[str, object] = {"work_done": job.work_done}
            for key in self.keys:
                if key in job.metrics:
                    payload[key] = job.metrics[key]
            # The collector is a stateless two-field shim over the worker's
            # local store; a per-push instance is the whole cost.
            WorkerMetricsCollector(job_id=job.job_id, worker=worker).push_many(payload)

        # Scheduler side: pull every worker store over RPC and merge.
        for node_id in sorted(self.workers):
            worker = self.workers[node_id]
            store = self.channel.call(
                worker.endpoint_name,
                "pull_metrics",
                {},
                caller=SCHEDULER_ENDPOINT,
                log=False,
            )
            for job_id, values in store.items():
                self.latest.setdefault(job_id, {}).update(values)
        self.pull_rounds += 1

    def latest_for(self, job_id: int) -> Dict[str, object]:
        return dict(self.latest.get(job_id, {}))
