"""Lease management protocols: centralised checks vs optimistic renewal (Fig. 19).

Round-based schedulers preempt jobs by revoking a lease.  Two protocols:

* **Central lease renewal** -- every worker of every running job asks the
  CentralScheduler each round whether its lease still holds.  The scheduler
  serialises these requests, so the per-round lease latency grows with the
  number of leased GPUs in the cluster.
* **Optimistic lease renewal** (Blox's contribution) -- leases renew
  automatically; the scheduler contacts exactly **one** worker per *revoked*
  job, and that worker runs the two-phase exit protocol with its peers
  (worker-to-worker propagation of the agreed exit iteration).  The
  scheduler-side cost therefore depends only on the number of revocations,
  never on cluster size or gang width.

Both protocols are implemented over the in-memory RPC channel; their
``renewal_round`` methods return the critical-path latency of one round of
lease traffic in milliseconds (the busiest endpoint -- endpoints proceed in
parallel), which is the quantity Figure 19 plots.

Lease lifecycle: ``grant`` at launch, ``renewal_round`` while running (a
revocation inside it runs the revoke path and releases scheduler-side state),
and ``complete`` when a job finishes -- completion releases the lease *and*
tells every worker of the job to clear its local state
(:meth:`WorkerManager.job_finished`), so finished jobs generate no further
check/renew traffic and leak no worker-side bookkeeping.

Membership is dynamic: :meth:`sync_membership` registers a WorkerManager for
every node that joined the cluster and deregisters managers of nodes that
left, so scenario timelines (scale-out, scale-in, upgrades) never hit an
unknown endpoint.  Revocations tolerate workers that vanished mid-flight
(their node is gone; the lease dies with it).

Fault tolerance: every lease RPC names its *logical operation* with an
idempotency token (a per-manager sequence number keeps tokens unique across
re-grants of the same job), so under an armed
:class:`~repro.runtime.rpc.FaultPlan` the channel's retry/dedup machinery
makes grant, renew/revoke, the two-phase exit fan-out and completion
exactly-once -- a chaos run's schedule stays bit-identical to a fault-free
run, which ``python -m repro.bench --chaos`` gates along with
:meth:`_LeaseManagerBase.leaked_leases` staying zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError, LeaseError
from repro.runtime.rpc import InMemoryRpcChannel, RpcCostModel
from repro.runtime.worker_manager import WorkerManager
from repro.telemetry.events import EVENT_LEASE

SCHEDULER_ENDPOINT = "central-scheduler"


@dataclass
class LeaseAssignment:
    """One job's lease: the workers (node ids) it runs on."""

    job_id: int
    node_ids: List[int]


class _LeaseManagerBase:
    """Shared bookkeeping for both lease protocols."""

    def __init__(self, workers: Sequence[WorkerManager], channel: InMemoryRpcChannel) -> None:
        if not workers:
            raise ConfigurationError("lease manager needs at least one worker")
        self.channel = channel
        self.workers: Dict[int, WorkerManager] = {w.node_id: w for w in workers}
        self.assignments: Dict[int, LeaseAssignment] = {}
        self.channel.register(SCHEDULER_ENDPOINT, "check_lease", self._handle_check_lease)
        self._active_leases: Dict[int, bool] = {}
        #: Every node that held a lease for the job since it last completed.
        #: A preempted-then-migrated job leaves drain state (revoked lease,
        #: exit iteration) on its former workers; completion must clear those
        #: too, not just the latest assignment.
        self._holders: Dict[int, Set[int]] = {}
        #: ``("register"|"deregister", node_id)`` per membership change.
        self.membership_log: List[Tuple[str, int]] = []
        #: Monotonic operation counter: makes idempotency tokens unique
        #: across repeats of the same logical pair (a job re-granted after
        #: preemption must not dedup against its previous grant).
        self._op_seq = 0
        #: Optional telemetry: (recorder, simulated-time clock).  Set through
        #: :meth:`set_telemetry` (the CentralScheduler wires it); grants,
        #: revocations and completions then stream as ``lease`` events.
        self._telemetry: Optional[tuple] = None

    def set_telemetry(self, recorder, clock) -> None:
        """Stream lease transitions to ``recorder`` stamped by ``clock()``."""
        self._telemetry = (recorder, clock)

    def _emit_lease(self, op: str, job_id: int, **extra) -> None:
        if self._telemetry is None:
            return
        recorder, clock = self._telemetry
        payload = {"op": op, "job_id": job_id}
        payload.update(extra)
        recorder.emit(EVENT_LEASE, clock(), payload)

    def _token(self, op: str, job_id: int) -> str:
        self._op_seq += 1
        return f"{op}:{job_id}:{self._op_seq}"

    # -- scheduler-side handlers ----------------------------------------

    def _handle_check_lease(self, payload) -> bool:
        job_id = payload["job_id"]
        return self._active_leases.get(job_id, False)

    # -- membership dynamics --------------------------------------------

    def register_worker(self, worker: WorkerManager) -> None:
        """A node joined: route its endpoint and make it grantable."""
        self.workers[worker.node_id] = worker
        self.membership_log.append(("register", worker.node_id))

    def deregister_worker(self, node_id: int) -> None:
        """A node left: drop its endpoint; leases it held die with it."""
        worker = self.workers.pop(node_id, None)
        if worker is None:
            return
        self.channel.unregister_endpoint(worker.endpoint_name)
        self.membership_log.append(("deregister", node_id))

    def sync_membership(self, cluster_state: ClusterState) -> Tuple[List[int], List[int]]:
        """Reconcile the worker registry with the cluster's current node set.

        Returns ``(added, removed)`` node ids.  Failed-but-present nodes keep
        their workers (the node is still a member; its jobs were evicted by
        the cluster event), only true membership changes register/deregister.
        """
        current = set(cluster_state.nodes)
        added = sorted(current - set(self.workers))
        removed = sorted(set(self.workers) - current)
        for node_id in added:
            self.register_worker(WorkerManager(node_id=node_id, channel=self.channel))
        for node_id in removed:
            self.deregister_worker(node_id)
        return added, removed

    # -- common operations ------------------------------------------------

    def grant(self, job_id: int, node_ids: Iterable[int]) -> None:
        node_ids = list(node_ids)
        for node_id in node_ids:
            if node_id not in self.workers:
                raise LeaseError(f"cannot grant lease on unknown node {node_id}")
            self.channel.call(
                self.workers[node_id].endpoint_name,
                "launch",
                {"job_id": job_id},
                caller=SCHEDULER_ENDPOINT,
                idempotency_token=self._token("launch", job_id),
            )
        self.assignments[job_id] = LeaseAssignment(job_id=job_id, node_ids=node_ids)
        self._active_leases[job_id] = True
        self._holders.setdefault(job_id, set()).update(node_ids)
        self._emit_lease("grant", job_id, nodes=sorted(node_ids))

    def release(self, job_id: int) -> None:
        self.assignments.pop(job_id, None)
        self._active_leases.pop(job_id, None)

    def complete(self, job_id: int) -> None:
        """A job finished: release its lease and clear worker-local state.

        Finished jobs must stop producing check/renew traffic immediately
        (``assignments`` shrinks here, not only on preemption) and must not
        leak lease/iteration/metric entries on their workers -- including
        *former* workers the job was preempted off before migrating.
        """
        for node_id in sorted(self._holders.pop(job_id, ())):
            worker = self.workers.get(node_id)
            if worker is None:
                continue  # the node left; its state is already gone
            self.channel.call(
                worker.endpoint_name,
                "job_finished",
                {"job_id": job_id},
                caller=SCHEDULER_ENDPOINT,
                idempotency_token=self._token("finish", job_id),
            )
        self.release(job_id)
        self._emit_lease("complete", job_id)

    def critical_path_ms(self) -> float:
        """Latency of the round: the busiest endpoint bounds the round's lease time."""
        return self.channel.critical_path_ms()

    def leaked_leases(self) -> int:
        """Lease-protocol state that should be empty after a drained run.

        Counts scheduler-side active leases and assignments plus every
        worker-local lease/exit-iteration entry.  The chaos bench asserts
        this is zero after a run under injected RPC faults: a lost or
        re-executed message that leaked protocol state shows up here.
        """
        leaked = len(self._active_leases) + len(self.assignments) + len(self._holders)
        for worker in self.workers.values():
            leaked += len(worker.leases) + len(worker.exit_iterations)
        return leaked


class CentralLeaseManager(_LeaseManagerBase):
    """Every worker of every running job checks in with the scheduler each round."""

    name = "central-lease"

    def renewal_round(self, revoked_job_ids: Sequence[int] = ()) -> float:
        """Run one round of lease traffic; returns the critical-path latency (ms)."""
        revoked = set(revoked_job_ids)
        self.channel.reset_accounting()
        for job_id in sorted(revoked):
            if job_id in self._active_leases:
                self._active_leases[job_id] = False
        for assignment in list(self.assignments.values()):
            for node_id in assignment.node_ids:
                worker = self.workers.get(node_id)
                if worker is None:
                    continue  # node left the cluster; nothing to check there
                # The worker asks the central scheduler whether its lease
                # still holds -- this is the serialisation point that makes
                # the central protocol scale with leased GPUs, not with
                # revocations.
                still_valid = self.channel.call(
                    SCHEDULER_ENDPOINT,
                    "check_lease",
                    {"job_id": assignment.job_id},
                    caller=worker.endpoint_name,
                    idempotency_token=self._token("check", assignment.job_id),
                )
                method = "renew_lease" if still_valid else "revoke_lease"
                self.channel.call(
                    worker.endpoint_name,
                    method,
                    {"job_id": assignment.job_id},
                    caller=SCHEDULER_ENDPOINT,
                    idempotency_token=self._token(method, assignment.job_id),
                )
        for job_id in sorted(revoked):
            self.release(job_id)
            self._emit_lease("revoke", job_id, protocol=self.name)
        return self.critical_path_ms()


class OptimisticLeaseManager(_LeaseManagerBase):
    """Leases renew implicitly; only revocations generate traffic."""

    name = "optimistic-lease"

    def renewal_round(self, revoked_job_ids: Sequence[int] = ()) -> float:
        """Run one round of lease traffic; returns the critical-path latency (ms)."""
        self.channel.reset_accounting()
        for job_id in revoked_job_ids:
            assignment = self.assignments.get(job_id)
            if assignment is None:
                continue  # completed (or already revoked) between decision and round
            self._active_leases[job_id] = False
            # Two-phase exit: the scheduler contacts a single worker; that
            # worker fixes the exit iteration and propagates it to its peers
            # worker-to-worker (peer fan-out bills the worker, never the
            # scheduler endpoint).  Workers whose node left are skipped; if
            # every worker is gone the lease simply dies with the nodes.
            available = [n for n in assignment.node_ids if n in self.workers]
            if available:
                first, peers = available[0], available[1:]
                self.channel.call(
                    self.workers[first].endpoint_name,
                    "revoke_lease",
                    {
                        "job_id": job_id,
                        "peers": [self.workers[p].endpoint_name for p in peers],
                    },
                    caller=SCHEDULER_ENDPOINT,
                    idempotency_token=self._token("revoke", job_id),
                )
            self.release(job_id)
            self._emit_lease("revoke", job_id, protocol=self.name)
        return self.critical_path_ms()


def build_lease_setup(
    num_nodes: int,
    gpus_per_node: int = 4,
    jobs_per_gpu: float = 1.0,
    cost_model: RpcCostModel = RpcCostModel(),
    protocol: str = "optimistic",
):
    """Construct a lease manager with one single-GPU job per GPU (Fig. 19 setup).

    Returns ``(manager, workers, channel)``.  ``protocol`` is ``"central"`` or
    ``"optimistic"``.
    """
    if protocol not in ("central", "optimistic"):
        raise ConfigurationError(f"unknown lease protocol {protocol!r}")
    channel = InMemoryRpcChannel(cost_model)
    workers = [WorkerManager(node_id=i, channel=channel) for i in range(num_nodes)]
    manager_cls = CentralLeaseManager if protocol == "central" else OptimisticLeaseManager
    manager = manager_cls(workers, channel)
    total_jobs = int(num_nodes * gpus_per_node * jobs_per_gpu)
    for job_id in range(total_jobs):
        node_id = (job_id // gpus_per_node) % num_nodes
        manager.grant(job_id, [node_id])
    return manager, workers, channel
