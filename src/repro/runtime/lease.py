"""Lease management protocols: centralised checks vs optimistic renewal (Fig. 19).

Round-based schedulers preempt jobs by revoking a lease.  Two protocols:

* **Central lease renewal** -- every worker of every job asks the
  CentralScheduler each round whether its lease still holds.  The scheduler
  serialises these requests, so the per-round lease latency grows with the
  number of GPUs in the cluster.
* **Optimistic lease renewal** (Blox's contribution) -- leases renew
  automatically; the scheduler only contacts the one worker per *preempted*
  job (which then runs the two-phase exit protocol with its peers).  The
  per-round cost depends only on the number of revocations, not cluster size.

Both protocols are implemented over the in-memory RPC channel; their
``renewal_round`` methods return the critical-path latency of one round of
lease traffic in milliseconds, which is the quantity Figure 19 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core.exceptions import ConfigurationError, LeaseError
from repro.runtime.rpc import InMemoryRpcChannel, RpcCostModel
from repro.runtime.worker_manager import WorkerManager

SCHEDULER_ENDPOINT = "central-scheduler"


@dataclass
class LeaseAssignment:
    """One job's lease: the workers (node ids) it runs on."""

    job_id: int
    node_ids: List[int]


class _LeaseManagerBase:
    """Shared bookkeeping for both lease protocols."""

    def __init__(self, workers: Sequence[WorkerManager], channel: InMemoryRpcChannel) -> None:
        if not workers:
            raise ConfigurationError("lease manager needs at least one worker")
        self.channel = channel
        self.workers: Dict[int, WorkerManager] = {w.node_id: w for w in workers}
        self.assignments: Dict[int, LeaseAssignment] = {}
        self.channel.register(SCHEDULER_ENDPOINT, "check_lease", self._handle_check_lease)
        self._active_leases: Dict[int, bool] = {}

    # -- scheduler-side handlers ----------------------------------------

    def _handle_check_lease(self, payload) -> bool:
        job_id = payload["job_id"]
        return self._active_leases.get(job_id, False)

    # -- common operations ------------------------------------------------

    def grant(self, job_id: int, node_ids: Iterable[int]) -> None:
        node_ids = list(node_ids)
        for node_id in node_ids:
            if node_id not in self.workers:
                raise LeaseError(f"cannot grant lease on unknown node {node_id}")
            self.channel.call(self.workers[node_id].endpoint_name, "launch", {"job_id": job_id})
        self.assignments[job_id] = LeaseAssignment(job_id=job_id, node_ids=node_ids)
        self._active_leases[job_id] = True

    def release(self, job_id: int) -> None:
        self.assignments.pop(job_id, None)
        self._active_leases.pop(job_id, None)

    def critical_path_ms(self) -> float:
        """Latency of the round: the busiest endpoint bounds the round's lease time."""
        if not self.channel.endpoint_busy_ms:
            return 0.0
        return max(self.channel.endpoint_busy_ms.values())


class CentralLeaseManager(_LeaseManagerBase):
    """Every worker of every running job checks in with the scheduler each round."""

    name = "central-lease"

    def renewal_round(self, revoked_job_ids: Sequence[int] = ()) -> float:
        """Run one round of lease traffic; returns the critical-path latency (ms)."""
        revoked = set(revoked_job_ids)
        self.channel.reset_accounting()
        for job_id in revoked:
            self._active_leases[job_id] = False
        for assignment in list(self.assignments.values()):
            for node_id in assignment.node_ids:
                still_valid = self.channel.call(
                    SCHEDULER_ENDPOINT, "check_lease", {"job_id": assignment.job_id}
                )
                worker = self.workers[node_id]
                if still_valid:
                    self.channel.call(worker.endpoint_name, "renew_lease", {"job_id": assignment.job_id})
                else:
                    self.channel.call(worker.endpoint_name, "revoke_lease", {"job_id": assignment.job_id})
        for job_id in revoked:
            self.release(job_id)
        return self.critical_path_ms()


class OptimisticLeaseManager(_LeaseManagerBase):
    """Leases renew implicitly; only revocations generate traffic."""

    name = "optimistic-lease"

    def renewal_round(self, revoked_job_ids: Sequence[int] = ()) -> float:
        """Run one round of lease traffic; returns the critical-path latency (ms)."""
        self.channel.reset_accounting()
        for job_id in revoked_job_ids:
            assignment = self.assignments.get(job_id)
            if assignment is None:
                continue
            self._active_leases[job_id] = False
            # Two-phase exit: the scheduler contacts a single worker; that
            # worker propagates the exit iteration to its peers directly.
            first_node = assignment.node_ids[0]
            self.channel.call(
                self.workers[first_node].endpoint_name,
                "revoke_lease",
                {"job_id": job_id, "exit_iteration": None},
            )
            for peer_node in assignment.node_ids[1:]:
                self.channel.call(
                    self.workers[peer_node].endpoint_name,
                    "revoke_lease",
                    {"job_id": job_id, "exit_iteration": None},
                )
            self.release(job_id)
        return self.critical_path_ms()


def build_lease_setup(
    num_nodes: int,
    gpus_per_node: int = 4,
    jobs_per_gpu: float = 1.0,
    cost_model: RpcCostModel = RpcCostModel(),
    protocol: str = "optimistic",
):
    """Construct a lease manager with one single-GPU job per GPU (Fig. 19 setup).

    Returns ``(manager, workers, channel)``.  ``protocol`` is ``"central"`` or
    ``"optimistic"``.
    """
    if protocol not in ("central", "optimistic"):
        raise ConfigurationError(f"unknown lease protocol {protocol!r}")
    channel = InMemoryRpcChannel(cost_model)
    workers = [WorkerManager(node_id=i, channel=channel) for i in range(num_nodes)]
    manager_cls = CentralLeaseManager if protocol == "central" else OptimisticLeaseManager
    manager = manager_cls(workers, channel)
    job_id = 0
    total_jobs = int(num_nodes * gpus_per_node * jobs_per_gpu)
    for job_id in range(total_jobs):
        node_id = (job_id // gpus_per_node) % num_nodes
        manager.grant(job_id, [node_id])
    return manager, workers, channel
