"""The per-node WorkerManager.

A WorkerManager runs on every server: it executes launch/preempt commands from
the CentralScheduler, stores job leases locally so the client library can check
them without a round trip to the scheduler (the optimistic scheme), and acts as
the local metric store that applications push arbitrary key-value metrics into.

Revocation is two-phase (the optimistic protocol): the scheduler contacts
*one* worker of a revoked job; that worker fixes the exit iteration (the
payload's, or one past the job's last reported iteration) and propagates it
worker-to-worker to the peers named in the payload, so every worker of a
distributed job checkpoints at the same boundary without the scheduler ever
fanning out itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.rpc import InMemoryRpcChannel


@dataclass
class WorkerManager:
    """Node-local agent: lease store, metric store, launch/preempt executor."""

    node_id: int
    channel: Optional[InMemoryRpcChannel] = None
    leases: Dict[int, bool] = field(default_factory=dict)
    exit_iterations: Dict[int, int] = field(default_factory=dict)
    #: Last iteration each local job reported (the client library's data
    #: loader records progress here); used to pick a concrete exit iteration
    #: when a revocation arrives without one.
    job_iterations: Dict[int, int] = field(default_factory=dict)
    metrics: Dict[int, Dict[str, object]] = field(default_factory=dict)
    running_jobs: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.channel is not None:
            endpoint = self.endpoint_name
            self.channel.register(endpoint, "launch", self._handle_launch)
            self.channel.register(endpoint, "revoke_lease", self._handle_revoke)
            self.channel.register(endpoint, "renew_lease", self._handle_renew)
            self.channel.register(endpoint, "job_finished", self._handle_job_finished)
            self.channel.register(endpoint, "push_metric", self._handle_push_metric)
            self.channel.register(endpoint, "pull_metrics", self._handle_pull_metrics)

    @property
    def endpoint_name(self) -> str:
        return f"worker-{self.node_id}"

    # ------------------------------------------------------------------
    # RPC handlers (the channel calls these); they can also be used directly.
    # ------------------------------------------------------------------

    def _handle_launch(self, payload) -> bool:
        job_id = payload["job_id"]
        self.leases[job_id] = True
        self.exit_iterations.pop(job_id, None)
        if job_id not in self.running_jobs:
            self.running_jobs.append(job_id)
        return True

    def _handle_revoke(self, payload) -> bool:
        """Revoke a lease; idempotent, and phase two of the optimistic exit.

        A job may complete (and clear its worker state) between the
        scheduler's decision and the revoke's arrival, or a second revoke may
        arrive for a lease already revoked -- both are benign no-ops, not
        errors: the revocation's goal (the job no longer runs here) already
        holds.  The stored exit iteration only ever moves *forward*
        (monotonic max): a duplicated or re-ordered revoke -- injected RPC
        faults can deliver phase-two messages more than once -- must never
        drag the boundary below an iteration a peer may already have passed.
        Returns whether the revoke changed anything.
        """
        job_id = payload["job_id"]
        if job_id not in self.leases:
            return False
        already_revoked = not self.leases[job_id]
        self.leases[job_id] = False
        if job_id in self.running_jobs:
            # The job now drains to its exit iteration and checkpoints; it no
            # longer counts as running here (a relaunch re-adds it).
            self.running_jobs.remove(job_id)
        exit_iteration = payload.get("exit_iteration")
        if exit_iteration is None:
            # Phase one lands here: this worker fixes the concrete boundary.
            exit_iteration = self.job_iterations.get(job_id, 0) + 1
        current = self.exit_iterations.get(job_id)
        if current is None or int(exit_iteration) > current:
            self.exit_iterations[job_id] = int(exit_iteration)
        if self.channel is not None:
            # Phase two: propagate the *fixed* exit iteration to the peers the
            # scheduler named.  Nested calls bill this worker, not the
            # scheduler (caller-aware channel accounting).  The token makes
            # each peer's fan-out exactly-once per agreed boundary: a retried
            # or duplicated propagation deduplicates instead of re-running.
            agreed = self.exit_iterations[job_id]
            for peer_endpoint in payload.get("peers", ()):
                self.channel.call(
                    peer_endpoint,
                    "revoke_lease",
                    {"job_id": job_id, "exit_iteration": agreed},
                    idempotency_token=f"exit:{job_id}:{agreed}:{peer_endpoint}",
                )
        return not already_revoked

    def _handle_renew(self, payload) -> bool:
        job_id = payload["job_id"]
        self.leases[job_id] = True
        return True

    def _handle_job_finished(self, payload) -> bool:
        self.job_finished(payload["job_id"])
        return True

    def _handle_push_metric(self, payload) -> bool:
        job_id = payload["job_id"]
        self.metrics.setdefault(job_id, {})[payload["key"]] = payload["value"]
        return True

    def _handle_pull_metrics(self, payload) -> Dict[int, Dict[str, object]]:
        return {job_id: dict(values) for job_id, values in self.metrics.items()}

    # ------------------------------------------------------------------
    # Local API used by the client library (no RPC: the point of optimism)
    # ------------------------------------------------------------------

    def lease_valid(self, job_id: int) -> bool:
        """Whether the job may start another iteration (local lookup, no RPC)."""
        return self.leases.get(job_id, False)

    def exit_iteration_for(self, job_id: int) -> Optional[int]:
        return self.exit_iterations.get(job_id)

    def record_iteration(self, job_id: int, iteration: int) -> None:
        """Data-loader progress report (local, per iteration boundary)."""
        self.job_iterations[job_id] = iteration

    def push_metric(self, job_id: int, key: str, value: object) -> None:
        self.metrics.setdefault(job_id, {})[key] = value

    def job_finished(self, job_id: int) -> None:
        """Clear all local state for a job that exited."""
        self.leases.pop(job_id, None)
        self.exit_iterations.pop(job_id, None)
        self.job_iterations.pop(job_id, None)
        self.metrics.pop(job_id, None)
        if job_id in self.running_jobs:
            self.running_jobs.remove(job_id)
