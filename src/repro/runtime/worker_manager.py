"""The per-node WorkerManager.

A WorkerManager runs on every server: it executes launch/preempt commands from
the CentralScheduler, stores job leases locally so the client library can check
them without a round trip to the scheduler (the optimistic scheme), and acts as
the local metric store that applications push arbitrary key-value metrics into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.exceptions import LeaseError
from repro.runtime.rpc import InMemoryRpcChannel


@dataclass
class WorkerManager:
    """Node-local agent: lease store, metric store, launch/preempt executor."""

    node_id: int
    channel: Optional[InMemoryRpcChannel] = None
    leases: Dict[int, bool] = field(default_factory=dict)
    exit_iterations: Dict[int, int] = field(default_factory=dict)
    metrics: Dict[int, Dict[str, object]] = field(default_factory=dict)
    running_jobs: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.channel is not None:
            endpoint = self.endpoint_name
            self.channel.register(endpoint, "launch", self._handle_launch)
            self.channel.register(endpoint, "revoke_lease", self._handle_revoke)
            self.channel.register(endpoint, "renew_lease", self._handle_renew)
            self.channel.register(endpoint, "push_metric", self._handle_push_metric)
            self.channel.register(endpoint, "pull_metrics", self._handle_pull_metrics)

    @property
    def endpoint_name(self) -> str:
        return f"worker-{self.node_id}"

    # ------------------------------------------------------------------
    # RPC handlers (the channel calls these); they can also be used directly.
    # ------------------------------------------------------------------

    def _handle_launch(self, payload) -> bool:
        job_id = payload["job_id"]
        self.leases[job_id] = True
        self.exit_iterations.pop(job_id, None)
        if job_id not in self.running_jobs:
            self.running_jobs.append(job_id)
        return True

    def _handle_revoke(self, payload) -> bool:
        job_id = payload["job_id"]
        if job_id not in self.leases:
            raise LeaseError(f"worker {self.node_id} holds no lease for job {job_id}")
        self.leases[job_id] = False
        if "exit_iteration" in payload:
            self.exit_iterations[job_id] = payload["exit_iteration"]
        return True

    def _handle_renew(self, payload) -> bool:
        job_id = payload["job_id"]
        self.leases[job_id] = True
        return True

    def _handle_push_metric(self, payload) -> bool:
        job_id = payload["job_id"]
        self.metrics.setdefault(job_id, {})[payload["key"]] = payload["value"]
        return True

    def _handle_pull_metrics(self, payload) -> Dict[int, Dict[str, object]]:
        return {job_id: dict(values) for job_id, values in self.metrics.items()}

    # ------------------------------------------------------------------
    # Local API used by the client library (no RPC: the point of optimism)
    # ------------------------------------------------------------------

    def lease_valid(self, job_id: int) -> bool:
        """Whether the job may start another iteration (local lookup, no RPC)."""
        return self.leases.get(job_id, False)

    def exit_iteration_for(self, job_id: int) -> Optional[int]:
        return self.exit_iterations.get(job_id)

    def push_metric(self, job_id: int, key: str, value: object) -> None:
        self.metrics.setdefault(job_id, {})[key] = value

    def job_finished(self, job_id: int) -> None:
        """Clear all local state for a job that exited."""
        self.leases.pop(job_id, None)
        self.exit_iterations.pop(job_id, None)
        if job_id in self.running_jobs:
            self.running_jobs.remove(job_id)
