"""BloxClientLibrary: the pieces linked into each training job.

Two components, as in the paper:

* :class:`BloxDataLoader` wraps the framework data loader.  At every iteration
  boundary it checks the job's lease with the *local* WorkerManager; when the
  lease has been revoked it takes a consistent checkpoint and stops.  For
  distributed jobs the two-phase exit protocol is implemented here: the worker
  that receives the revocation picks the exit iteration (current + 1) and
  propagates it to its peers, so all workers checkpoint at the same boundary
  and no deadlock or inconsistent checkpoint can occur.
* :class:`WorkerMetricsCollector` pushes arbitrary application metrics (loss,
  gradient norms, throughput, ...) to the WorkerManager's metric store, from
  which the CentralScheduler's metric collection abstraction aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.exceptions import LeaseError
from repro.runtime.worker_manager import WorkerManager


@dataclass
class WorkerMetricsCollector:
    """Push-style metric reporting from a training job to its WorkerManager."""

    job_id: int
    worker: WorkerManager

    def push(self, key: str, value: object) -> None:
        """Record a single application metric (any JSON-serialisable value)."""
        self.worker.push_metric(self.job_id, key, value)

    def push_many(self, metrics: Dict[str, object]) -> None:
        for key, value in metrics.items():
            self.push(key, value)


@dataclass
class CheckpointRecord:
    """What the data loader saved when it stopped (iteration + marker)."""

    job_id: int
    iteration: int
    consistent: bool


class BloxDataLoader:
    """Iteration-granularity lease checking and consistent-checkpoint exit.

    The loader is modelled as an iterator over iteration indices.  Real jobs
    wrap their PyTorch/TensorFlow loader; the control flow (lease check per
    iteration, coordinated exit for distributed jobs) is identical.
    """

    def __init__(
        self,
        job_id: int,
        worker: WorkerManager,
        total_iterations: int,
        peers: Sequence["BloxDataLoader"] = (),
    ) -> None:
        self.job_id = job_id
        self.worker = worker
        self.total_iterations = total_iterations
        self.peers: List[BloxDataLoader] = list(peers)
        self.current_iteration = 0
        self.exit_iteration: Optional[int] = None
        self.checkpoint: Optional[CheckpointRecord] = None

    # ------------------------------------------------------------------
    # Distributed coordination (two-phase lease expiration)
    # ------------------------------------------------------------------

    def attach_peers(self, peers: Sequence["BloxDataLoader"]) -> None:
        """Connect the workers of one distributed job to each other."""
        self.peers = [p for p in peers if p is not self]

    def _propagate_exit(self, exit_iteration: int) -> None:
        """Phase two: tell every peer the agreed exit iteration.

        The boundary only ever moves *forward*: a stale propagation (e.g. a
        duplicated revocation replayed by the fault-injecting channel) must
        never lower an exit iteration a peer may already have committed to,
        or workers would checkpoint at different boundaries.
        """
        if self.exit_iteration is None or exit_iteration > self.exit_iteration:
            self.exit_iteration = exit_iteration
        for peer in self.peers:
            if peer.exit_iteration is None or exit_iteration > peer.exit_iteration:
                peer.exit_iteration = exit_iteration
            recorded = peer.worker.exit_iterations.get(peer.job_id)
            if recorded is None or exit_iteration > recorded:
                peer.worker.exit_iterations[peer.job_id] = exit_iteration

    def _choose_exit_iteration(self) -> int:
        """Phase one: fix a boundary every worker can still reach.

        A peer may have raced one or more iterations ahead by the time the
        revocation lands here, so the agreed boundary is one past the
        *furthest* worker -- each worker then runs up to exactly that
        iteration and checkpoints at the same consistent state.
        """
        furthest = max(
            (peer.current_iteration for peer in self.peers),
            default=self.current_iteration,
        )
        return max(self.current_iteration, furthest) + 1

    def _check_lease(self) -> bool:
        """Return True when the job may run the next iteration."""
        if self.exit_iteration is not None:
            return self.current_iteration < self.exit_iteration
        if self.worker.lease_valid(self.job_id):
            return True
        # Lease revoked at this worker.  The revocation may already have
        # fixed a boundary (worker-to-worker phase two), but the worker only
        # knows *its* job's progress -- a peer may have raced past that
        # boundary by the time any loader observes the revocation.  The fixed
        # value is therefore a floor: the first loader to notice raises it to
        # one past the furthest peer if needed and propagates the result, so
        # every worker checkpoints at the same reachable iteration.
        pending = self.worker.exit_iteration_for(self.job_id)
        exit_iteration = self._choose_exit_iteration()
        if pending is not None:
            exit_iteration = max(pending, exit_iteration)
        self._propagate_exit(exit_iteration)
        return self.current_iteration < exit_iteration

    def _take_checkpoint(self) -> None:
        self.checkpoint = CheckpointRecord(
            job_id=self.job_id, iteration=self.current_iteration, consistent=True
        )

    # ------------------------------------------------------------------
    # Iteration protocol
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterable[int]:
        return self

    def __next__(self) -> int:
        if self.current_iteration >= self.total_iterations:
            self._take_checkpoint()
            self.worker.job_finished(self.job_id)
            raise StopIteration
        if not self._check_lease():
            self._take_checkpoint()
            raise StopIteration
        iteration = self.current_iteration
        self.current_iteration += 1
        # Report progress to the node-local WorkerManager (no RPC) so a
        # revocation arriving at this worker can fix a reachable exit
        # iteration even before any loader observes the revoked lease.
        self.worker.record_iteration(self.job_id, self.current_iteration)
        return iteration

    def run_to_completion_or_preemption(self) -> CheckpointRecord:
        """Drive the loader until it stops; returns the checkpoint it saved."""
        for _ in self:
            pass
        if self.checkpoint is None:
            raise LeaseError(f"job {self.job_id} stopped without taking a checkpoint")
        return self.checkpoint
