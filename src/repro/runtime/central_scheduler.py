"""The CentralScheduler: the deployment-path counterpart of the Simulator loop.

The scheduling loop and all policy modules are exactly the ones used in
simulation; what changes is the backend (as the paper emphasises, only the job
launch and preemption modules differ).  Here launches and preemptions are
dispatched over the in-memory RPC channel to the per-node WorkerManagers, and
job leases are managed through either the central or the optimistic lease
protocol.  Execution itself is still advanced by the shared execution model
(optionally with the cluster overhead model that adds real-run jitter), which
is what the fidelity experiment (Fig. 18) compares against plain simulation.

Three pieces tie the lease lifecycle and cluster dynamics together:

* :class:`DeploymentBloxManager` -- the loop's prune step releases every
  finished job's lease and clears its worker-local state
  (``WorkerManager.job_finished``), so completion -- not just preemption --
  retires leases;
* :class:`MembershipSyncManager` -- wraps any
  :class:`~repro.core.abstractions.ClusterManager` (e.g. a compiled scenario
  timeline) and reconciles the WorkerManager registry after every membership
  update, so scale-out registers fresh workers and scale-in deregisters dead
  ones instead of the first ``ScaleOut`` raising ``LeaseError``;
* :class:`~repro.runtime.metrics.WorkerMetricsAggregator` -- wires the
  worker-side metric stores (``push_metric``/``pull_metrics``) into the
  shared :class:`~repro.core.abstractions.MetricCollector` abstraction.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.abstractions import (
    AdmissionPolicy,
    ClusterManager,
    MetricCollector,
    PlacementPolicy,
    SchedulingPolicy,
)
from repro.core.blox_manager import BloxManager
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.core.job_state import JobState
from repro.core.mechanisms import SimulatedLauncher, SimulatedPreemption
from repro.runtime.lease import (
    CentralLeaseManager,
    OptimisticLeaseManager,
    _LeaseManagerBase,
)
from repro.metrics.summary import FaultStats
from repro.runtime.metrics import WorkerMetricsAggregator
from repro.runtime.rpc import FaultPlan, InMemoryRpcChannel, RetryPolicy, RpcCostModel
from repro.runtime.worker_manager import WorkerManager
from repro.simulator.engine import SimulationResult, Simulator
from repro.simulator.execution import ExecutionModel
from repro.simulator.overheads import ClusterOverheadModel, OverheadModel
from repro.telemetry.recorder import TraceRecorder


class RpcLauncher(SimulatedLauncher):
    """Launch mechanism that instructs WorkerManagers before updating shared state."""

    name = "rpc-launch"

    def __init__(self, overheads, lease_manager, cluster_state: ClusterState) -> None:
        super().__init__(overheads)
        self.lease_manager = lease_manager
        self._cluster_state = cluster_state

    def launch(self, job, gpu_ids, cluster_state, current_time) -> None:
        node_ids = sorted({cluster_state.gpu(g).node_id for g in gpu_ids})
        self.lease_manager.grant(job.job_id, node_ids)
        super().launch(job, gpu_ids, cluster_state, current_time)


class RpcPreemption(SimulatedPreemption):
    """Preemption mechanism that revokes leases via the lease protocol."""

    name = "rpc-preemption"

    def __init__(self, overheads, lease_manager) -> None:
        super().__init__(overheads)
        self.lease_manager = lease_manager
        self.lease_round_latencies_ms: List[float] = []

    def preempt(self, job, cluster_state, current_time) -> None:
        latency = self.lease_manager.renewal_round([job.job_id])
        self.lease_round_latencies_ms.append(latency)
        super().preempt(job, cluster_state, current_time)


class DeploymentBloxManager(BloxManager):
    """BloxManager whose prune step retires finished jobs' leases.

    Every path through the engine -- full rounds, light fast-forward rounds,
    steady strides and the gang chain -- prunes through this method, so a
    completed job always releases its lease and clears worker-local state in
    the same round it frees its GPUs.
    """

    def __init__(self, *args, lease_manager: Optional[_LeaseManagerBase] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if lease_manager is None:
            raise ConfigurationError("DeploymentBloxManager needs a lease_manager")
        self.lease_manager = lease_manager

    def prune_completed_jobs(
        self, cluster_state: ClusterState, job_state: JobState
    ) -> List[Job]:
        finished = super().prune_completed_jobs(cluster_state, job_state)
        for job in finished:
            self.lease_manager.complete(job.job_id)
        return finished


class MembershipSyncManager(ClusterManager):
    """Wraps a ClusterManager and keeps the worker registry membership-true.

    After the inner manager applies its events (failures, recoveries,
    scale-out/in, upgrades), the lease manager's registry is reconciled with
    the cluster's node set.  ``next_event_time`` delegates, so scenario
    timelines keep fast-forward active through the deployment path; an inner
    manager that overrides ``update`` without ``next_event_time`` (the
    pre-migration contract) gets skipping disabled explicitly, mirroring the
    engine's own migration check, which this wrapper would otherwise mask.
    """

    name = "membership-sync"

    def __init__(
        self,
        inner: Optional[ClusterManager],
        lease_manager: _LeaseManagerBase,
    ) -> None:
        self.inner = inner if inner is not None else ClusterManager()
        self.lease_manager = lease_manager
        inner_cls = type(self.inner)
        self._inner_unmigrated = (
            inner_cls.update is not ClusterManager.update
            and inner_cls.next_event_time is ClusterManager.next_event_time
        )

    def update(self, cluster_state: ClusterState, current_time: float) -> List[int]:
        affected = self.inner.update(cluster_state, current_time)
        self.lease_manager.sync_membership(cluster_state)
        return affected

    def drain_applied(self):
        # Without this delegation the timeline's firings would be invisible
        # to telemetry on the deployment path.
        return self.inner.drain_applied()

    def next_event_time(self, current_time: float) -> Optional[float]:
        if self._inner_unmigrated:
            return current_time
        return self.inner.next_event_time(current_time)


class CentralScheduler:
    """Runs the Blox loop against WorkerManagers over RPC ("cluster mode")."""

    def __init__(
        self,
        cluster_state: ClusterState,
        jobs: Sequence[Job],
        scheduling_policy: SchedulingPolicy,
        placement_policy: Optional[PlacementPolicy] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
        round_duration: float = 300.0,
        lease_protocol: str = "optimistic",
        overhead_model: Optional[OverheadModel] = None,
        metric_collectors: Sequence[MetricCollector] = (),
        rpc_cost_model: RpcCostModel = RpcCostModel(),
        tracked_job_ids: Optional[Sequence[int]] = None,
        max_rounds: int = 200_000,
        cluster_manager: Optional[ClusterManager] = None,
        fast_forward: bool = True,
        collect_worker_metrics: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        recorder: Optional[TraceRecorder] = None,
        engine: str = "rounds",
    ) -> None:
        if lease_protocol not in ("central", "optimistic"):
            raise ConfigurationError(f"unknown lease protocol {lease_protocol!r}")
        self.cluster_state = cluster_state
        # An armed fault plan turns every lease RPC into an attempt loop with
        # retry/backoff and idempotency-token dedup; the schedule must stay
        # bit-identical to a fault-free run (only latencies and fault counters
        # differ), which the chaos bench gates.
        self.channel = InMemoryRpcChannel(rpc_cost_model, fault_plan, retry_policy)
        initial_workers = [
            WorkerManager(node_id=node_id, channel=self.channel)
            for node_id in sorted(cluster_state.nodes)
        ]
        manager_cls = CentralLeaseManager if lease_protocol == "central" else OptimisticLeaseManager
        self.lease_manager = manager_cls(initial_workers, self.channel)

        # Cluster runs pay real launch/preemption overheads plus jitter by
        # default; fidelity/parity experiments pass a deterministic model.
        overheads = overhead_model if overhead_model is not None else ClusterOverheadModel()
        execution = ExecutionModel(overhead_model=overheads)
        launcher = RpcLauncher(overheads, self.lease_manager, cluster_state)
        self.preemptor = RpcPreemption(overheads, self.lease_manager)

        collectors = list(metric_collectors)
        self.worker_metrics: Optional[WorkerMetricsAggregator] = None
        if collect_worker_metrics:
            self.worker_metrics = WorkerMetricsAggregator(
                self.channel, self.lease_manager.workers
            )
            collectors.append(self.worker_metrics)

        self._simulator = Simulator(
            cluster_state=cluster_state,
            jobs=jobs,
            scheduling_policy=scheduling_policy,
            placement_policy=placement_policy,
            admission_policy=admission_policy,
            round_duration=round_duration,
            execution_model=execution,
            metric_collectors=collectors,
            tracked_job_ids=tracked_job_ids,
            max_rounds=max_rounds,
            cluster_manager=MembershipSyncManager(cluster_manager, self.lease_manager),
            fast_forward=fast_forward,
            manager_factory=partial(
                DeploymentBloxManager, lease_manager=self.lease_manager
            ),
            recorder=recorder,
            engine=engine,
        )
        # Swap in the RPC-backed launch/preemption mechanisms: the two modules
        # that differ between simulation and deployment.
        self._simulator.manager.launcher = launcher
        self._simulator.manager.preemptor = self.preemptor
        # Telemetry: the lease protocol and the RPC channel share the
        # simulator's recorder (one source, one monotonic sequence) and read
        # the loop's clock -- hooks only observe, so traced deployment runs
        # keep schedule parity with untraced ones.
        if recorder is not None:
            clock = lambda: self._simulator.manager.current_time  # noqa: E731
            self.lease_manager.set_telemetry(recorder, clock)
            self.channel.set_telemetry(recorder, clock)

    def run(self) -> SimulationResult:
        """Execute the workload through the deployment path."""
        return self._simulator.run()

    @property
    def manager(self) -> BloxManager:
        return self._simulator.manager

    @property
    def workers(self) -> Dict[int, WorkerManager]:
        """Live node-id -> WorkerManager registry (membership-synced)."""
        return self.lease_manager.workers

    def lease_latencies_ms(self) -> List[float]:
        """Per-preemption lease-round latencies observed during the run."""
        return list(self.preemptor.lease_round_latencies_ms)

    def fault_stats(self) -> FaultStats:
        """Fault-injection and recovery counters from the RPC channel."""
        return self.channel.fault_stats()

    def leaked_leases(self) -> int:
        """Lease-protocol state still held; must be zero after a drained run."""
        return self.lease_manager.leaked_leases()
