"""The CentralScheduler: the deployment-path counterpart of the Simulator loop.

The scheduling loop and all policy modules are exactly the ones used in
simulation; what changes is the backend (as the paper emphasises, only the job
launch and preemption modules differ).  Here launches and preemptions are
dispatched over the in-memory RPC channel to the per-node WorkerManagers, and
job leases are managed through either the central or the optimistic lease
protocol.  Execution itself is still advanced by the shared execution model
(optionally with the cluster overhead model that adds real-run jitter), which
is what the fidelity experiment (Fig. 18) compares against plain simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.abstractions import (
    AdmissionPolicy,
    MetricCollector,
    PlacementPolicy,
    SchedulingPolicy,
)
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.core.mechanisms import SimulatedLauncher, SimulatedPreemption
from repro.core.blox_manager import BloxManager
from repro.simulator.engine import SimulationResult, Simulator
from repro.simulator.execution import ExecutionModel
from repro.simulator.overheads import ClusterOverheadModel, OverheadModel
from repro.runtime.lease import CentralLeaseManager, OptimisticLeaseManager
from repro.runtime.rpc import InMemoryRpcChannel, RpcCostModel
from repro.runtime.worker_manager import WorkerManager


class RpcLauncher(SimulatedLauncher):
    """Launch mechanism that instructs WorkerManagers before updating shared state."""

    name = "rpc-launch"

    def __init__(self, overheads, lease_manager, cluster_state: ClusterState) -> None:
        super().__init__(overheads)
        self.lease_manager = lease_manager
        self._cluster_state = cluster_state

    def launch(self, job, gpu_ids, cluster_state, current_time) -> None:
        node_ids = sorted({cluster_state.gpu(g).node_id for g in gpu_ids})
        self.lease_manager.grant(job.job_id, node_ids)
        super().launch(job, gpu_ids, cluster_state, current_time)


class RpcPreemption(SimulatedPreemption):
    """Preemption mechanism that revokes leases via the lease protocol."""

    name = "rpc-preemption"

    def __init__(self, overheads, lease_manager) -> None:
        super().__init__(overheads)
        self.lease_manager = lease_manager
        self.lease_round_latencies_ms: List[float] = []

    def preempt(self, job, cluster_state, current_time) -> None:
        latency = self.lease_manager.renewal_round([job.job_id])
        self.lease_round_latencies_ms.append(latency)
        super().preempt(job, cluster_state, current_time)


class CentralScheduler:
    """Runs the Blox loop against WorkerManagers over RPC ("cluster mode")."""

    def __init__(
        self,
        cluster_state: ClusterState,
        jobs: Sequence[Job],
        scheduling_policy: SchedulingPolicy,
        placement_policy: Optional[PlacementPolicy] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
        round_duration: float = 300.0,
        lease_protocol: str = "optimistic",
        overhead_model: Optional[OverheadModel] = None,
        metric_collectors: Sequence[MetricCollector] = (),
        rpc_cost_model: RpcCostModel = RpcCostModel(),
        tracked_job_ids: Optional[Sequence[int]] = None,
        max_rounds: int = 200_000,
    ) -> None:
        if lease_protocol not in ("central", "optimistic"):
            raise ConfigurationError(f"unknown lease protocol {lease_protocol!r}")
        self.cluster_state = cluster_state
        self.channel = InMemoryRpcChannel(rpc_cost_model)
        self.workers: Dict[int, WorkerManager] = {
            node_id: WorkerManager(node_id=node_id, channel=self.channel)
            for node_id in cluster_state.nodes
        }
        manager_cls = CentralLeaseManager if lease_protocol == "central" else OptimisticLeaseManager
        self.lease_manager = manager_cls(list(self.workers.values()), self.channel)

        # Cluster runs pay real launch/preemption overheads plus jitter.
        overheads = overhead_model if overhead_model is not None else ClusterOverheadModel()
        execution = ExecutionModel(overhead_model=overheads)
        launcher = RpcLauncher(overheads, self.lease_manager, cluster_state)
        self.preemptor = RpcPreemption(overheads, self.lease_manager)

        self._simulator = Simulator(
            cluster_state=cluster_state,
            jobs=jobs,
            scheduling_policy=scheduling_policy,
            placement_policy=placement_policy,
            admission_policy=admission_policy,
            round_duration=round_duration,
            execution_model=execution,
            metric_collectors=metric_collectors,
            tracked_job_ids=tracked_job_ids,
            max_rounds=max_rounds,
        )
        # Swap in the RPC-backed launch/preemption mechanisms: the two modules
        # that differ between simulation and deployment.
        self._simulator.manager.launcher = launcher
        self._simulator.manager.preemptor = self.preemptor

    def run(self) -> SimulationResult:
        """Execute the workload through the deployment path."""
        return self._simulator.run()

    @property
    def manager(self) -> BloxManager:
        return self._simulator.manager

    def lease_latencies_ms(self) -> List[float]:
        """Per-preemption lease-round latencies observed during the run."""
        return list(self.preemptor.lease_round_latencies_ms)
