"""Round-based simulation engine: execution model, overhead model and the driver.

``Simulator`` lives in :mod:`repro.simulator.engine`; it is intentionally not
re-exported here because the engine imports the core package (BloxManager),
which in turn uses the overhead/execution models from this package -- import
it as ``from repro.simulator.engine import Simulator`` (or via the top-level
``repro`` package, which re-exports it once everything is initialised).
"""

from repro.simulator.execution import ExecutionModel
from repro.simulator.overheads import OverheadModel, ClusterOverheadModel

__all__ = [
    "ExecutionModel",
    "OverheadModel",
    "ClusterOverheadModel",
]
