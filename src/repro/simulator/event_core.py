"""The event-driven skip core: heap-organised strides, batched accounting.

:class:`EventCore` is the ``engine="events"`` execution strategy of
:class:`~repro.simulator.engine.Simulator`.  The round loop keeps making every
*decision* -- full rounds run the identical eight steps, and the skip
*eligibility* logic in ``Simulator._fast_forward`` (witnesses, policy bounds,
admission quiescence) is shared verbatim -- but once a skip is sanctioned,
execution is handed here instead of to the classic per-round executors.  The
clock then jumps from event to event:

* upcoming **completions** are probed once per (job, allocation epoch) via the
  exact replay of :meth:`~repro.simulator.execution.ExecutionModel.steady_scan`
  and cached (resumably) in :class:`_CompletionProbe` entries, feeding
  ``KIND_COMPLETION`` events into the :class:`~repro.core.events.EventHeap`;
* **arrivals**, **cluster/timeline churn** (including federation routing
  bounds surfaced through ``ClusterManager.next_event_time``) and **policy
  events** become boundary events -- rounds at which the full loop must run
  again;
* the rounds *between* events carry no decisions by construction, so their
  observable product -- the round log, the accumulated clock, and each
  running job's progress accounting -- is materialised in batch:
  constant-field :class:`~repro.simulator.engine.RoundRecord` rows, an exact
  clock jump, and
  :meth:`~repro.simulator.execution.ExecutionModel.advance_steady_bulk`
  constant-delta folds.  With the round log disabled
  (``round_log_limit=0``) and no trace recorder attached, a whole segment is
  literally O(1).

Bit-identity with the round-loop oracle rests on three mirrored mechanisms,
each of which the parity fuzz harness exercises:

1. **round counting** -- every horizon->round conversion uses the oracle's own
   accumulated-clock comparison (``while clock + rd < horizon: clock += rd``),
   with a closed form only where float accumulation is provably exact
   (integral clock and round duration below 2**53);
2. **progress accounting** -- deferred/batched advancement replays the exact
   per-round float fold of ``ExecutionModel.advance`` (same values, same
   order), so completion times agree to the last bit;
3. **tie-breaking** -- simultaneous events resolve by the heap's
   ``(time, kind, id)`` order, which encodes the round loop's implicit
   resolution: boundary kinds hand the round to the full loop (which then
   applies advance -> prune -> admit -> schedule in its canonical order),
   completions materialise in ascending job id.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.blox_manager import BloxManager
from repro.core.events import (
    KIND_ARRIVAL,
    KIND_CLUSTER,
    KIND_COMPLETION,
    EventHeap,
    SimEvent,
)
from repro.core.exceptions import SimulationError
from repro.core.job import Job, JobStatus
from repro.telemetry.events import EVENT_ROUND

#: Float integers stay exact under addition below this bound, which is what
#: licenses the O(1) clock jump and the closed-form round count.
_EXACT_FLOAT_INT = float(2**53)


class _CompletionProbe:
    """Cached, resumable completion probe for one job.

    The absolute round in which a running job completes is invariant while
    its (membership version, allocation version, rate, work target) stamp
    holds, because every execution path replays the same per-round fold from
    the same history.  So the probe is taken once per allocation epoch,
    scanning lazily only as far as the caller's current horizon needs, and
    resumed from its saved ``(work, pending)`` state when a later call needs
    to see further.
    """

    __slots__ = (
        "membership",
        "alloc",
        "rate",
        "target",
        "event_round",
        "scanned_through",
        "work",
        "pending",
    )

    def __init__(
        self,
        membership: int,
        alloc: int,
        rate: float,
        target: float,
        scanned_through: int,
        work: float,
        pending: float,
    ) -> None:
        self.membership = membership
        self.alloc = alloc
        self.rate = rate
        self.target = target
        #: Absolute completion round once found; ``None`` while unknown.
        self.event_round: Optional[int] = None
        self.scanned_through = scanned_through
        self.work = work
        self.pending = pending


class EventCore:
    """Event-heap skip executor bound to one :class:`Simulator` instance."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.heap = EventHeap()
        self._probes: Dict[int, _CompletionProbe] = {}
        # Batched execution bypasses the manager's per-round advance_time
        # calls (and, for idle segments, its per-round update_metrics/prune
        # no-ops), so a manager subclass overriding those hooks keeps the
        # classic executors -- mirroring the engine's unmigrated-manager
        # check for ClusterManager.update.
        mgr_cls = type(sim.manager)
        self._clock_batchable = mgr_cls.advance_time is BloxManager.advance_time
        self._idle_batchable = (
            self._clock_batchable
            and mgr_cls.update_metrics is BloxManager.update_metrics
            and mgr_cls.prune_completed_jobs is BloxManager.prune_completed_jobs
        )

    # ------------------------------------------------------------------
    # Exact round arithmetic
    # ------------------------------------------------------------------

    def _rounds_until(self, horizon: float, round_cap: int) -> int:
        """Rounds skippable before ``horizon``, capped -- oracle-identically.

        The oracle counts with ``while clock + rd < horizon: clock += rd``;
        when clock and round duration are float integers the accumulated sums
        are exact, so the count has a closed form (guess-and-adjust against
        the same float comparison).  Otherwise the accumulation is mirrored
        literally.
        """
        if round_cap <= 0:
            return 0
        mgr = self.sim.manager
        rd = mgr.round_duration
        clock = mgr.current_time
        if horizon == math.inf:
            return round_cap
        if (
            rd > 0
            and clock.is_integer()
            and rd.is_integer()
            and abs(clock) + round_cap * rd < _EXACT_FLOAT_INT
        ):
            guess = int((horizon - clock) / rd)
            guess = min(max(guess, 0), round_cap)
            while guess > 0 and clock + guess * rd >= horizon:
                guess -= 1
            while guess < round_cap and clock + (guess + 1) * rd < horizon:
                guess += 1
            return guess
        count = 0
        while count < round_cap and clock + rd < horizon:
            clock += rd
            count += 1
        return count

    def _advance_clock(self, rounds: int) -> None:
        """Jump the manager clock ``rounds`` rounds, bit-equal to repeated adds."""
        mgr = self.sim.manager
        rd = mgr.round_duration
        clock = mgr.current_time
        if (
            clock.is_integer()
            and rd.is_integer()
            and abs(clock) + rounds * rd < _EXACT_FLOAT_INT
        ):
            mgr.current_time = clock + rounds * rd
        else:
            for _ in range(rounds):
                clock += rd
            mgr.current_time = clock
        mgr.round_number += rounds

    # ------------------------------------------------------------------
    # Batched round records
    # ------------------------------------------------------------------

    def _append_records(self, rounds: int) -> None:
        """Advance ``rounds`` skipped rounds: clock, log rows, trace events.

        Nothing observable changes between events, so every row shares one
        set of counts/utilisation values; only the round number and the
        accumulated clock vary.  With the log disabled and no recorder the
        whole segment collapses to the O(1) clock jump.
        """
        if rounds <= 0:
            return
        sim = self.sim
        mgr = sim.manager
        log = sim._round_log
        recorder = sim._recorder
        if recorder is None and getattr(log, "maxlen", None) == 0:
            self._advance_clock(rounds)
            return
        job_state = sim.job_state
        running = job_state.count_with_status(JobStatus.RUNNING)
        queued = job_state.count_active() - running
        utilization = sim.cluster_state.utilization()
        busy = sim.cluster_state.busy_capacity()
        healthy = sim.cluster_state.healthy_capacity()
        scheduler_name = (
            getattr(sim.scheduling_policy, "current_name", None)
            or sim.scheduling_policy.name
        )
        admission_name = (
            getattr(sim.admission_policy, "current_name", None)
            or sim.admission_policy.name
        )
        from repro.simulator.engine import RoundRecord

        rd = mgr.round_duration
        clock = mgr.current_time
        number = mgr.round_number
        append = log.append
        for _ in range(rounds):
            clock += rd
            number += 1
            record = RoundRecord(
                round_number=number,
                time=clock,
                running_jobs=running,
                queued_jobs=queued,
                utilization=utilization,
                scheduler_name=scheduler_name,
                admission_name=admission_name,
                busy_capacity=busy,
                healthy_capacity=healthy,
            )
            append(record)
            if recorder is not None:
                recorder.emit(
                    EVENT_ROUND,
                    clock,
                    {
                        "round": number,
                        "running": running,
                        "queued": queued,
                        "utilization": utilization,
                        "busy_capacity": busy,
                        "healthy_capacity": healthy,
                    },
                )
        mgr.current_time = clock
        mgr.round_number = number

    # ------------------------------------------------------------------
    # Completion events
    # ------------------------------------------------------------------

    def _completion_event_round(
        self, job: Job, rate: float, cap_round: int
    ) -> Optional[int]:
        """Absolute round in which ``job`` completes, or None if past ``cap_round``.

        Cache-validated against the job's version stamps; scans resume from
        the cached state, so across a whole run each round of a job's life is
        probed at most once per allocation epoch (the classic executors
        re-probe from scratch at every fast-forward entry).
        """
        if rate <= 0:
            return None
        sim = self.sim
        execution = sim.execution_model
        cluster = sim.cluster_state
        target = execution.termination.work_target(job)
        membership = cluster.membership_version
        alloc = cluster.alloc_version(job.job_id)
        probe = self._probes.get(job.job_id)
        if (
            probe is None
            or probe.membership != membership
            or probe.alloc != alloc
            or probe.rate != rate
            or probe.target != target
        ):
            probe = _CompletionProbe(
                membership,
                alloc,
                rate,
                target,
                scanned_through=sim.manager.round_number,
                work=job.work_done,
                pending=job.pending_overhead,
            )
            self._probes[job.job_id] = probe
        if probe.event_round is None and cap_round > probe.scanned_through:
            completing, work, pending = execution.steady_scan(
                target,
                rate,
                sim.manager.round_duration,
                probe.work,
                probe.pending,
                cap_round - probe.scanned_through,
            )
            if completing is not None:
                probe.event_round = probe.scanned_through + completing
            else:
                probe.scanned_through = cap_round
                probe.work = work
                probe.pending = pending
        if probe.event_round is not None and probe.event_round <= cap_round:
            return probe.event_round
        return None

    # ------------------------------------------------------------------
    # Skip executors (dispatch targets of Simulator._fast_forward)
    # ------------------------------------------------------------------

    def light(self, horizon: float, running: int, round_log: List) -> bool:
        """Idle segments: no running jobs, so only the log rows accumulate."""
        sim = self.sim
        if (
            not self._idle_batchable
            or not sim._stride_accelerable
            or sim.job_state.count_active()
        ):
            # Short gang-steady windows, collector-observed or jittered
            # strides, and unbatchable managers keep the oracle's loop.
            return sim._fast_forward_light(horizon, running, round_log)
        mgr = sim.manager
        rounds = self._rounds_until(horizon, sim.max_rounds - 1 - mgr.round_number)
        if rounds > 0:
            self._append_records(rounds)
            sim.job_state.current_time = mgr.current_time
        return False

    def steady(self, horizon: float, round_log: List) -> bool:
        """Decision-stable strides: batched records + bulk advancement."""
        sim = self.sim
        if not self._clock_batchable:
            return sim._fast_forward_steady(horizon, round_log)
        mgr = sim.manager
        job_state = sim.job_state
        execution = sim.execution_model
        rounds = self._rounds_until(horizon, sim.max_rounds - 1 - mgr.round_number)
        if rounds == 0:
            return False
        base = mgr.round_number
        advancing = [
            (job, execution.cached_rate(job, sim.cluster_state)[0])
            for job in job_state.running_jobs()
        ]
        for job, rate in advancing:
            completing = self._completion_event_round(job, rate, base + rounds)
            if completing is not None:
                # Stop one round short: the completing round must run as a
                # full round so the freed GPUs can go to a queued job.
                limit = completing - base - 1
                if limit < rounds:
                    rounds = limit
        if rounds <= 0:
            return False
        self._append_records(rounds - 1)
        mgr.advance_time()
        final_round_start = mgr.current_time - mgr.round_duration
        execution.advance_steady_bulk(
            [job for job, _rate in advancing],
            sim.cluster_state,
            final_round_start,
            mgr.round_duration,
            rounds,
        )
        mgr.prune_completed_jobs(sim.cluster_state, job_state)
        if sim._tracked_all_finished():
            return True
        job_state.current_time = mgr.current_time
        round_log.append(sim._round_record())
        return False

    def chain(self, round_log: List) -> bool:
        """Gang-steady drain chain organised around the event heap.

        Mirrors ``Simulator._fast_forward_chain`` segment for segment: under
        the gang witness a completion cannot change any decision, so the heap
        is seeded with every running job's completion event (cache-amortised
        probes) and the chain jumps completion to completion, handing back to
        the full loop at the first boundary event.  Ties at one round resolve
        by the heap's ``(time, kind, id)`` order -- boundary kinds first,
        which is exactly the oracle's implicit behaviour of materialising a
        same-round completion inside the boundary's full round.
        """
        sim = self.sim
        if not self._clock_batchable:
            return sim._fast_forward_chain(round_log)
        mgr = sim.manager
        job_state = sim.job_state
        execution = sim.execution_model
        rd = mgr.round_duration
        entry_round = mgr.round_number

        probe_cap = sim.max_rounds - 1 - entry_round
        if probe_cap <= 0:
            return False
        next_event = mgr.cluster_manager.next_event_time(mgr.current_time)
        next_arrival = mgr.next_arrival_time()
        entry_bounds = [t for t in (next_event, next_arrival) if t is not None]
        if entry_bounds:
            to_horizon = int((min(entry_bounds) - mgr.current_time) / rd) + 2
            probe_cap = min(probe_cap, max(1, to_horizon))

        jobs = job_state.running_jobs()
        heap = self.heap
        heap.clear()
        advanced_through: Dict[int, int] = {}
        by_id: Dict[int, Job] = {}
        for job in jobs:
            rate = execution.cached_rate(job, sim.cluster_state)[0]
            advanced_through[job.job_id] = entry_round
            by_id[job.job_id] = job
            completing = self._completion_event_round(
                job, rate, entry_round + probe_cap
            )
            if completing is not None:
                heap.push(SimEvent(completing, KIND_COMPLETION, job.job_id))

        def flush(job: Job, upto_round: int, final_round_start: float) -> bool:
            owed = upto_round - advanced_through[job.job_id]
            advanced_through[job.job_id] = upto_round
            if owed <= 0:
                return False
            return execution.advance_steady(
                job, sim.cluster_state, final_round_start, rd, owed
            )

        def flush_all() -> None:
            # Jobs flushed mid-chain are exactly the completed ones, so every
            # still-running job owes the same span -- one bulk fold.
            flushing = [job for job in jobs if job.status == JobStatus.RUNNING]
            owed = mgr.round_number - entry_round
            if owed > 0 and flushing:
                execution.advance_steady_bulk(
                    flushing, sim.cluster_state, mgr.current_time - rd, rd, owed
                )
                for job in flushing:
                    advanced_through[job.job_id] = mgr.round_number
            job_state.current_time = mgr.current_time

        while True:
            next_event = mgr.cluster_manager.next_event_time(mgr.current_time)
            next_arrival = mgr.next_arrival_time()
            bounds = []
            if next_event is not None:
                bounds.append((next_event, KIND_CLUSTER))
            if next_arrival is not None:
                bounds.append((next_arrival, KIND_ARRIVAL))
            horizon = min(bounds)[0] if bounds else math.inf
            segment_cap = self._rounds_until(
                horizon, sim.max_rounds - 1 - mgr.round_number
            )
            completion = heap.peek()
            if completion is None or completion.time > mgr.round_number + segment_cap:
                # The next event is a boundary (or the round budget): skip
                # straight to it and hand the loop back.  A completion tied
                # to the boundary round lands here too -- KIND_CLUSTER and
                # KIND_ARRIVAL order before KIND_COMPLETION -- and the full
                # boundary round materialises it.
                self._append_records(segment_cap)
                flush_all()
                return False
            boundary = completion.time
            self._append_records(boundary - 1 - mgr.round_number)
            mgr.advance_time()
            final_round_start = mgr.current_time - rd
            while True:
                completion = heap.peek()
                if completion is None or completion.time != boundary:
                    break
                heap.pop()
                job = by_id[completion.id]
                if not flush(job, boundary, final_round_start):
                    raise SimulationError(
                        f"job {completion.id} did not complete in its probed "
                        f"round {boundary}; event-core accounting diverged"
                    )
                self._probes.pop(completion.id, None)
            mgr.prune_completed_jobs(sim.cluster_state, job_state)
            if sim._tracked_all_finished():
                # The simulation ends at this round exactly as the full loop
                # would; materialise the remaining jobs' deferred rounds so
                # their work/service accounting matches a per-round run.
                flush_all()
                return True
            job_state.current_time = mgr.current_time
            round_log.append(sim._round_record())
            if not job_state.count_active():
                flush_all()
                return False
            # The gang witness is preserved by construction (the remaining
            # jobs keep running on their exact gangs), so chain directly into
            # the next segment.
