"""The job execution model: how fast a job progresses given its allocation.

A job's rate of progress during a round depends on

* how many GPUs it was allocated relative to its request (scaling curve),
* the GPU generation it landed on (compute factor),
* whether its allocation is consolidated on one node or fragmented across the
  network (placement efficiency, a function of the model's communication
  intensity and the cross-node bandwidth),
* any CPU/memory throttling imposed by resource-sensitive placement (Synergy),
* pending launch/restore overheads charged by the overhead model.

All schedulers share this model, which is what makes comparisons across
policies "on a common footing" as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.abstractions import TerminationPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import SimulationError
from repro.core.job import Job, JobStatus
from repro.simulator.overheads import OverheadModel

#: Cross-node bandwidth (Gbps) at which a fragmented placement-sensitive job
#: pays its nominal communication penalty.  Faster networks shrink the penalty,
#: slower networks grow it -- this is what flips the Tiresias placement result
#: when moving from 100 Gbps P100 clusters to 10 Gbps V100 clusters (Fig. 10).
REFERENCE_NETWORK_BW_GBPS = 40.0


@dataclass
class RoundProgress:
    """What happened to one job during one round (returned for logging/tests)."""

    job_id: int
    work_done: float
    compute_seconds: float
    overhead_seconds: float
    completed: bool
    effective_rate: float


class ExecutionModel:
    """Advances running jobs through simulated time, one round at a time."""

    def __init__(
        self,
        overhead_model: Optional[OverheadModel] = None,
        termination_policy: Optional[TerminationPolicy] = None,
    ) -> None:
        from repro.policies.termination.epoch import EpochBasedTermination

        self.overheads = overhead_model if overhead_model is not None else OverheadModel()
        self.termination = (
            termination_policy if termination_policy is not None else EpochBasedTermination()
        )

    # ------------------------------------------------------------------
    # Rate model
    # ------------------------------------------------------------------

    def placement_efficiency(self, job: Job, cluster_state: ClusterState) -> float:
        """Throughput multiplier for the job's current placement (1.0 = ideal).

        Consolidated jobs (all GPUs on one node) and single-GPU jobs run at
        full speed.  Fragmented multi-GPU jobs pay a penalty proportional to
        the model's communication intensity and inversely proportional to the
        cross-node bandwidth of the nodes they span.
        """
        nodes = cluster_state.nodes_for_job(job.job_id)
        if len(nodes) <= 1:
            return 1.0
        bandwidths = [cluster_state.node(n).network_bw_gbps for n in nodes]
        bottleneck_bw = min(bandwidths)
        if bottleneck_bw <= 0:
            raise SimulationError(f"node with non-positive network bandwidth hosting job {job.job_id}")
        penalty = job.comm_intensity * (REFERENCE_NETWORK_BW_GBPS / bottleneck_bw)
        return 1.0 / (1.0 + penalty)

    def effective_rate(self, job: Job, cluster_state: ClusterState) -> float:
        """Progress in requested-allocation seconds per wall-clock second."""
        gpus = cluster_state.gpus_for_job(job.job_id)
        if not gpus:
            return 0.0
        scaling = job.throughput_factor(len(gpus))
        compute_factor = min(g.gpu_type.compute_factor for g in gpus)
        placement = self.placement_efficiency(job, cluster_state)
        cpu_factor = float(job.metrics.get("cpu_throughput_factor", 1.0))
        jitter = self.overheads.iteration_jitter(job)
        return scaling * compute_factor * placement * cpu_factor * jitter

    # ------------------------------------------------------------------
    # Round advancement
    # ------------------------------------------------------------------

    def advance(
        self,
        job: Job,
        cluster_state: ClusterState,
        round_start: float,
        round_duration: float,
    ) -> RoundProgress:
        """Advance one running job across one round of wall-clock time.

        Updates ``work_done``, ``attained_service`` and application metrics on
        the job; marks it completed (with a sub-round-accurate completion time)
        if it reaches its termination target during the round.
        """
        if job.status != JobStatus.RUNNING:
            raise SimulationError(f"cannot advance job {job.job_id} in status {job.status}")
        gpus = cluster_state.gpus_for_job(job.job_id)
        if not gpus:
            raise SimulationError(f"running job {job.job_id} holds no GPUs")

        rate = self.effective_rate(job, cluster_state)
        if len(cluster_state.nodes_for_job(job.job_id)) > 1:
            job.metrics["was_fragmented"] = True
        available = round_duration

        overhead_used = min(job.pending_overhead, available)
        job.pending_overhead -= overhead_used
        available -= overhead_used

        target = self.termination.work_target(job)
        remaining = max(0.0, target - job.work_done)

        completed = False
        if rate <= 0:
            compute_seconds = 0.0
            work = 0.0
        else:
            time_to_finish = remaining / rate
            if time_to_finish <= available:
                compute_seconds = time_to_finish
                work = remaining
                completed = True
            else:
                compute_seconds = available
                work = available * rate

        job.work_done += work
        job.attained_service += len(gpus) * (compute_seconds + overhead_used)
        self._update_app_metrics(job, rate)

        if completed:
            job.status = JobStatus.COMPLETED
            job.completion_time = round_start + overhead_used + compute_seconds
        return RoundProgress(
            job_id=job.job_id,
            work_done=work,
            compute_seconds=compute_seconds,
            overhead_seconds=overhead_used,
            completed=completed,
            effective_rate=rate,
        )

    def _update_app_metrics(self, job: Job, rate: float) -> None:
        """Push the application-level metrics the paper's schedulers consume."""
        progress = job.progress_fraction
        # A simple exponentially decaying loss curve: reaches ~1% of its initial
        # value at the job's convergence point and stays flat afterwards.
        convergence_progress = min(1.0, progress / job.convergence_fraction)
        loss = 10.0 * (0.01 ** convergence_progress)
        job.metrics["loss"] = loss
        job.metrics["progress"] = progress
        if rate > 0:
            job.metrics["iteration_time"] = job.iteration_time / rate
            job.metrics["throughput"] = rate / job.iteration_time
        job.metrics["attained_service"] = job.attained_service
