"""The job execution model: how fast a job progresses given its allocation.

A job's rate of progress during a round depends on

* how many GPUs it was allocated relative to its request (scaling curve),
* the GPU generation it landed on (compute factor),
* whether its allocation is consolidated on one node or fragmented across the
  network (placement efficiency, a function of the model's communication
  intensity and the cross-node bandwidth),
* any CPU/memory throttling imposed by resource-sensitive placement (Synergy),
* pending launch/restore overheads charged by the overhead model.

All schedulers share this model, which is what makes comparisons across
policies "on a common footing" as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised indirectly via advance_steady_bulk
    import numpy as _np
except ImportError:  # pragma: no cover - the scalar path is always available
    _np = None

from repro.core.abstractions import TerminationPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import SimulationError
from repro.core.job import Job, JobStatus
from repro.simulator.overheads import OverheadModel

#: Cross-node bandwidth (Gbps) at which a fragmented placement-sensitive job
#: pays its nominal communication penalty.  Faster networks shrink the penalty,
#: slower networks grow it -- this is what flips the Tiresias placement result
#: when moving from 100 Gbps P100 clusters to 10 Gbps V100 clusters (Fig. 10).
REFERENCE_NETWORK_BW_GBPS = 40.0

#: Below this many jobs the per-round numpy call overhead exceeds the scalar
#: loop it replaces; elementwise float64 adds are bit-identical either way,
#: so the threshold is purely a speed knob.
BULK_NUMPY_MIN_JOBS = 16


@dataclass
class RoundProgress:
    """What happened to one job during one round (returned for logging/tests)."""

    job_id: int
    work_done: float
    compute_seconds: float
    overhead_seconds: float
    completed: bool
    effective_rate: float


class ExecutionModel:
    """Advances running jobs through simulated time, one round at a time."""

    def __init__(
        self,
        overhead_model: Optional[OverheadModel] = None,
        termination_policy: Optional[TerminationPolicy] = None,
    ) -> None:
        from repro.policies.termination.epoch import EpochBasedTermination

        self.overheads = overhead_model if overhead_model is not None else OverheadModel()
        self.termination = (
            termination_policy if termination_policy is not None else EpochBasedTermination()
        )
        # A running job's effective rate is a pure function of its allocation
        # and the cluster's membership, both covered by the cluster's version
        # stamps -- unless the overhead model injects per-round jitter, whose
        # RNG must be consumed exactly once per round.  The cache keys on the
        # cluster object identity plus both stamps.
        self._rates_cacheable = (
            type(self.overheads).iteration_jitter is OverheadModel.iteration_jitter
        )
        #: job id -> (cluster, membership_version, alloc_version, rate,
        #: fragmented, num_gpus)
        self._rate_cache: Dict[int, Tuple[object, int, int, float, bool, int]] = {}

    # ------------------------------------------------------------------
    # Rate model
    # ------------------------------------------------------------------

    def placement_efficiency(self, job: Job, cluster_state: ClusterState) -> float:
        """Throughput multiplier for the job's current placement (1.0 = ideal).

        Consolidated jobs (all GPUs on one node) and single-GPU jobs run at
        full speed.  Fragmented multi-GPU jobs pay a penalty proportional to
        the model's communication intensity and inversely proportional to the
        cross-node bandwidth of the nodes they span.
        """
        nodes = cluster_state.nodes_for_job(job.job_id)
        if len(nodes) <= 1:
            return 1.0
        bandwidths = [cluster_state.node(n).network_bw_gbps for n in nodes]
        bottleneck_bw = min(bandwidths)
        if bottleneck_bw <= 0:
            raise SimulationError(f"node with non-positive network bandwidth hosting job {job.job_id}")
        penalty = job.comm_intensity * (REFERENCE_NETWORK_BW_GBPS / bottleneck_bw)
        return 1.0 / (1.0 + penalty)

    def effective_rate(self, job: Job, cluster_state: ClusterState) -> float:
        """Progress in requested-allocation seconds per wall-clock second."""
        gpus = cluster_state.gpus_for_job(job.job_id)
        if not gpus:
            return 0.0
        scaling = job.throughput_factor(len(gpus))
        compute_factor = min(g.gpu_type.compute_factor for g in gpus)
        placement = self.placement_efficiency(job, cluster_state)
        cpu_factor = float(job.metrics.get("cpu_throughput_factor", 1.0))
        jitter = self.overheads.iteration_jitter(job)
        return scaling * compute_factor * placement * cpu_factor * jitter

    def cached_rate(self, job: Job, cluster_state: ClusterState) -> Tuple[float, bool, int]:
        """``(effective_rate, is_fragmented, num_gpus)`` with memoization.

        The three values are pure functions of state covered by the cluster's
        version stamps, so one entry serves every round until the job's
        allocation or the cluster membership changes.  Falls back to a fresh
        computation per call when the overhead model has per-round jitter
        (the RNG draw must happen exactly once per round).
        """
        if not self._rates_cacheable:
            return (
                self.effective_rate(job, cluster_state),
                len(cluster_state.nodes_for_job(job.job_id)) > 1,
                cluster_state.num_gpus_for_job(job.job_id),
            )
        membership = cluster_state.membership_version
        alloc = cluster_state.alloc_version(job.job_id)
        entry = self._rate_cache.get(job.job_id)
        if (
            entry is not None
            and entry[0] is cluster_state
            and entry[1] == membership
            and entry[2] == alloc
        ):
            return entry[3], entry[4], entry[5]
        rate = self.effective_rate(job, cluster_state)
        fragmented = len(cluster_state.nodes_for_job(job.job_id)) > 1
        num_gpus = cluster_state.num_gpus_for_job(job.job_id)
        self._rate_cache[job.job_id] = (
            cluster_state, membership, alloc, rate, fragmented, num_gpus
        )
        return rate, fragmented, num_gpus

    # ------------------------------------------------------------------
    # Round advancement
    # ------------------------------------------------------------------

    def advance(
        self,
        job: Job,
        cluster_state: ClusterState,
        round_start: float,
        round_duration: float,
    ) -> RoundProgress:
        """Advance one running job across one round of wall-clock time.

        Updates ``work_done``, ``attained_service`` and application metrics on
        the job; marks it completed (with a sub-round-accurate completion time)
        if it reaches its termination target during the round.
        """
        if job.status != JobStatus.RUNNING:
            raise SimulationError(f"cannot advance job {job.job_id} in status {job.status}")
        rate, fragmented, num_gpus = self.cached_rate(job, cluster_state)
        if not num_gpus:
            raise SimulationError(f"running job {job.job_id} holds no GPUs")
        if fragmented:
            job.metrics["was_fragmented"] = True
        available = round_duration

        overhead_used = min(job.pending_overhead, available)
        job.pending_overhead -= overhead_used
        available -= overhead_used

        target = self.termination.work_target(job)
        remaining = max(0.0, target - job.work_done)

        completed = False
        if rate <= 0:
            compute_seconds = 0.0
            work = 0.0
        else:
            time_to_finish = remaining / rate
            if time_to_finish <= available:
                compute_seconds = time_to_finish
                work = remaining
                completed = True
            else:
                compute_seconds = available
                work = available * rate

        job.work_done += work
        job.attained_service += num_gpus * (compute_seconds + overhead_used)
        self._update_app_metrics(job, rate)

        if completed:
            # completion_time first: the status setter notifies JobState
            # observers, which read the JCT off the job.
            job.completion_time = round_start + overhead_used + compute_seconds
            job.status = JobStatus.COMPLETED
        return RoundProgress(
            job_id=job.job_id,
            work_done=work,
            compute_seconds=compute_seconds,
            overhead_seconds=overhead_used,
            completed=completed,
            effective_rate=rate,
        )

    def steady_completion_round(
        self,
        job: Job,
        round_duration: float,
        max_rounds: int,
        rate: float,
    ) -> Optional[int]:
        """Stride round (1-based) in which a running job would complete.

        A pure probe: replays the per-round work/overhead accounting of
        :meth:`advance` -- identical values, identical operation order --
        without mutating the job, so the simulator can size a fast-forward
        stride exactly.  Returns ``None`` when the job cannot complete within
        ``max_rounds`` rounds at the given (constant) rate.
        """
        if rate <= 0:
            return None
        target = self.termination.work_target(job)
        completing, _work, _pending = self.steady_scan(
            target, rate, round_duration, job.work_done, job.pending_overhead, max_rounds
        )
        return completing

    @staticmethod
    def steady_scan(
        target: float,
        rate: float,
        round_duration: float,
        work: float,
        pending: float,
        max_rounds: int,
    ) -> Tuple[Optional[int], float, float]:
        """Resumable form of :meth:`steady_completion_round`'s replay.

        Replays up to ``max_rounds`` rounds of the per-round accounting from
        the explicit ``(work, pending)`` state and returns
        ``(completing_round, work, pending)`` where ``completing_round`` is
        1-based within *this* scan or ``None``.  When no completion is found
        the returned state is exactly the state after ``max_rounds`` rounds,
        so a caller can resume the scan later from where it stopped -- the
        event core's completion-probe cache uses this to amortise probing
        across fast-forward entries (each round of a job's life is scanned at
        most once per allocation epoch).  On a completion the returned state
        is mid-round and must not be resumed from.

        The per-round operations are identical, in identical order, to
        :meth:`advance` under a constant rate -- that identity is what lets a
        probe taken rounds ago still name the exact absolute completion
        round, because every execution path (full rounds, steady strides,
        deferred flushes) replays this same fold.
        """
        if rate <= 0:
            return None, work, pending
        # General fold only while overhead is draining; once pending hits
        # exactly 0.0 every later round has overhead_used == 0.0 and
        # available == round_duration, so the loop switches to a fast fold
        # with constant operands and no min/max calls -- identical values,
        # identical float-operation order.
        i = 1
        while i <= max_rounds and pending != 0.0:
            overhead_used = min(pending, round_duration)
            pending -= overhead_used
            available = round_duration - overhead_used
            remaining = max(0.0, target - work)
            if remaining / rate <= available:
                return i, work, pending
            work += available * rate
            i += 1
        work_delta = round_duration * rate
        while i <= max_rounds:
            remaining = target - work
            if remaining < 0.0:
                remaining = 0.0
            if remaining / rate <= round_duration:
                return i, work, pending
            work += work_delta
            i += 1
        return None, work, pending

    def advance_steady(
        self,
        job: Job,
        cluster_state: ClusterState,
        final_round_start: float,
        round_duration: float,
        rounds: int,
        rate: Optional[float] = None,
    ) -> bool:
        """Advance one running job across ``rounds`` steady-state rounds at once.

        Used by the simulator's fast-forward when the job's allocation,
        placement and rate are constant across the stride: the per-round
        work/overhead/service accounting is replayed in a tight loop with
        exactly the floating-point operations :meth:`advance` would perform
        (same values, same order, per job), so the job's state after the call
        is bit-identical to ``rounds`` individual ``advance`` calls --
        including the sub-round completion time if the job finishes in the
        stride's final round (callers size strides with
        :meth:`steady_completion_round` so a completion can only fall there).
        The application metrics are pure functions of the final state and the
        constant rate, so they are flushed once at the end instead of per
        round.

        ``final_round_start`` is the wall-clock start of the stride's *last*
        round, taken from the manager's accumulated clock so a completion time
        assigned here is bit-identical to the one ``advance`` would assign.
        Returns whether the job completed.
        """
        if job.status != JobStatus.RUNNING:
            raise SimulationError(f"cannot advance job {job.job_id} in status {job.status}")
        if rate is None:
            rate, fragmented, num_gpus = self.cached_rate(job, cluster_state)
        else:
            fragmented = len(cluster_state.nodes_for_job(job.job_id)) > 1
            num_gpus = cluster_state.num_gpus_for_job(job.job_id)
        if not num_gpus:
            raise SimulationError(f"running job {job.job_id} holds no GPUs")
        if fragmented:
            job.metrics["was_fragmented"] = True

        target = self.termination.work_target(job)
        work = job.work_done
        attained = job.attained_service
        pending = job.pending_overhead
        completed = False
        overhead_used = 0.0
        compute_seconds = 0.0
        # General fold only while overhead drains (or the rate is
        # non-positive); once pending hits exactly 0.0 with a positive rate,
        # every later round has overhead_used == 0.0 and available ==
        # round_duration, so the loop switches to a fast fold of two adds per
        # non-completing round with constant operands and no min/max calls.
        # Both arms perform identical float operations in identical order.
        index = 0
        while index < rounds and (pending != 0.0 or rate <= 0):
            overhead_used = min(pending, round_duration)
            pending -= overhead_used
            available = round_duration - overhead_used
            remaining = max(0.0, target - work)
            if rate <= 0:
                compute_seconds = 0.0
                work_delta = 0.0
            else:
                time_to_finish = remaining / rate
                if time_to_finish <= available:
                    compute_seconds = time_to_finish
                    work_delta = remaining
                    completed = True
                else:
                    compute_seconds = available
                    work_delta = available * rate
            work += work_delta
            attained += num_gpus * (compute_seconds + overhead_used)
            if completed:
                if index != rounds - 1:
                    raise SimulationError(
                        f"job {job.job_id} completed in stride round {index + 1} "
                        f"of {rounds}; the stride was sized past its completion"
                    )
                break
            index += 1
        if not completed and index < rounds:
            work_delta = round_duration * rate
            service_delta = num_gpus * (round_duration + 0.0)
            overhead_used = 0.0
            while index < rounds:
                remaining = target - work
                if remaining < 0.0:
                    remaining = 0.0
                compute_seconds = remaining / rate
                if compute_seconds <= round_duration:
                    completed = True
                    work += remaining
                    attained += num_gpus * (compute_seconds + 0.0)
                    if index != rounds - 1:
                        raise SimulationError(
                            f"job {job.job_id} completed in stride round {index + 1} "
                            f"of {rounds}; the stride was sized past its completion"
                        )
                    break
                work += work_delta
                attained += service_delta
                index += 1
        job.work_done = work
        job.attained_service = attained
        job.pending_overhead = pending
        self._update_app_metrics(job, rate)
        if completed:
            job.completion_time = final_round_start + overhead_used + compute_seconds
            job.status = JobStatus.COMPLETED
        return completed

    def advance_steady_bulk(
        self,
        jobs: Sequence[Job],
        cluster_state: ClusterState,
        final_round_start: float,
        round_duration: float,
        rounds: int,
    ) -> None:
        """Advance many running jobs ``rounds`` steady rounds each, batched.

        Bit-identical to calling :meth:`advance_steady` per job in ``jobs``
        order, but the common case -- no pending overhead, positive rate, no
        completion inside the stride -- collapses each job's round loop to two
        float additions per round with constant, precomputed deltas (the
        per-round operands never change once the overhead is drained), and
        vectorises those additions across jobs with numpy when the batch is
        large (elementwise IEEE-754 float64 adds are bit-identical to the
        scalar fold).

        Callers size ``rounds`` strictly before every job's probed completion
        round; the fast path *verifies* that claim rather than trusting it.
        The per-round completion test ``remaining / rate <= available`` is
        monotone along the stride (work never decreases, so remaining never
        increases), so testing it once at the final round with the exact
        values the classic loop would use proves every earlier round took the
        no-completion arm.  Any job failing the check -- or carrying pending
        overhead -- is replayed through :meth:`advance_steady`, preserving its
        exact completion/error semantics.
        """
        if rounds <= 0:
            return
        fast: list = []  # (job, rate, num_gpus) for the pure constant-delta fold
        for job in jobs:
            if job.status != JobStatus.RUNNING:
                raise SimulationError(
                    f"cannot advance job {job.job_id} in status {job.status}"
                )
            rate, fragmented, num_gpus = self.cached_rate(job, cluster_state)
            if not num_gpus:
                raise SimulationError(f"running job {job.job_id} holds no GPUs")
            if job.pending_overhead != 0.0:
                # Overhead rounds change the per-round operands; rare (the
                # launch round's full advance usually drains it), so the
                # classic replay is fine.
                self.advance_steady(
                    job, cluster_state, final_round_start, round_duration, rounds
                )
                continue
            if fragmented:
                job.metrics["was_fragmented"] = True
            if rate <= 0:
                # Every round adds exactly 0.0 work and 0.0 service; the fold
                # is a no-op regardless of length (and such a job can never
                # complete), so only the end-of-stride metric flush remains.
                self._update_app_metrics(job, rate)
                continue
            fast.append((job, rate, num_gpus))
        if not fast:
            return

        work_delta = [round_duration * rate for _job, rate, _n in fast]
        service_delta = [
            # advance() computes num_gpus * (compute_seconds + overhead_used);
            # with overhead 0.0 that inner sum is exactly round_duration.
            num_gpus * (round_duration + 0.0)
            for _job, _rate, num_gpus in fast
        ]
        if _np is not None and len(fast) >= BULK_NUMPY_MIN_JOBS:
            works = _np.array([job.work_done for job, _r, _n in fast])
            services = _np.array([job.attained_service for job, _r, _n in fast])
            wdelta = _np.array(work_delta)
            sdelta = _np.array(service_delta)
            for _ in range(rounds - 1):
                _np.add(works, wdelta, out=works)
                _np.add(services, sdelta, out=services)
            final_work = [float(v) for v in works]
            final_service = [float(v) for v in services]
        else:
            final_work = [job.work_done for job, _r, _n in fast]
            final_service = [job.attained_service for job, _r, _n in fast]
            for index in range(len(fast)):
                work = final_work[index]
                service = final_service[index]
                wdelta_i = work_delta[index]
                sdelta_i = service_delta[index]
                for _ in range(rounds - 1):
                    work += wdelta_i
                    service += sdelta_i
                final_work[index] = work
                final_service[index] = service

        for index, (job, rate, _num_gpus) in enumerate(fast):
            # Completion-safety check at the stride's final round, with the
            # exact operands the classic loop's test would use there.
            target = self.termination.work_target(job)
            remaining = max(0.0, target - final_work[index])
            if remaining / rate <= round_duration:
                # A completion (or the stride-overrun error) belongs inside
                # the stride after all: hand the untouched job to the exact
                # replay.  Monotonicity means only this job is affected.
                self.advance_steady(
                    job, cluster_state, final_round_start, round_duration, rounds
                )
                continue
            job.work_done = final_work[index] + work_delta[index]
            job.attained_service = final_service[index] + service_delta[index]
            self._update_app_metrics(job, rate)

    def _update_app_metrics(self, job: Job, rate: float) -> None:
        """Push the application-level metrics the paper's schedulers consume."""
        duration = job.duration
        progress = 1.0 if duration <= 0 else min(1.0, job.work_done / duration)
        # A simple exponentially decaying loss curve: reaches ~1% of its initial
        # value at the job's convergence point and stays flat afterwards.
        convergence_progress = min(1.0, progress / job.convergence_fraction)
        loss = 10.0 * (0.01 ** convergence_progress)
        metrics = job.metrics
        metrics["loss"] = loss
        metrics["progress"] = progress
        if rate > 0:
            iteration_time = job.iteration_time
            metrics["iteration_time"] = iteration_time / rate
            metrics["throughput"] = rate / iteration_time
        metrics["attained_service"] = job.attained_service
