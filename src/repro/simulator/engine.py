"""The round-based simulation driver.

:class:`Simulator` composes the Blox abstractions exactly as the scheduling
loop in Figure 2 of the paper: every round it updates cluster membership,
advances running jobs, prunes completed jobs, pops newly arrived jobs from the
wait queue, runs the admission, scheduling and placement policies and applies
the resulting decision.  The same composition runs on the deployment path (see
:mod:`repro.runtime`); only the ``BloxManager`` backend and the launch and
preemption mechanisms change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.abstractions import (
    AdmissionPolicy,
    ClusterManager,
    MetricCollector,
    PlacementPolicy,
    SchedulingPolicy,
    TerminationPolicy,
)
from repro.core.blox_manager import BloxManager
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.metrics.summary import SummaryStats, average, cdf_points, jct_summary
from repro.simulator.execution import ExecutionModel
from repro.simulator.overheads import OverheadModel


@dataclass
class RoundRecord:
    """One row of the per-round log kept by the simulator."""

    round_number: int
    time: float
    running_jobs: int
    queued_jobs: int
    utilization: float
    scheduler_name: str
    admission_name: str


@dataclass
class SimulationResult:
    """Everything an experiment needs after a simulation finished."""

    jobs: List[Job]
    tracked_job_ids: List[int]
    round_duration: float
    rounds: int
    end_time: float
    round_log: List[RoundRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Job views
    # ------------------------------------------------------------------

    def tracked_jobs(self) -> List[Job]:
        wanted = set(self.tracked_job_ids)
        return [j for j in self.jobs if j.job_id in wanted]

    def finished_jobs(self, tracked_only: bool = True) -> List[Job]:
        jobs = self.tracked_jobs() if tracked_only else self.jobs
        return [j for j in jobs if j.completion_time is not None]

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------

    def jcts(self, tracked_only: bool = True) -> List[float]:
        return [j.job_completion_time() for j in self.finished_jobs(tracked_only)]

    def responsiveness_values(self, tracked_only: bool = True) -> List[float]:
        values = [j.responsiveness() for j in self.finished_jobs(tracked_only)]
        return [v for v in values if v is not None]

    def avg_jct(self, tracked_only: bool = True) -> float:
        return average(self.jcts(tracked_only))

    def avg_responsiveness(self, tracked_only: bool = True) -> float:
        return average(self.responsiveness_values(tracked_only))

    def makespan(self, tracked_only: bool = True) -> float:
        finished = self.finished_jobs(tracked_only)
        if not finished:
            return 0.0
        return max(j.completion_time for j in finished) - min(j.arrival_time for j in finished)

    def jct_cdf(self, tracked_only: bool = True) -> Tuple[List[float], List[float]]:
        return cdf_points(self.jcts(tracked_only))

    def summary(self) -> SummaryStats:
        return jct_summary(self.jobs, self.tracked_job_ids)

    def completion_fraction(self, tracked_only: bool = True) -> float:
        jobs = self.tracked_jobs() if tracked_only else self.jobs
        if not jobs:
            return 0.0
        return len([j for j in jobs if j.completion_time is not None]) / len(jobs)


class Simulator:
    """Composes policies into the Blox scheduling loop and runs it to completion."""

    def __init__(
        self,
        cluster_state: ClusterState,
        jobs: Iterable[Job],
        scheduling_policy: SchedulingPolicy,
        placement_policy: Optional[PlacementPolicy] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
        round_duration: float = 300.0,
        overhead_model: Optional[OverheadModel] = None,
        execution_model: Optional[ExecutionModel] = None,
        termination_policy: Optional[TerminationPolicy] = None,
        metric_collectors: Sequence[MetricCollector] = (),
        cluster_manager: Optional[ClusterManager] = None,
        tracked_job_ids: Optional[Sequence[int]] = None,
        max_rounds: int = 200_000,
    ) -> None:
        from repro.policies.admission.accept_all import AcceptAll
        from repro.policies.placement.consolidated import ConsolidatedPlacement

        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")

        self.cluster_state = cluster_state
        self.job_state = JobState()
        self.jobs = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        if not self.jobs:
            raise ConfigurationError("cannot simulate an empty workload")
        self.scheduling_policy = scheduling_policy
        self.placement_policy = placement_policy or ConsolidatedPlacement()
        self.admission_policy = admission_policy or AcceptAll()
        if execution_model is not None:
            self.execution_model = execution_model
        else:
            self.execution_model = ExecutionModel(
                overhead_model=overhead_model, termination_policy=termination_policy
            )
        self.metric_collectors = list(metric_collectors)
        self.max_rounds = max_rounds
        self.manager = BloxManager(
            trace_jobs=self.jobs,
            round_duration=round_duration,
            execution_model=self.execution_model,
            cluster_manager=cluster_manager,
        )
        if tracked_job_ids is None:
            self.tracked_job_ids = [j.job_id for j in self.jobs]
        else:
            self.tracked_job_ids = list(tracked_job_ids)

    # ------------------------------------------------------------------

    def _tracked_all_finished(self) -> bool:
        for job_id in self.tracked_job_ids:
            if job_id in self.job_state:
                if not self.job_state.get(job_id).is_finished:
                    return False
            else:
                return False
        return True

    def _stalled(self) -> bool:
        """True when nothing can ever make progress again (guards against livelock)."""
        if not self.manager.all_arrived():
            return False
        if self.job_state.active_jobs():
            return False
        if self.admission_policy.pending_jobs():
            return False
        if self.job_state.waiting_admission_jobs():
            return False
        return True

    def run(self) -> SimulationResult:
        """Run the scheduling loop until every tracked job finished."""
        mgr = self.manager
        round_log: List[RoundRecord] = []

        for _ in range(self.max_rounds):
            # 1. Cluster membership changes (failures force a reschedule of jobs).
            affected = mgr.update_cluster(self.cluster_state)
            for job_id in affected:
                if job_id in self.job_state:
                    job = self.job_state.get(job_id)
                    if job.status == JobStatus.RUNNING:
                        mgr.preemptor.preempt(job, self.cluster_state, mgr.current_time)

            # 2./3. Progress from the previous round, then free completed jobs.
            mgr.update_metrics(self.cluster_state, self.job_state)
            mgr.prune_completed_jobs(self.cluster_state, self.job_state)

            if self._tracked_all_finished():
                break

            # 4. Admission of newly arrived jobs.
            self.job_state.current_time = mgr.current_time
            new_jobs = mgr.pop_wait_queue()
            accepted = self.admission_policy.accept(new_jobs, self.cluster_state, self.job_state)
            self.job_state.add_new_jobs(accepted, mgr.current_time)

            # 5. Scheduling and placement.
            schedule = self.scheduling_policy.schedule(self.job_state, self.cluster_state)
            decision = self.placement_policy.place(schedule, self.cluster_state, self.job_state)

            # 6. Apply the decision.
            mgr.exec_jobs(decision, self.cluster_state, self.job_state)

            # 7. Metric collection.
            for collector in self.metric_collectors:
                collector.collect(self.job_state, self.cluster_state, mgr.current_time)

            round_log.append(
                RoundRecord(
                    round_number=mgr.round_number,
                    time=mgr.current_time,
                    running_jobs=len(self.job_state.running_jobs()),
                    queued_jobs=len(self.job_state.active_jobs())
                    - len(self.job_state.running_jobs()),
                    utilization=self.cluster_state.utilization(),
                    scheduler_name=getattr(self.scheduling_policy, "current_name", None)
                    or self.scheduling_policy.name,
                    admission_name=getattr(self.admission_policy, "current_name", None)
                    or self.admission_policy.name,
                )
            )

            if self._stalled():
                break

            mgr.advance_time()
        else:
            raise SimulationError(
                f"simulation did not finish within {self.max_rounds} rounds; "
                "the workload is likely too large for the cluster or a policy is starving jobs"
            )

        return SimulationResult(
            jobs=self.job_state.all_jobs(),
            tracked_job_ids=self.tracked_job_ids,
            round_duration=mgr.round_duration,
            rounds=mgr.round_number,
            end_time=mgr.current_time,
            round_log=round_log,
        )


def run_simulation(
    cluster_state: ClusterState,
    jobs: Iterable[Job],
    scheduling_policy: SchedulingPolicy,
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(cluster_state, jobs, scheduling_policy, **kwargs).run()
