"""The round-based simulation driver.

:class:`Simulator` composes the Blox abstractions exactly as the scheduling
loop in Figure 2 of the paper: every round it updates cluster membership,
advances running jobs, prunes completed jobs, pops newly arrived jobs from the
wait queue, runs the admission, scheduling and placement policies and applies
the resulting decision.  The same composition runs on the deployment path (see
:mod:`repro.runtime`); only the ``BloxManager`` backend and the launch and
preemption mechanisms change.
"""

from __future__ import annotations

import heapq
import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    MutableSequence,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.abstractions import (
    AdmissionPolicy,
    ClusterManager,
    MetricCollector,
    PlacementPolicy,
    SchedulingPolicy,
    TerminationPolicy,
)
from repro.core.blox_manager import BloxManager, is_lease_renewal
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.metrics.summary import SummaryStats, average, cdf_points, jct_summary
from repro.simulator.execution import ExecutionModel
from repro.simulator.overheads import OverheadModel
from repro.telemetry.events import (
    EVENT_CLUSTER,
    EVENT_DECISION,
    EVENT_EVICTION,
    EVENT_ROUND,
)
from repro.telemetry.recorder import TelemetryObserver, TraceRecorder


@dataclass
class RoundRecord:
    """One row of the per-round log kept by the simulator."""

    round_number: int
    time: float
    running_jobs: int
    queued_jobs: int
    utilization: float
    scheduler_name: str
    admission_name: str
    #: Compute-weighted capacity in use / available on healthy nodes this
    #: round (O(1) cached counters); scenario reports integrate these over
    #: time into a capacity-weighted utilisation that stays meaningful while
    #: nodes fail, recover or change GPU generation mid-run.
    busy_capacity: float = 0.0
    healthy_capacity: float = 0.0


@dataclass
class SimulationResult:
    """Everything an experiment needs after a simulation finished."""

    jobs: List[Job]
    tracked_job_ids: List[int]
    round_duration: float
    rounds: int
    end_time: float
    round_log: List[RoundRecord] = field(default_factory=list)
    #: Wall-clock seconds :meth:`Simulator.run` took; lets sweep workers
    #: report rounds/s without timing around the process boundary.  Never
    #: part of parity comparisons.
    wall_time_s: float = 0.0
    #: Running jobs forced off their GPUs by cluster events (failures,
    #: scale-in, upgrades) -- as opposed to policy-initiated preemptions.
    eviction_count: int = 0

    # ------------------------------------------------------------------
    # Job views
    # ------------------------------------------------------------------

    def tracked_jobs(self) -> List[Job]:
        wanted = set(self.tracked_job_ids)
        return [j for j in self.jobs if j.job_id in wanted]

    def finished_jobs(self, tracked_only: bool = True) -> List[Job]:
        jobs = self.tracked_jobs() if tracked_only else self.jobs
        return [j for j in jobs if j.completion_time is not None]

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------

    def jcts(self, tracked_only: bool = True) -> List[float]:
        return [j.job_completion_time() for j in self.finished_jobs(tracked_only)]

    def responsiveness_values(self, tracked_only: bool = True) -> List[float]:
        values = [j.responsiveness() for j in self.finished_jobs(tracked_only)]
        return [v for v in values if v is not None]

    def avg_jct(self, tracked_only: bool = True) -> float:
        return average(self.jcts(tracked_only))

    def avg_responsiveness(self, tracked_only: bool = True) -> float:
        return average(self.responsiveness_values(tracked_only))

    def makespan(self, tracked_only: bool = True) -> float:
        finished = self.finished_jobs(tracked_only)
        if not finished:
            return 0.0
        return max(j.completion_time for j in finished) - min(j.arrival_time for j in finished)

    def jct_cdf(self, tracked_only: bool = True) -> Tuple[List[float], List[float]]:
        return cdf_points(self.jcts(tracked_only))

    def summary(self) -> SummaryStats:
        return jct_summary(self.jobs, self.tracked_job_ids)

    def completion_fraction(self, tracked_only: bool = True) -> float:
        jobs = self.tracked_jobs() if tracked_only else self.jobs
        if not jobs:
            return 0.0
        return len([j for j in jobs if j.completion_time is not None]) / len(jobs)


class Simulator:
    """Composes policies into the Blox scheduling loop and runs it to completion."""

    def __init__(
        self,
        cluster_state: ClusterState,
        jobs: Iterable[Job],
        scheduling_policy: SchedulingPolicy,
        placement_policy: Optional[PlacementPolicy] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
        round_duration: float = 300.0,
        overhead_model: Optional[OverheadModel] = None,
        execution_model: Optional[ExecutionModel] = None,
        termination_policy: Optional[TerminationPolicy] = None,
        metric_collectors: Sequence[MetricCollector] = (),
        cluster_manager: Optional[ClusterManager] = None,
        tracked_job_ids: Optional[Sequence[int]] = None,
        max_rounds: int = 200_000,
        fast_forward: bool = True,
        job_state: Optional[JobState] = None,
        manager_factory: Optional[Callable[..., BloxManager]] = None,
        allow_empty_workload: bool = False,
        recorder: Optional["TraceRecorder"] = None,
        round_log_limit: Optional[int] = None,
        engine: str = "rounds",
    ) -> None:
        from repro.policies.admission.accept_all import AcceptAll
        from repro.policies.placement.consolidated import ConsolidatedPlacement

        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if engine not in ("rounds", "events"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected 'rounds' or 'events'"
            )

        self.cluster_state = cluster_state
        self.job_state = job_state if job_state is not None else JobState()
        self.jobs = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        if not self.jobs and not allow_empty_workload:
            # Federation shards start empty and receive jobs via routing
            # (allow_empty_workload=True); everywhere else an empty workload
            # is a configuration mistake.
            raise ConfigurationError("cannot simulate an empty workload")
        self.scheduling_policy = scheduling_policy
        self.placement_policy = placement_policy or ConsolidatedPlacement()
        self.admission_policy = admission_policy or AcceptAll()
        if execution_model is not None:
            self.execution_model = execution_model
        else:
            self.execution_model = ExecutionModel(
                overhead_model=overhead_model, termination_policy=termination_policy
            )
        self.metric_collectors = list(metric_collectors)
        self.max_rounds = max_rounds
        # The deployment path (repro.runtime.CentralScheduler) substitutes a
        # BloxManager subclass that ties the lease lifecycle to job
        # completion; everything else about the loop is shared.
        if manager_factory is None:
            manager_factory = BloxManager
        self.manager = manager_factory(
            trace_jobs=self.jobs,
            round_duration=round_duration,
            execution_model=self.execution_model,
            cluster_manager=cluster_manager,
        )
        if tracked_job_ids is None:
            self.tracked_job_ids = [j.job_id for j in self.jobs]
        else:
            self.tracked_job_ids = list(tracked_job_ids)

        # Event-skipping is only enabled when every composed policy declares it
        # safe to skip its per-round calls while nothing can change.
        self.fast_forward = (
            bool(fast_forward)
            and getattr(self.scheduling_policy, "supports_fast_forward", True)
            and getattr(self.admission_policy, "supports_fast_forward", True)
            and getattr(self.placement_policy, "supports_fast_forward", True)
        )
        # Skipping rounds *with running jobs* additionally requires that
        # rescheduling an unchanged set of running gang jobs is a no-op.
        self._steady_state_safe = (
            getattr(self.scheduling_policy, "steady_state_safe", False)
            and getattr(self.admission_policy, "steady_state_safe", False)
            and getattr(self.placement_policy, "steady_state_safe", False)
        )
        # Decision-stable skipping (the path for elastic/discretised policies)
        # requires the scheduling policy to bound when its decision next
        # changes.  A policy that does not override next_policy_event_time
        # keeps the base "may change any round" contract, so the detection
        # mirrors the ClusterManager.next_event_time migration check below.
        # A drift-free execution rate (no per-round jitter RNG that strides
        # must not consume out of order) is required both for predicting
        # completion times and for batched per-job advancement.
        self._jitter_free = (
            type(self.execution_model.overheads).iteration_jitter
            is OverheadModel.iteration_jitter
        )
        self._policy_event_aware = (
            type(self.scheduling_policy).next_policy_event_time
            is not SchedulingPolicy.next_policy_event_time
            and getattr(self.placement_policy, "steady_state_safe", False)
            and getattr(self.admission_policy, "steady_state_safe", True)
            and self._jitter_free
        )
        # Steady-mode strides additionally require that nothing observes the
        # intermediate rounds (collectors sample per round by contract).
        self._stride_accelerable = self._jitter_free and not self.metric_collectors
        #: Whether the most recent full round's placement decision was a pure
        #: lease renewal (nothing suspended, nothing newly launched).  The
        #: elastic fast-forward path uses this as its fixed-point witness.
        self._last_decision_noop = False
        # A ClusterManager subclass that overrides update() but not
        # next_event_time() has per-round effects the simulator cannot predict;
        # treating its inherited "no events ever" as truth would silently skip
        # its events, so such managers disable event skipping entirely.
        manager_cls = type(self.manager.cluster_manager)
        if (
            manager_cls.update is not ClusterManager.update
            and manager_cls.next_event_time is ClusterManager.next_event_time
        ):
            self.fast_forward = False

        # Loop state lives on the instance so the loop is *resumable*: the
        # federation layer (src/repro/federation/) pauses a shard's loop at
        # routing events, submits routed jobs, and resumes it -- see
        # :meth:`_advance_loop`.  ``run()`` still drives a single
        # start-to-finish pass over this state.
        #
        # ``round_log_limit`` bounds the per-round history: N keeps the last N
        # records (a deque ring), 0 disables the log entirely.  Streaming
        # federation workers use this so 64-shard million-job runs do not
        # accumulate unbounded per-round rows; the limit never changes what
        # rounds execute, only what is retained.
        if round_log_limit is not None and round_log_limit < 0:
            raise ConfigurationError(
                f"round_log_limit must be >= 0 or None, got {round_log_limit}"
            )
        self._round_log_limit = round_log_limit
        self._round_log: MutableSequence[RoundRecord] = (
            deque(maxlen=round_log_limit) if round_log_limit is not None else []
        )
        self._eviction_count = 0
        self._wall_time = 0.0

        # Engine selection.  ``rounds`` is the classic loop and the
        # differential oracle; ``events`` swaps the three skip executors
        # (light rounds, steady strides, the gang chain) for the event-heap
        # core (repro.simulator.event_core), which batches the skipped rounds
        # around a heap of (round, kind, id) events.  Both engines share
        # every full-round step and every skip-eligibility *decision* -- the
        # event core only replaces skip *execution* -- which is what makes
        # "event-driven == round-loop bit-identical" provable surface by
        # surface rather than hoped for.
        self.engine = engine
        self._event_core = None
        if engine == "events":
            from repro.simulator.event_core import EventCore

            self._event_core = EventCore(self)

        # Telemetry is opt-in and read-only: the recorder hooks only observe
        # state (never draw RNG or mutate anything), so a traced run stays
        # bit-identical to an untraced one, and it deliberately is not a
        # MetricCollector -- collectors disable steady-mode strides, which
        # would turn "record a trace" into a multi-x slowdown.
        self._recorder = recorder
        self._telemetry_observer: Optional[TelemetryObserver] = None
        if recorder is not None:
            self._telemetry_observer = TelemetryObserver(recorder, clock=self.manager)
            # The registry holds observers weakly; the instance attribute
            # above is the strong reference keeping it alive.
            self.job_state.add_observer(self._telemetry_observer)

    # ------------------------------------------------------------------

    def _tracked_all_finished(self) -> bool:
        # Cheap necessary condition first: tracked finished jobs are a subset
        # of all finished jobs, so the per-id scan can be skipped most rounds.
        if self.job_state.count_finished() < len(self.tracked_job_ids):
            return False
        for job_id in self.tracked_job_ids:
            if job_id in self.job_state:
                if not self.job_state.get(job_id).is_finished:
                    return False
            else:
                return False
        return True

    def _stalled(self) -> bool:
        """True when nothing can ever make progress again (guards against livelock)."""
        if not self.manager.all_arrived():
            return False
        if self.job_state.count_active():
            return False
        if self.admission_policy.pending_jobs():
            return False
        if self.job_state.count_with_status(JobStatus.WAITING_ADMISSION):
            return False
        return True

    def _round_record(self) -> RoundRecord:
        mgr = self.manager
        running = self.job_state.count_with_status(JobStatus.RUNNING)
        record = RoundRecord(
            round_number=mgr.round_number,
            time=mgr.current_time,
            running_jobs=running,
            queued_jobs=self.job_state.count_active() - running,
            utilization=self.cluster_state.utilization(),
            scheduler_name=getattr(self.scheduling_policy, "current_name", None)
            or self.scheduling_policy.name,
            admission_name=getattr(self.admission_policy, "current_name", None)
            or self.admission_policy.name,
            busy_capacity=self.cluster_state.busy_capacity(),
            healthy_capacity=self.cluster_state.healthy_capacity(),
        )
        # Every appended RoundRecord -- full rounds, light rounds, steady
        # strides, the drain chain -- is built here, so this is the single
        # choke point that makes the traced round stream equal the round log.
        if self._recorder is not None:
            self._recorder.emit(
                EVENT_ROUND,
                record.time,
                {
                    "round": record.round_number,
                    "running": record.running_jobs,
                    "queued": record.queued_jobs,
                    "utilization": record.utilization,
                    "busy_capacity": record.busy_capacity,
                    "healthy_capacity": record.healthy_capacity,
                },
            )
        return record

    # ------------------------------------------------------------------
    # Event-skipping fast-forward
    # ------------------------------------------------------------------

    def _decision_is_noop(self, decision) -> bool:
        """Whether applying ``decision`` leaves job and cluster state unchanged.

        True when nothing is suspended and every launch entry is a lease
        renewal (the job is already RUNNING on exactly those GPUs).  Must be
        evaluated *before* ``exec_jobs`` applies the decision.
        """
        if decision.to_suspend:
            return False
        for job_id, gpu_ids in decision.to_launch.items():
            if not is_lease_renewal(self.job_state.get(job_id), gpu_ids):
                return False
        return True

    def _gang_steady_witness(self) -> bool:
        """Whether rescheduling is provably a no-op this round (gang path).

        Requires every composed policy to be ``steady_state_safe``, every
        active job to be RUNNING, and each to hold exactly its requested gang.
        """
        job_state = self.job_state
        if not self._steady_state_safe:
            return False
        if job_state.count_with_status(JobStatus.RUNNING) != job_state.count_active():
            return False
        for job in job_state.running_jobs():
            if len(job.allocated_gpus) != job.num_gpus:
                return False
        return True

    def _earliest_completion_bound(self) -> Optional[float]:
        """Earliest time any running job can reach its termination target.

        Uses the execution model's own rate function, so the estimate matches
        what the per-round ``advance`` calls will accumulate (modulo
        floating-point association, which the caller's one-round margin
        absorbs).  ``None`` when no running job can finish (e.g. zero rates).
        """
        mgr = self.manager
        earliest: Optional[float] = None
        for job in self.job_state.running_jobs():
            rate = self.execution_model.cached_rate(job, self.cluster_state)[0]
            if rate <= 0:
                continue
            target = self.execution_model.termination.work_target(job)
            remaining = max(0.0, target - job.work_done)
            finish = mgr.current_time + job.pending_overhead + remaining / rate
            if earliest is None or finish < earliest:
                earliest = finish
        return earliest

    def _fast_forward(self, round_log: List[RoundRecord]) -> bool:
        """Skip rounds during which no scheduling decision can change.

        Called at the end of a full round, *before* ``advance_time``.  While no
        arrival, cluster event, admission release or scheduling change can
        occur, the only per-round work is advancing running jobs and logging --
        so we run exactly those steps ("light rounds") and skip the cluster
        update, admission, scheduling, placement and launch steps, which are
        guaranteed no-ops.  Light rounds execute the same ``advance`` calls in
        the same order as full rounds, so work/overhead accounting, completion
        times, metric collection and the round log stay bit-identical to a run
        with fast-forward disabled.

        Returns ``True`` when every tracked job finished during the skip (the
        caller must then stop exactly as the full loop would).
        """
        mgr = self.manager
        job_state = self.job_state

        # The admission pipeline must be quiescent: a policy whose accept([])
        # has per-round side effects (steady_state_safe=False) can never be
        # skipped, and otherwise nothing may be queued inside the policy or
        # waiting for admission in the registry.
        if not getattr(self.admission_policy, "steady_state_safe", True):
            return False
        if job_state.count_with_status(JobStatus.WAITING_ADMISSION):
            return False
        if self.admission_policy.pending_jobs():
            return False

        policy_bound: Optional[float] = None
        running = job_state.count_with_status(JobStatus.RUNNING)
        active = job_state.count_active()
        # A stride can run in *steady* mode -- per-job tight-loop accounting
        # via ExecutionModel.advance_steady plus batched round records -- when
        # per-round observation is provably equivalent to batched observation:
        # no metric collectors sample intermediate rounds, the rate model is
        # drift-free (no per-round jitter RNG), and the stride is bounded to
        # end strictly before the earliest completion.
        steady_mode = False
        if active:
            # Rounds with active jobs can be skipped on one of two witnesses.
            # Gang steady state: audited policies, every active job already
            # running, and each holding exactly its requested gang.
            gang_steady = self._gang_steady_witness()
            if gang_steady:
                # The chain's deferred bookkeeping (one probe + one flush per
                # job) only pays for itself on long strides; near an arrival
                # or cluster event the classic per-round loop is cheaper and
                # bit-identical, so short windows fall through to it.
                if self._stride_accelerable:
                    next_event = mgr.cluster_manager.next_event_time(mgr.current_time)
                    next_arrival = mgr.next_arrival_time()
                    entry_bounds = [t for t in (next_event, next_arrival) if t is not None]
                    if (
                        not entry_bounds
                        or min(entry_bounds) - mgr.current_time > 1 * mgr.round_duration
                    ):
                        if self._event_core is not None:
                            return self._event_core.chain(round_log)
                        return self._fast_forward_chain(round_log)
                # Not accelerable (collectors or jitter), or a short window:
                # fall through to the classic per-round loop, which breaks at
                # completions.
            else:
                # Decision-stable (elastic/discretised policies): this round's
                # decision was a pure lease renewal, and the policy guarantees
                # -- via next_policy_event_time -- that absent external events
                # it re-emits the same schedule until the returned time.  An
                # unchanged schedule against unchanged state places the same
                # no-op, so the skipped rounds are provably identical.
                if not (self._policy_event_aware and self._last_decision_noop):
                    return False
                bound = self.scheduling_policy.next_policy_event_time(
                    job_state, self.cluster_state, mgr.current_time
                )
                if bound is not None:
                    # One-round safety margin: the policy computes its next
                    # internal event in closed form, and the accumulated
                    # floating-point state it predicts may cross a threshold
                    # up to one ulp away from the closed form.  Resuming a
                    # round early costs one cheap full round and removes the
                    # risk of skipping a round whose decision differed.
                    policy_bound = bound - mgr.round_duration
                    if policy_bound <= mgr.current_time:
                        return False
                # Unlike the gang path (where nothing is waiting for GPUs and
                # a completion therefore cannot change the next decision), a
                # completion here frees GPUs that a queued job must receive in
                # that very round -- so the stride must stop *before* the
                # first completion, not merely break at it.  Steady strides
                # enforce this by excluding the completing round from the
                # probe-sized stride; the classic loop (collectors present)
                # bounds the horizon by the closed-form completion estimate
                # with a one-round safety margin.
                steady_mode = self._stride_accelerable
                if not steady_mode:
                    completion = self._earliest_completion_bound()
                    if completion is not None:
                        completion -= mgr.round_duration
                        if completion <= mgr.current_time:
                            return False
                        if policy_bound is None or completion < policy_bound:
                            policy_bound = completion

        # Nothing may fire before the next arrival or cluster event (or, on
        # the decision-stable path, the policy's own next event).
        next_event = mgr.cluster_manager.next_event_time(mgr.current_time)
        next_arrival = mgr.next_arrival_time()
        bounds = [t for t in (next_event, next_arrival, policy_bound) if t is not None]
        horizon = min(bounds) if bounds else math.inf

        if steady_mode:
            if self._event_core is not None:
                return self._event_core.steady(horizon, round_log)
            return self._fast_forward_steady(horizon, round_log)
        if self._event_core is not None:
            return self._event_core.light(horizon, running, round_log)
        return self._fast_forward_light(horizon, running, round_log)

    def _fast_forward_light(
        self,
        horizon: float,
        running: int,
        round_log: List[RoundRecord],
    ) -> bool:
        """The classic per-round light loop: advance + log, nothing else.

        Handles the skip cases the batched executors do not claim: idle
        stretches observed by collectors, short gang-steady windows (where
        the chain's bookkeeping costs more than it saves) and the
        decision-stable path when strides are not accelerable.  Breaks back
        to the full loop as soon as a completion changes the steady state.
        """
        mgr = self.manager
        job_state = self.job_state
        while (
            mgr.round_number + 1 < self.max_rounds
            and mgr.current_time + mgr.round_duration < horizon
        ):
            mgr.advance_time()
            mgr.update_metrics(self.cluster_state, job_state)
            released = mgr.prune_completed_jobs(self.cluster_state, job_state)
            if self._tracked_all_finished():
                return True
            # Keep the sanctioned "now" side-channel fresh for collectors,
            # mirroring the refresh the full loop does before its policy calls.
            job_state.current_time = mgr.current_time
            for collector in self.metric_collectors:
                collector.collect(job_state, self.cluster_state, mgr.current_time)
            round_log.append(self._round_record())
            if released or job_state.count_with_status(JobStatus.RUNNING) != running:
                # A completion changed the steady state; let the full loop
                # take over again (its next rounds are no-ops for the policies
                # but cheap, and they re-establish the skip conditions).
                break
        return False

    def _fast_forward_chain(self, round_log: List[RoundRecord]) -> bool:
        """Chained gang-steady strides with deferred per-job advancement.

        Entered with the gang witness held (every active job RUNNING on
        exactly its requested gang, all composed policies steady-state safe)
        and the stride accelerable (no collectors, no jitter).  Under the
        witness, a completion cannot change any scheduling decision -- the
        remaining jobs simply keep their gangs -- so whole drain phases
        collapse into one chain:

        * each running job is probed **once** for the absolute round in which
          it will complete (exact per-round replay, not closed form), and the
          results drive a min-heap of upcoming completion rounds;
        * between completion rounds, nothing observable changes: the round
          records (constant counts, accumulated clock) are appended directly
          and job advancement is *deferred*;
        * at each completion round, exactly the completing jobs are
          materialised (advanced through the round, completed, pruned); every
          other job's accounting is flushed once, when the chain exits.

        Because deferred flushing replays each job's per-round operations in
        order, final job state, completion times and the round log are
        bit-identical to the classic per-round loop.
        """
        mgr = self.manager
        job_state = self.job_state
        execution = self.execution_model
        rd = mgr.round_duration
        entry_round = mgr.round_number

        jobs = job_state.running_jobs()
        rates: Dict[int, float] = {}
        advanced_through: Dict[int, int] = {}
        completions: List[Tuple[int, int]] = []  # (absolute round, job_id)
        probe_cap = self.max_rounds - 1 - entry_round
        if probe_cap <= 0:
            return False
        # The chain cannot extend past the first arrival or cluster event, so
        # probing beyond that horizon is wasted work (contended phases enter
        # short chains constantly).  An upper bound is enough: completions
        # probed past the chain's actual end are simply never reached.
        next_event = mgr.cluster_manager.next_event_time(mgr.current_time)
        next_arrival = mgr.next_arrival_time()
        entry_bounds = [t for t in (next_event, next_arrival) if t is not None]
        if entry_bounds:
            to_horizon = int((min(entry_bounds) - mgr.current_time) / rd) + 2
            probe_cap = min(probe_cap, max(1, to_horizon))
        for job in jobs:
            rate = execution.cached_rate(job, self.cluster_state)[0]
            rates[job.job_id] = rate
            advanced_through[job.job_id] = entry_round
            completing = execution.steady_completion_round(job, rd, probe_cap, rate)
            if completing is not None:
                completions.append((entry_round + completing, job.job_id))
        heapq.heapify(completions)
        by_id = {job.job_id: job for job in jobs}

        def flush(job: Job, upto_round: int, final_round_start: float) -> bool:
            owed = upto_round - advanced_through[job.job_id]
            advanced_through[job.job_id] = upto_round
            if owed <= 0:
                return False
            # rate=None lets advance_steady hit the version-stamped rate
            # cache, which also supplies the fragmented flag.
            return execution.advance_steady(
                job, self.cluster_state, final_round_start, rd, owed
            )

        def flush_all() -> None:
            for job in jobs:
                if job.status == JobStatus.RUNNING:
                    flush(job, mgr.round_number, mgr.current_time - rd)
            job_state.current_time = mgr.current_time

        while True:
            next_event = mgr.cluster_manager.next_event_time(mgr.current_time)
            next_arrival = mgr.next_arrival_time()
            bounds = [t for t in (next_event, next_arrival) if t is not None]
            horizon = min(bounds) if bounds else math.inf
            round_cap = self.max_rounds - 1 - mgr.round_number
            if horizon == math.inf:
                segment_cap = round_cap
            else:
                # Mirror the classic loop's accumulated-clock comparisons.
                segment_cap = 0
                clock = mgr.current_time
                while segment_cap < round_cap and clock + rd < horizon:
                    clock += rd
                    segment_cap += 1
            boundary = completions[0][0] if completions else None
            if boundary is None or boundary - mgr.round_number > segment_cap:
                # No completion inside this segment: skip to the horizon.
                for _ in range(segment_cap):
                    mgr.advance_time()
                    round_log.append(self._round_record())
                flush_all()
                return False
            # Skip to the completion round; its record must reflect the
            # post-completion state, so it is appended after materialising.
            steps = boundary - mgr.round_number
            for _ in range(steps - 1):
                mgr.advance_time()
                round_log.append(self._round_record())
            mgr.advance_time()
            final_round_start = mgr.current_time - rd
            while completions and completions[0][0] == boundary:
                _, job_id = heapq.heappop(completions)
                job = by_id[job_id]
                if not flush(job, boundary, final_round_start):
                    raise SimulationError(
                        f"job {job_id} did not complete in its probed round "
                        f"{boundary}; steady-chain accounting diverged"
                    )
            mgr.prune_completed_jobs(self.cluster_state, job_state)
            if self._tracked_all_finished():
                # The simulation ends at this round exactly as the full loop
                # would; materialise the remaining jobs' deferred rounds so
                # their work/service accounting matches a per-round run.
                flush_all()
                return True
            job_state.current_time = mgr.current_time
            round_log.append(self._round_record())
            if not job_state.count_active():
                flush_all()
                return False
            # The gang witness is preserved by construction (the remaining
            # jobs keep running on their exact gangs), so chain directly into
            # the next segment.

    def _fast_forward_steady(
        self,
        horizon: float,
        round_log: List[RoundRecord],
    ) -> bool:
        """Steady-mode decision-stable stride: batched advancement + records.

        Only entered on the decision-stable (elastic/discretised) path when
        the stride is rate-stable (no jitter model) and unobserved (no metric
        collectors); gang-steady strides use :meth:`_fast_forward_chain`
        instead.  The stride length is the smaller of the horizon -- derived
        with exactly the comparisons the classic loop would make -- and one
        round *short of* the earliest completing round, found by replaying
        the per-round accounting without mutation
        (:meth:`ExecutionModel.steady_completion_round`): a completion frees
        GPUs that the next full round must be able to hand to a queued job.
        """
        mgr = self.manager
        job_state = self.job_state
        round_cap = self.max_rounds - 1 - mgr.round_number
        if round_cap <= 0:
            return False
        if horizon == math.inf:
            rounds = round_cap
        else:
            # Mirror the classic loop's accumulated-clock comparisons exactly
            # so both stop at the same round.
            rounds = 0
            clock = mgr.current_time
            while rounds < round_cap and clock + mgr.round_duration < horizon:
                clock += mgr.round_duration
                rounds += 1
        if rounds == 0:
            return False
        execution = self.execution_model
        advancing = [
            (job, execution.cached_rate(job, self.cluster_state)[0])
            for job in job_state.running_jobs()
        ]
        for job, rate in advancing:
            completing = execution.steady_completion_round(
                job, mgr.round_duration, rounds, rate
            )
            if completing is not None:
                # Stop one round short: the completing round must run as a
                # full round so the freed GPUs can go to a queued job.
                limit = completing - 1
                if limit < rounds:
                    rounds = limit
        if rounds <= 0:
            return False

        # Rounds before the last cannot change any observable state, so their
        # records (constant counts, accumulated clock) are appended up front;
        # the final round's record is appended after completions are applied
        # and pruned, mirroring the classic per-round order of operations.
        for _ in range(rounds - 1):
            mgr.advance_time()
            round_log.append(self._round_record())
        mgr.advance_time()
        final_round_start = mgr.current_time - mgr.round_duration
        for job, _rate in advancing:
            execution.advance_steady(
                job, self.cluster_state, final_round_start, mgr.round_duration, rounds
            )
        mgr.prune_completed_jobs(self.cluster_state, job_state)
        if self._tracked_all_finished():
            return True
        job_state.current_time = mgr.current_time
        round_log.append(self._round_record())
        return False

    def _advance_loop(self, stop_time: Optional[float]) -> bool:
        """Drive the scheduling loop; return ``True`` once the run finished.

        With ``stop_time=None`` this is the classic start-to-finish loop.
        With a bound, the loop *pauses* -- returns ``False`` -- at the top of
        the first round whose start time is ``>= stop_time``, before any of
        that round's steps execute.  Because rounds are atomic and all loop
        state (clock, round log, eviction count) lives on the instance, a
        paused loop can be resumed (possibly with new jobs submitted to the
        manager's wait queue in between) and replays exactly the rounds a
        single uninterrupted run would: the federation layer relies on this to
        interleave shard execution with routing decisions.  ``False`` with the
        round budget exhausted means the run did not finish (callers decide
        whether that is an error).
        """
        mgr = self.manager
        round_log = self._round_log
        wall_start = time.perf_counter()
        try:
            while mgr.round_number < self.max_rounds:
                if stop_time is not None and mgr.current_time >= stop_time:
                    return False  # paused before this round's steps ran

                # 1. Cluster membership changes (failures force a reschedule).
                affected = mgr.update_cluster(self.cluster_state)
                if self._recorder is not None:
                    # Timeline firings become first-class `cluster` events.
                    # Fast-forward always stops for cluster events, so this
                    # per-round drain sees every firing; read-only, so
                    # recording stays schedule-neutral.
                    for applied_time, event, evicted in (
                        mgr.cluster_manager.drain_applied()
                    ):
                        payload = {
                            "event": event.kind,
                            "scheduled_time": event.time,
                            "evicted_jobs": list(evicted),
                        }
                        payload.update(event.describe())
                        self._recorder.emit(EVENT_CLUSTER, applied_time, payload)
                for job_id in affected:
                    if job_id in self.job_state:
                        job = self.job_state.get(job_id)
                        if job.status == JobStatus.RUNNING:
                            mgr.preemptor.preempt(job, self.cluster_state, mgr.current_time)
                            self._eviction_count += 1
                            if self._recorder is not None:
                                self._recorder.emit(
                                    EVENT_EVICTION,
                                    mgr.current_time,
                                    {"job_id": job_id},
                                )

                # 2./3. Progress from the previous round, then free completed jobs.
                mgr.update_metrics(self.cluster_state, self.job_state)
                mgr.prune_completed_jobs(self.cluster_state, self.job_state)

                if self._tracked_all_finished():
                    return True

                # 4. Admission of newly arrived jobs.
                self.job_state.current_time = mgr.current_time
                new_jobs = mgr.pop_wait_queue()
                accepted = self.admission_policy.accept(new_jobs, self.cluster_state, self.job_state)
                self.job_state.add_new_jobs(accepted, mgr.current_time)

                # 5. Scheduling and placement.
                schedule = self.scheduling_policy.schedule(self.job_state, self.cluster_state)
                decision = self.placement_policy.place(schedule, self.cluster_state, self.job_state)

                # 6. Apply the decision (recording, for the decision-stable
                # fast-forward path, whether it was a pure lease renewal; this
                # must be judged against the pre-application state).
                if self.fast_forward and self._policy_event_aware:
                    self._last_decision_noop = self._decision_is_noop(decision)
                launched = mgr.exec_jobs(decision, self.cluster_state, self.job_state)
                # Trace non-trivial decisions (pure lease renewals are noise).
                # exec_jobs reports what it actually applied, so tracing never
                # re-scans the launch map; the event lands after the status
                # transitions it caused, at the same simulated time.
                if self._recorder is not None and (launched or decision.to_suspend):
                    self._recorder.emit(
                        EVENT_DECISION,
                        mgr.current_time,
                        {
                            "launch": [[jid, sorted(gpus)] for jid, gpus in launched or ()],
                            "suspend": sorted(decision.to_suspend),
                        },
                    )

                # 7. Metric collection.
                for collector in self.metric_collectors:
                    collector.collect(self.job_state, self.cluster_state, mgr.current_time)

                round_log.append(self._round_record())

                if self._stalled():
                    return True

                # 8. Event-skipping: jump over rounds in which nothing can change.
                if self.fast_forward and self._fast_forward(round_log):
                    return True

                mgr.advance_time()
            return False
        finally:
            self._wall_time += time.perf_counter() - wall_start

    def flush_telemetry(self) -> None:
        """Push buffered trace records to the recorder's sink, if any."""
        if self._recorder is not None:
            flush = getattr(self._recorder.sink, "flush", None)
            if flush is not None:
                flush()

    def build_result(self) -> SimulationResult:
        """Snapshot the loop state into a :class:`SimulationResult`."""
        mgr = self.manager
        round_log = self._round_log
        if self._round_log_limit is not None:
            round_log = list(round_log)
        return SimulationResult(
            jobs=self.job_state.all_jobs(),
            tracked_job_ids=self.tracked_job_ids,
            round_duration=mgr.round_duration,
            rounds=mgr.round_number,
            end_time=mgr.current_time,
            round_log=round_log,
            wall_time_s=self._wall_time,
            eviction_count=self._eviction_count,
        )

    def run(self) -> SimulationResult:
        """Run the scheduling loop until every tracked job finished."""
        if not self._advance_loop(None):
            raise SimulationError(
                f"simulation did not finish within {self.max_rounds} rounds; "
                "the workload is likely too large for the cluster or a policy is starving jobs"
            )
        self.flush_telemetry()
        return self.build_result()


def run_simulation(
    cluster_state: ClusterState,
    jobs: Iterable[Job],
    scheduling_policy: SchedulingPolicy,
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(cluster_state, jobs, scheduling_policy, **kwargs).run()
