"""The round-based simulation driver.

:class:`Simulator` composes the Blox abstractions exactly as the scheduling
loop in Figure 2 of the paper: every round it updates cluster membership,
advances running jobs, prunes completed jobs, pops newly arrived jobs from the
wait queue, runs the admission, scheduling and placement policies and applies
the resulting decision.  The same composition runs on the deployment path (see
:mod:`repro.runtime`); only the ``BloxManager`` backend and the launch and
preemption mechanisms change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.abstractions import (
    AdmissionPolicy,
    ClusterManager,
    MetricCollector,
    PlacementPolicy,
    SchedulingPolicy,
    TerminationPolicy,
)
from repro.core.blox_manager import BloxManager
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.metrics.summary import SummaryStats, average, cdf_points, jct_summary
from repro.simulator.execution import ExecutionModel
from repro.simulator.overheads import OverheadModel


@dataclass
class RoundRecord:
    """One row of the per-round log kept by the simulator."""

    round_number: int
    time: float
    running_jobs: int
    queued_jobs: int
    utilization: float
    scheduler_name: str
    admission_name: str


@dataclass
class SimulationResult:
    """Everything an experiment needs after a simulation finished."""

    jobs: List[Job]
    tracked_job_ids: List[int]
    round_duration: float
    rounds: int
    end_time: float
    round_log: List[RoundRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Job views
    # ------------------------------------------------------------------

    def tracked_jobs(self) -> List[Job]:
        wanted = set(self.tracked_job_ids)
        return [j for j in self.jobs if j.job_id in wanted]

    def finished_jobs(self, tracked_only: bool = True) -> List[Job]:
        jobs = self.tracked_jobs() if tracked_only else self.jobs
        return [j for j in jobs if j.completion_time is not None]

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------

    def jcts(self, tracked_only: bool = True) -> List[float]:
        return [j.job_completion_time() for j in self.finished_jobs(tracked_only)]

    def responsiveness_values(self, tracked_only: bool = True) -> List[float]:
        values = [j.responsiveness() for j in self.finished_jobs(tracked_only)]
        return [v for v in values if v is not None]

    def avg_jct(self, tracked_only: bool = True) -> float:
        return average(self.jcts(tracked_only))

    def avg_responsiveness(self, tracked_only: bool = True) -> float:
        return average(self.responsiveness_values(tracked_only))

    def makespan(self, tracked_only: bool = True) -> float:
        finished = self.finished_jobs(tracked_only)
        if not finished:
            return 0.0
        return max(j.completion_time for j in finished) - min(j.arrival_time for j in finished)

    def jct_cdf(self, tracked_only: bool = True) -> Tuple[List[float], List[float]]:
        return cdf_points(self.jcts(tracked_only))

    def summary(self) -> SummaryStats:
        return jct_summary(self.jobs, self.tracked_job_ids)

    def completion_fraction(self, tracked_only: bool = True) -> float:
        jobs = self.tracked_jobs() if tracked_only else self.jobs
        if not jobs:
            return 0.0
        return len([j for j in jobs if j.completion_time is not None]) / len(jobs)


class Simulator:
    """Composes policies into the Blox scheduling loop and runs it to completion."""

    def __init__(
        self,
        cluster_state: ClusterState,
        jobs: Iterable[Job],
        scheduling_policy: SchedulingPolicy,
        placement_policy: Optional[PlacementPolicy] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
        round_duration: float = 300.0,
        overhead_model: Optional[OverheadModel] = None,
        execution_model: Optional[ExecutionModel] = None,
        termination_policy: Optional[TerminationPolicy] = None,
        metric_collectors: Sequence[MetricCollector] = (),
        cluster_manager: Optional[ClusterManager] = None,
        tracked_job_ids: Optional[Sequence[int]] = None,
        max_rounds: int = 200_000,
        fast_forward: bool = True,
        job_state: Optional[JobState] = None,
    ) -> None:
        from repro.policies.admission.accept_all import AcceptAll
        from repro.policies.placement.consolidated import ConsolidatedPlacement

        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")

        self.cluster_state = cluster_state
        self.job_state = job_state if job_state is not None else JobState()
        self.jobs = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        if not self.jobs:
            raise ConfigurationError("cannot simulate an empty workload")
        self.scheduling_policy = scheduling_policy
        self.placement_policy = placement_policy or ConsolidatedPlacement()
        self.admission_policy = admission_policy or AcceptAll()
        if execution_model is not None:
            self.execution_model = execution_model
        else:
            self.execution_model = ExecutionModel(
                overhead_model=overhead_model, termination_policy=termination_policy
            )
        self.metric_collectors = list(metric_collectors)
        self.max_rounds = max_rounds
        self.manager = BloxManager(
            trace_jobs=self.jobs,
            round_duration=round_duration,
            execution_model=self.execution_model,
            cluster_manager=cluster_manager,
        )
        if tracked_job_ids is None:
            self.tracked_job_ids = [j.job_id for j in self.jobs]
        else:
            self.tracked_job_ids = list(tracked_job_ids)

        # Event-skipping is only enabled when every composed policy declares it
        # safe to skip its per-round calls while nothing can change.
        self.fast_forward = (
            bool(fast_forward)
            and getattr(self.scheduling_policy, "supports_fast_forward", True)
            and getattr(self.admission_policy, "supports_fast_forward", True)
            and getattr(self.placement_policy, "supports_fast_forward", True)
        )
        # Skipping rounds *with running jobs* additionally requires that
        # rescheduling an unchanged set of running gang jobs is a no-op.
        self._steady_state_safe = (
            getattr(self.scheduling_policy, "steady_state_safe", False)
            and getattr(self.admission_policy, "steady_state_safe", False)
            and getattr(self.placement_policy, "steady_state_safe", False)
        )
        # A ClusterManager subclass that overrides update() but not
        # next_event_time() has per-round effects the simulator cannot predict;
        # treating its inherited "no events ever" as truth would silently skip
        # its events, so such managers disable event skipping entirely.
        manager_cls = type(self.manager.cluster_manager)
        if (
            manager_cls.update is not ClusterManager.update
            and manager_cls.next_event_time is ClusterManager.next_event_time
        ):
            self.fast_forward = False

    # ------------------------------------------------------------------

    def _tracked_all_finished(self) -> bool:
        # Cheap necessary condition first: tracked finished jobs are a subset
        # of all finished jobs, so the per-id scan can be skipped most rounds.
        if self.job_state.count_finished() < len(self.tracked_job_ids):
            return False
        for job_id in self.tracked_job_ids:
            if job_id in self.job_state:
                if not self.job_state.get(job_id).is_finished:
                    return False
            else:
                return False
        return True

    def _stalled(self) -> bool:
        """True when nothing can ever make progress again (guards against livelock)."""
        if not self.manager.all_arrived():
            return False
        if self.job_state.count_active():
            return False
        if self.admission_policy.pending_jobs():
            return False
        if self.job_state.count_with_status(JobStatus.WAITING_ADMISSION):
            return False
        return True

    def _round_record(self) -> RoundRecord:
        mgr = self.manager
        running = self.job_state.count_with_status(JobStatus.RUNNING)
        return RoundRecord(
            round_number=mgr.round_number,
            time=mgr.current_time,
            running_jobs=running,
            queued_jobs=self.job_state.count_active() - running,
            utilization=self.cluster_state.utilization(),
            scheduler_name=getattr(self.scheduling_policy, "current_name", None)
            or self.scheduling_policy.name,
            admission_name=getattr(self.admission_policy, "current_name", None)
            or self.admission_policy.name,
        )

    # ------------------------------------------------------------------
    # Event-skipping fast-forward
    # ------------------------------------------------------------------

    def _fast_forward(self, round_log: List[RoundRecord]) -> bool:
        """Skip rounds during which no scheduling decision can change.

        Called at the end of a full round, *before* ``advance_time``.  While no
        arrival, cluster event, admission release or scheduling change can
        occur, the only per-round work is advancing running jobs and logging --
        so we run exactly those steps ("light rounds") and skip the cluster
        update, admission, scheduling, placement and launch steps, which are
        guaranteed no-ops.  Light rounds execute the same ``advance`` calls in
        the same order as full rounds, so work/overhead accounting, completion
        times, metric collection and the round log stay bit-identical to a run
        with fast-forward disabled.

        Returns ``True`` when every tracked job finished during the skip (the
        caller must then stop exactly as the full loop would).
        """
        mgr = self.manager
        job_state = self.job_state

        # The admission pipeline must be quiescent: a policy whose accept([])
        # has per-round side effects (steady_state_safe=False) can never be
        # skipped, and otherwise nothing may be queued inside the policy or
        # waiting for admission in the registry.
        if not getattr(self.admission_policy, "steady_state_safe", True):
            return False
        if job_state.count_with_status(JobStatus.WAITING_ADMISSION):
            return False
        if self.admission_policy.pending_jobs():
            return False

        running = job_state.count_with_status(JobStatus.RUNNING)
        active = job_state.count_active()
        if active:
            # Rounds with active jobs can only be skipped when rescheduling is
            # provably a no-op: audited policies, every active job already
            # running, and each holding exactly its requested gang.
            if not self._steady_state_safe:
                return False
            if running != active:
                return False
            for job in job_state.running_jobs():
                if len(job.allocated_gpus) != job.num_gpus:
                    return False

        # Nothing may fire before the next arrival or cluster event.
        next_event = mgr.cluster_manager.next_event_time(mgr.current_time)
        next_arrival = mgr.next_arrival_time()
        bounds = [t for t in (next_event, next_arrival) if t is not None]
        horizon = min(bounds) if bounds else math.inf

        while (
            mgr.round_number + 1 < self.max_rounds
            and mgr.current_time + mgr.round_duration < horizon
        ):
            mgr.advance_time()
            mgr.update_metrics(self.cluster_state, job_state)
            released = mgr.prune_completed_jobs(self.cluster_state, job_state)
            if self._tracked_all_finished():
                return True
            # Keep the sanctioned "now" side-channel fresh for collectors,
            # mirroring the refresh the full loop does before its policy calls.
            job_state.current_time = mgr.current_time
            for collector in self.metric_collectors:
                collector.collect(job_state, self.cluster_state, mgr.current_time)
            round_log.append(self._round_record())
            if released or job_state.count_with_status(JobStatus.RUNNING) != running:
                # A completion changed the steady state; let the full loop
                # take over again (its next rounds are no-ops for the policies
                # but cheap, and they re-establish the skip conditions).
                break
        return False

    def run(self) -> SimulationResult:
        """Run the scheduling loop until every tracked job finished."""
        mgr = self.manager
        round_log: List[RoundRecord] = []
        finished = False

        while mgr.round_number < self.max_rounds:
            # 1. Cluster membership changes (failures force a reschedule of jobs).
            affected = mgr.update_cluster(self.cluster_state)
            for job_id in affected:
                if job_id in self.job_state:
                    job = self.job_state.get(job_id)
                    if job.status == JobStatus.RUNNING:
                        mgr.preemptor.preempt(job, self.cluster_state, mgr.current_time)

            # 2./3. Progress from the previous round, then free completed jobs.
            mgr.update_metrics(self.cluster_state, self.job_state)
            mgr.prune_completed_jobs(self.cluster_state, self.job_state)

            if self._tracked_all_finished():
                finished = True
                break

            # 4. Admission of newly arrived jobs.
            self.job_state.current_time = mgr.current_time
            new_jobs = mgr.pop_wait_queue()
            accepted = self.admission_policy.accept(new_jobs, self.cluster_state, self.job_state)
            self.job_state.add_new_jobs(accepted, mgr.current_time)

            # 5. Scheduling and placement.
            schedule = self.scheduling_policy.schedule(self.job_state, self.cluster_state)
            decision = self.placement_policy.place(schedule, self.cluster_state, self.job_state)

            # 6. Apply the decision.
            mgr.exec_jobs(decision, self.cluster_state, self.job_state)

            # 7. Metric collection.
            for collector in self.metric_collectors:
                collector.collect(self.job_state, self.cluster_state, mgr.current_time)

            round_log.append(self._round_record())

            if self._stalled():
                finished = True
                break

            # 8. Event-skipping: jump over rounds in which nothing can change.
            if self.fast_forward and self._fast_forward(round_log):
                finished = True
                break

            mgr.advance_time()

        if not finished:
            raise SimulationError(
                f"simulation did not finish within {self.max_rounds} rounds; "
                "the workload is likely too large for the cluster or a policy is starving jobs"
            )

        return SimulationResult(
            jobs=self.job_state.all_jobs(),
            tracked_job_ids=self.tracked_job_ids,
            round_duration=mgr.round_duration,
            rounds=mgr.round_number,
            end_time=mgr.current_time,
            round_log=round_log,
        )


def run_simulation(
    cluster_state: ClusterState,
    jobs: Iterable[Job],
    scheduling_policy: SchedulingPolicy,
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(cluster_state, jobs, scheduling_policy, **kwargs).run()
