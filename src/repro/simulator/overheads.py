"""Launch, preemption and checkpoint overheads.

Round-based schedulers preempt and restart jobs at iteration boundaries; each
launch pays a process start + checkpoint restore cost and each preemption pays
a checkpoint save cost.  The fidelity experiment (Fig. 18) compares the plain
simulator against a "cluster run"; we stand in for the real cluster with
:class:`ClusterOverheadModel`, which adds the profiled overheads plus run-to-run
jitter, matching how the paper profiles launch/preemption overheads per model.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.exceptions import ConfigurationError
from repro.core.job import Job

#: Default per-model checkpoint/restore costs (seconds).  Larger models take
#: longer to checkpoint and to rebuild their input pipelines.
DEFAULT_LAUNCH_OVERHEAD: Dict[str, float] = {
    "resnet18": 15.0,
    "cyclegan": 30.0,
    "resnet50": 35.0,
    "lstm": 20.0,
    "recoder": 25.0,
    "transformer": 30.0,
    "a3c": 10.0,
    "generic": 20.0,
}

DEFAULT_PREEMPTION_OVERHEAD: Dict[str, float] = {
    "resnet18": 10.0,
    "cyclegan": 25.0,
    "resnet50": 30.0,
    "lstm": 15.0,
    "recoder": 20.0,
    "transformer": 25.0,
    "a3c": 8.0,
    "generic": 15.0,
}


class OverheadModel:
    """Deterministic launch/preemption overheads used by the plain simulator.

    ``scale`` lets experiments turn overheads off (``scale=0``) or exaggerate
    them; the per-model tables can be overridden for sensitivity studies.
    """

    def __init__(
        self,
        scale: float = 1.0,
        launch_table: Optional[Dict[str, float]] = None,
        preemption_table: Optional[Dict[str, float]] = None,
    ) -> None:
        if scale < 0:
            raise ConfigurationError(f"overhead scale must be >= 0, got {scale}")
        self.scale = scale
        self.launch_table = dict(DEFAULT_LAUNCH_OVERHEAD)
        if launch_table:
            self.launch_table.update(launch_table)
        self.preemption_table = dict(DEFAULT_PREEMPTION_OVERHEAD)
        if preemption_table:
            self.preemption_table.update(preemption_table)

    def _lookup(self, table: Dict[str, float], job: Job) -> float:
        return table.get(job.model_name, table.get("generic", 20.0)) * self.scale

    def launch_overhead(self, job: Job) -> float:
        """Seconds lost when (re)starting a job: process start + checkpoint restore."""
        return self._lookup(self.launch_table, job)

    def preemption_overhead(self, job: Job) -> float:
        """Seconds lost when checkpointing a job at preemption time."""
        return self._lookup(self.preemption_table, job)

    def iteration_jitter(self, job: Job) -> float:
        """Multiplicative per-round jitter on execution rate (1.0 = none)."""
        return 1.0


class ClusterOverheadModel(OverheadModel):
    """Overheads plus run-to-run variability, standing in for a real cluster run.

    Real clusters deviate from the simulator because of hardware variability,
    data-loading stalls and interference.  We model this as (i) a small extra
    fixed cost per launch and (ii) a per-round multiplicative jitter on the
    execution rate drawn from a seeded Gaussian, so "cluster" runs are
    reproducible yet differ from plain simulation by a few per cent -- the
    regime the fidelity experiment (Fig. 18) measures.
    """

    def __init__(
        self,
        scale: float = 1.0,
        jitter_std: float = 0.04,
        extra_launch_seconds: float = 12.0,
        seed: int = 0,
    ) -> None:
        super().__init__(scale=scale)
        if jitter_std < 0:
            raise ConfigurationError("jitter_std must be >= 0")
        self.jitter_std = jitter_std
        self.extra_launch_seconds = extra_launch_seconds
        self._rng = random.Random(seed)

    def launch_overhead(self, job: Job) -> float:
        return super().launch_overhead(job) + self.extra_launch_seconds

    def iteration_jitter(self, job: Job) -> float:
        if self.jitter_std == 0:
            return 1.0
        # Clamp so pathological draws can never stall or wildly speed up a job.
        jitter = self._rng.gauss(1.0, self.jitter_std)
        return min(1.2, max(0.8, jitter))
