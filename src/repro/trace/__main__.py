import os
import sys

from repro.trace import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly.  stdout is
        # re-pointed at devnull first so interpreter shutdown doesn't raise
        # again while flushing the dead handle.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(0)
