"""``python -m repro.trace``: record, replay, diff and inspect trace files.

The operator-facing face of :mod:`repro.telemetry`:

* ``record`` -- run a described workload (core / runtime / federation) with
  recording on, writing a self-describing trace (header carries the
  :class:`~repro.telemetry.runspec.RunSpec` plus run metadata);
* ``replay`` -- re-drive the run from the trace's own header and diff the
  fresh event stream against the recorded one (exit 0 iff bit-identical) --
  the CI parity checks, packaged as a debugging tool;
* ``diff`` -- compare two traces event-by-event (per source, in order);
* ``show`` -- print the deterministic ``(time, source, seq)`` merge of a
  trace's per-source streams.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.telemetry.diff import diff_streams
from repro.telemetry.events import NONDETERMINISTIC_KINDS, TraceFormatError, merge_events
from repro.telemetry.runspec import MODES, RunSpec, run_recorded
from repro.telemetry.sinks import RingBufferSink, open_sink, read_trace


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = RunSpec()
    parser.add_argument("--mode", choices=MODES, default=defaults.mode)
    parser.add_argument("--policy", default=defaults.policy, help="scheduling policy name")
    parser.add_argument("--placement", default=defaults.placement, help="placement policy name")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--jobs", type=int, default=defaults.num_jobs, help="workload size")
    parser.add_argument(
        "--jobs-per-hour", type=float, default=defaults.jobs_per_hour, help="arrival rate"
    )
    parser.add_argument("--nodes", type=int, default=defaults.num_nodes, help="cluster nodes")
    parser.add_argument(
        "--shards", type=int, default=defaults.shards, help="federation shard count"
    )
    parser.add_argument(
        "--router", default=defaults.router, help="federation router name"
    )
    parser.add_argument(
        "--round-duration", type=float, default=defaults.round_duration
    )
    parser.add_argument(
        "--scenario",
        default=defaults.scenario,
        help="core mode: run under this named scenario (records its churn "
        "timeline as `cluster` events)",
    )
    parser.add_argument(
        "--scenario-smoke",
        action="store_true",
        help="use the scenario's shrunk smoke variant",
    )
    parser.add_argument(
        "--engine",
        choices=("rounds", "events"),
        default=defaults.engine,
        help=(
            "simulation engine: the classic round loop or the event-heap "
            "core (recorded in the trace header, so replay re-drives the "
            "run exactly as recorded)"
        ),
    )


def _spec_from_args(args: argparse.Namespace) -> RunSpec:
    return RunSpec(
        mode=args.mode,
        policy=args.policy,
        placement=args.placement,
        seed=args.seed,
        num_jobs=args.jobs,
        jobs_per_hour=args.jobs_per_hour,
        num_nodes=args.nodes,
        round_duration=args.round_duration,
        shards=args.shards,
        router=args.router,
        scenario=args.scenario,
        scenario_smoke=args.scenario_smoke,
        engine=args.engine,
    )


def _cmd_record(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    sink = open_sink(args.out, fmt=args.format)
    try:
        run_recorded(spec, sink, started_at=time.time())
    finally:
        sink.close()
    _, events = read_trace(args.out)
    print(f"recorded {len(events)} events ({spec.mode}/{spec.policy}) -> {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    header, recorded = read_trace(args.trace)
    if header.spec is None:
        print(
            f"trace {args.trace} has no run spec in its header; "
            "only traces written by 'repro.trace record' (or run_recorded) replay",
            file=sys.stderr,
        )
        return 2
    spec = RunSpec.from_dict(header.spec)
    sink = RingBufferSink()
    run_recorded(spec, sink, write_header=False)
    replayed = sink.events()
    ignore = frozenset() if args.all_kinds else NONDETERMINISTIC_KINDS
    divergences = diff_streams(recorded, replayed, ignore_kinds=ignore)
    if args.out:
        out_sink = open_sink(args.out)
        try:
            out_sink.write_header(spec.header())
            for event in replayed:
                out_sink.emit(event)
        finally:
            out_sink.close()
    if divergences:
        print(
            f"replay DIVERGED from {args.trace} "
            f"({len(recorded)} recorded vs {len(replayed)} replayed events):"
        )
        for line in divergences:
            print(f"  {line}")
        return 1
    print(
        f"replay of {args.trace} is bit-identical "
        f"({len(replayed)} events, mode={spec.mode}, policy={spec.policy})"
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    _, events_a = read_trace(args.trace_a)
    _, events_b = read_trace(args.trace_b)
    ignore = frozenset() if args.all_kinds else NONDETERMINISTIC_KINDS
    divergences = diff_streams(events_a, events_b, ignore_kinds=ignore)
    if divergences:
        print(f"{args.trace_a} and {args.trace_b} diverge:")
        for line in divergences:
            print(f"  {line}")
        return 1
    print(
        f"{args.trace_a} and {args.trace_b} are identical "
        f"({len(events_a)} vs {len(events_b)} events; "
        + ("all kinds compared" if args.all_kinds else "non-deterministic kinds skipped")
        + ")"
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    header, events = read_trace(args.trace)
    print(json.dumps(header.as_record(), indent=2, sort_keys=True))
    streams: dict = {}
    for event in events:
        streams.setdefault(event.source, []).append(event)
    merged = merge_events(list(streams.values()))
    if args.kind:
        merged = [e for e in merged if e.kind == args.kind]
    shown = merged if args.limit is None else merged[: args.limit]
    for event in shown:
        print(
            f"t={event.time:>12.1f}  {event.source:<12} {event.kind:<12} "
            f"seq={event.seq:<6} {json.dumps(dict(event.payload), sort_keys=True)}"
        )
    if args.limit is not None and len(merged) > args.limit:
        print(f"... ({len(merged) - args.limit} more events)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description=(
            "Record, replay, diff and inspect telemetry traces. A recorded "
            "trace is self-replaying: its header carries the run spec and "
            "seed, and 'replay' re-drives the run and verifies the event "
            "stream is bit-identical."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run a workload with recording on")
    _add_spec_arguments(record)
    record.add_argument("--out", default="trace.jsonl", help="output trace path")
    record.add_argument(
        "--format",
        choices=("jsonl", "sqlite"),
        default=None,
        help="sink format (default: by extension; .db/.sqlite -> sqlite)",
    )

    replay = sub.add_parser(
        "replay", help="re-drive a recorded run and diff the event streams"
    )
    replay.add_argument("trace", help="trace recorded by 'repro.trace record'")
    replay.add_argument("--out", default=None, help="also write the replayed trace here")
    replay.add_argument(
        "--all-kinds",
        action="store_true",
        help="compare wall-clock timing/supervisor events too (normally skipped)",
    )

    diff = sub.add_parser("diff", help="compare two traces event-by-event")
    diff.add_argument("trace_a")
    diff.add_argument("trace_b")
    diff.add_argument(
        "--all-kinds",
        action="store_true",
        help="compare wall-clock timing/supervisor events too (normally skipped)",
    )

    show = sub.add_parser("show", help="print a trace's merged event stream")
    show.add_argument("trace")
    show.add_argument("--limit", type=int, default=40, help="max events to print")
    show.add_argument("--kind", default=None, help="only events of this kind")

    args = parser.parse_args(argv)
    handlers = {
        "record": _cmd_record,
        "replay": _cmd_replay,
        "diff": _cmd_diff,
        "show": _cmd_show,
    }
    try:
        return handlers[args.command](args)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
