"""The runtime benchmark: deployment path vs plain simulation, plus Fig. 19.

``python -m repro.bench --runtime`` drives every scenario in the registry
through three runs of the same compiled workload and cluster dynamics:

* **deployment / fast-forward** -- the :class:`CentralScheduler` (RPC
  launch/preempt, optimistic leases, membership sync, worker-metric pulls)
  with event skipping on;
* **deployment / stepping** -- the same deployment path executing every
  round;
* **simulation** -- the plain :class:`Simulator` via
  :func:`repro.experiments.harness.run_policy`.

All three use the same deterministic overhead model, so they must make
bit-identical scheduling decisions (``schedule_parity``: per-job completion
times, round logs and round counts); the deployment runs additionally must
finish without ``LeaseError`` under every scenario's churn.  The report
carries rounds/s for each run (the deployment tax is real RPC bookkeeping)
and the per-preemption lease-round latencies, plus the Fig. 19 lease-scaling
sweep.  Results are written to ``BENCH_runtime.json``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.fig19_lease_scaling import (
    DEFAULT_REVOCATIONS,
    DEFAULT_SIZES,
    run_fig19,
)
from repro.experiments.harness import PolicySpec, run_policy
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.runtime.central_scheduler import CentralScheduler
from repro.scenarios.registry import SMOKE_SCENARIOS, get_scenario, scenario_names
from repro.scenarios.runner import SCENARIO_SEED
from repro.simulator.engine import SimulationResult
from repro.telemetry.events import run_metadata
from repro.simulator.overheads import OverheadModel

#: Cluster sizes (nodes of 4 GPUs) of the CI lease sweep; the full bench
#: uses the Fig. 19 runner's own defaults.
LEASE_SIZES_SMOKE = (4, 16)

#: The deployment bench runs the preemption-heavy policy so lease revocation
#: traffic is actually exercised in every scenario.
POLICY_NAME = "tiresias"


def _policy_spec() -> PolicySpec:
    return PolicySpec(label=POLICY_NAME, scheduling=TiresiasScheduling)


def _run_deployment(compiled, fast_forward: bool) -> Dict[str, object]:
    scheduler = CentralScheduler(
        cluster_state=compiled.build_cluster(),
        jobs=compiled.trace.fresh_jobs(),
        scheduling_policy=TiresiasScheduling(),
        round_duration=compiled.spec.round_duration,
        lease_protocol="optimistic",
        overhead_model=OverheadModel(),
        cluster_manager=compiled.make_cluster_manager(),
        tracked_job_ids=compiled.trace.tracked_ids(),
        fast_forward=fast_forward,
    )
    start = time.perf_counter()
    result = scheduler.run()
    wall = time.perf_counter() - start
    return {
        "result": result,
        "wall_time_s": wall,
        "lease_latencies_ms": scheduler.lease_latencies_ms(),
        "leases_left": len(scheduler.lease_manager.assignments),
        "worker_leases_left": sum(
            1
            for worker in scheduler.workers.values()
            for held in worker.leases.values()
            if held
        ),
        "workers": len(scheduler.workers),
        "metric_jobs": len(scheduler.worker_metrics.latest)
        if scheduler.worker_metrics
        else 0,
    }


def _run_simulation(compiled) -> Dict[str, object]:
    start = time.perf_counter()
    result = run_policy(
        compiled.trace,
        _policy_spec(),
        num_nodes=compiled.spec.cluster.num_nodes,
        cluster=compiled.build_cluster(),
        cluster_manager=compiled.make_cluster_manager(),
        round_duration=compiled.spec.round_duration,
        overhead_model=OverheadModel(),
    )
    return {"result": result, "wall_time_s": time.perf_counter() - start}


def _parity(a: SimulationResult, b: SimulationResult) -> bool:
    a_completions = {j.job_id: j.completion_time for j in a.jobs}
    b_completions = {j.job_id: j.completion_time for j in b.jobs}
    return (
        a_completions == b_completions
        and a.rounds == b.rounds
        and a.round_log == b.round_log
    )


def _rounds_per_sec(result: SimulationResult, wall: float) -> float:
    return result.rounds / wall if wall > 0 else float("inf")


def _lease_stats(latencies: Sequence[float]) -> Dict[str, float]:
    if not latencies:
        return {"count": 0, "mean_ms": 0.0, "max_ms": 0.0}
    return {
        "count": len(latencies),
        "mean_ms": round(sum(latencies) / len(latencies), 4),
        "max_ms": round(max(latencies), 4),
    }


def run_runtime_bench(
    smoke: bool = False,
    out_path: Optional[str] = "BENCH_runtime.json",
    seed: int = SCENARIO_SEED,
    scenarios: Optional[Sequence[str]] = None,
    started_at: Optional[float] = None,
) -> Dict[str, object]:
    """Run the runtime benchmark; returns the ``BENCH_runtime.json`` payload.

    ``smoke`` shrinks every scenario to its CI variant and restricts the run
    to the churn-heavy smoke subset plus a small lease sweep.  ``started_at``
    is the caller's wall-clock stamp for the report metadata.
    """
    if scenarios is None:
        scenarios = SMOKE_SCENARIOS if smoke else scenario_names()

    cells: Dict[str, object] = {}
    all_parity = True
    for name in scenarios:
        compiled = get_scenario(name, smoke=smoke).compile(seed)
        deployment = _run_deployment(compiled, fast_forward=True)
        stepping = _run_deployment(compiled, fast_forward=False)
        simulation = _run_simulation(compiled)
        dep_result: SimulationResult = deployment["result"]
        parity = _parity(dep_result, simulation["result"]) and _parity(
            dep_result, stepping["result"]
        )
        all_parity = all_parity and parity
        dep_rps = _rounds_per_sec(dep_result, deployment["wall_time_s"])
        step_rps = _rounds_per_sec(stepping["result"], stepping["wall_time_s"])
        sim_rps = _rounds_per_sec(simulation["result"], simulation["wall_time_s"])
        cells[name] = {
            "scenario": name,
            "policy": POLICY_NAME,
            "lease_protocol": "optimistic",
            "schedule_parity": parity,
            "rounds": dep_result.rounds,
            "cluster_events": len(compiled.events),
            "evictions": dep_result.eviction_count,
            "deployment_rounds_per_sec": round(dep_rps, 1),
            "deployment_stepping_rounds_per_sec": round(step_rps, 1),
            "simulation_rounds_per_sec": round(sim_rps, 1),
            "deployment_tax": round(sim_rps / dep_rps, 2) if dep_rps > 0 else None,
            "fastforward_speedup": round(dep_rps / step_rps, 2) if step_rps > 0 else None,
            "lease_rounds": _lease_stats(deployment["lease_latencies_ms"]),
            "leases_left": deployment["leases_left"],
            "worker_leases_left": deployment["worker_leases_left"],
            "workers_final": deployment["workers"],
            "metric_jobs": deployment["metric_jobs"],
        }

    # The Fig. 19 sweep, via the experiment runner (single source of truth
    # for the measurement and the node spread of revocations).
    sizes = LEASE_SIZES_SMOKE if smoke else DEFAULT_SIZES
    lease_rows: List[Dict[str, object]] = [
        {**row, "latency_ms": round(row["latency_ms"], 4)}
        for row in run_fig19(sizes=sizes, revocations=DEFAULT_REVOCATIONS).rows
    ]

    # Rows are ordered size-major, then protocol, then revocation count.
    central = [r for r in lease_rows if r["protocol"] == "central"]
    optimistic = [r for r in lease_rows if r["protocol"] == "optimistic"]
    lease_claims = {
        # Central latency strictly grows with cluster size (any revocation count).
        "central_grows_with_cluster": all(
            a["latency_ms"] < b["latency_ms"]
            for a, b in zip(central, central[len(DEFAULT_REVOCATIONS) :])
        ),
        # Optimistic latency is a function of the revocation count only.
        "optimistic_independent_of_cluster": len(
            {(r["revocations"], r["latency_ms"]) for r in optimistic}
        )
        == len(DEFAULT_REVOCATIONS),
        "optimistic_grows_with_revocations": all(
            a["latency_ms"] < b["latency_ms"]
            for a, b in zip(optimistic, optimistic[1:])
            if a["num_nodes"] == b["num_nodes"]
        ),
    }

    report = {
        "benchmark": "runtime",
        "seed": seed,
        "smoke": smoke,
        "policy": POLICY_NAME,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": sorted(cells),
        "all_schedule_parity": all_parity,
        "lease_errors": 0,  # any LeaseError would have aborted the bench
        "cells": cells,
        "lease_scaling": {
            "sizes": list(sizes),
            "revocations": list(DEFAULT_REVOCATIONS),
            "rows": lease_rows,
            "claims": lease_claims,
        },
    }
    report["metadata"] = run_metadata(
        seed,
        {"benchmark": "runtime", "smoke": smoke, "scenarios": sorted(cells)},
        started_at,
    )
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report
