"""CLI entry point: ``python -m repro.bench [--smoke] [--runtime|--federation] [--out PATH]``."""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.chaos_bench import run_chaos_bench
from repro.bench.core_bench import run_core_bench
from repro.bench.federation_bench import run_federation_bench
from repro.bench.runtime_bench import run_runtime_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Run the scheduler-core benchmark (baseline vs. indexed), or -- "
            "with --runtime -- the deployment-path benchmark (CentralScheduler "
            "vs. plain simulation plus the Fig. 19 lease sweep), or -- with "
            "--federation -- the multi-cluster federation benchmark (router x "
            "shard-count matrix, parity-checked)."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI (seconds instead of minutes)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--runtime",
        action="store_true",
        help=(
            "run the runtime benchmark instead: deployment vs simulation "
            "rounds/s and lease latency across the scenario registry, "
            "schedule-parity checked (writes BENCH_runtime.json)"
        ),
    )
    mode.add_argument(
        "--federation",
        action="store_true",
        help=(
            "run the federation benchmark instead: every routing policy x "
            "shard count on the Philly workload, per-shard fast-forward vs "
            "stepping schedule-parity checked (writes BENCH_federation.json)"
        ),
    )
    mode.add_argument(
        "--events",
        action="store_true",
        help=(
            "run only the event-core benchmark: event-driven engine vs the "
            "round-loop oracle (long-horizon speedup cell, scenario and "
            "policy parity matrices); merges an 'event_core' section into "
            "BENCH_core.json"
        ),
    )
    mode.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "run the chaos benchmark instead: SIGKILL a federation worker "
            "mid-run (checkpoint/replay recovery must be bit-identical) and "
            "drive the chaos scenario under seeded RPC faults (schedule "
            "parity, zero leaked leases); merges a 'chaos' section into "
            "BENCH_federation.json and BENCH_runtime.json"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "output JSON path (default: BENCH_core.json, BENCH_runtime.json "
            "with --runtime, or BENCH_federation.json with --federation); "
            "'-' to skip writing"
        ),
    )
    parser.add_argument(
        "--no-policies",
        action="store_true",
        help="skip the scheduling-policy x placement benchmark matrix",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help=(
            "worker processes for the federation matrix (default: serial, so "
            "cross-cell rounds/s comparisons are timed fairly; parallel runs "
            "are for parity-only checks; only used with --federation)"
        ),
    )
    parser.add_argument(
        "--shards",
        default=None,
        help=(
            "comma-separated shard counts for the federation matrix, e.g. "
            "'1,2,4,8' (default: the built-in matrix; only used with "
            "--federation)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes per parallel federation cell (default: one per "
            "shard, capped at usable cores and 8; only used with --federation)"
        ),
    )
    parser.add_argument(
        "--routers",
        default=None,
        help=(
            "comma-separated router names to benchmark, e.g. "
            "'round-robin,queue-delay' (default: all; only used with "
            "--federation)"
        ),
    )
    parser.add_argument(
        "--stream",
        type=int,
        default=None,
        metavar="N",
        help=(
            "append the 64-shard streaming demonstration: N jobs consumed "
            "from a lazy arrival iterator with bounded parent memory (only "
            "used with --federation)"
        ),
    )
    args = parser.parse_args(argv)
    if args.runtime:
        default_out = "BENCH_runtime.json"
    elif args.federation:
        default_out = "BENCH_federation.json"
    else:
        default_out = "BENCH_core.json"
    out_path = None if args.out == "-" else (args.out or default_out)
    if args.chaos:
        # --chaos merges into both bench reports; --out - skips writing, any
        # other --out value is rejected (there is no single output file).
        if args.out not in (None, "-"):
            parser.error("--chaos writes BENCH_federation.json and "
                         "BENCH_runtime.json; only '--out -' is supported")
        write = args.out != "-"
        report = run_chaos_bench(
            smoke=args.smoke,
            federation_out="BENCH_federation.json" if write else None,
            runtime_out="BENCH_runtime.json" if write else None,
            started_at=time.time(),
        )
    elif args.events:
        from repro.bench.event_bench import run_event_bench

        section = run_event_bench(smoke=args.smoke)
        report = {"event_core": section}
        if out_path is not None:
            # Merge into the existing core report rather than clobbering it:
            # the event bench is a section of BENCH_core.json, not a file.
            try:
                with open(out_path) as handle:
                    report = json.load(handle)
            except (OSError, ValueError):
                report = {}
            report["event_core"] = section
            with open(out_path, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=False)
                handle.write("\n")
    elif args.runtime:
        report = run_runtime_bench(
            smoke=args.smoke, out_path=out_path, started_at=time.time()
        )
    elif args.federation:
        report = run_federation_bench(
            smoke=args.smoke,
            out_path=out_path,
            processes=args.processes,
            shard_counts=(
                [int(part) for part in args.shards.split(",")] if args.shards else None
            ),
            workers=args.workers,
            routers=args.routers.split(",") if args.routers else None,
            stream_jobs=args.stream,
            started_at=time.time(),
        )
    else:
        report = run_core_bench(
            smoke=args.smoke,
            out_path=out_path,
            policies=not args.no_policies,
            started_at=time.time(),
        )
    json.dump(report, sys.stdout, indent=2)
    print()
    if args.chaos:
        failed = []
        federation = report["federation"]
        runtime = report["runtime"]
        if not federation["all_kill_parity"]:
            failed.append("kill-one-worker schedule parity")
        if not federation["all_kills_recovered"]:
            failed.append("worker restarts recorded")
        if not federation["degrade_ok"]:
            failed.append("degradation job conservation")
        if not runtime["all_schedule_parity"]:
            failed.append("schedule parity under RPC faults")
        if not runtime["zero_leaked_leases"]:
            failed.append("zero leaked leases")
        if not runtime["recovery_counters_nonzero"]:
            failed.append("nonzero retry/recovery counters")
        if failed:
            print(f"chaos bench FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
    if args.runtime:
        failed = []
        if not report["all_schedule_parity"]:
            failed.append("schedule parity")
        claims = report["lease_scaling"]["claims"]
        failed.extend(f"lease claim {name}" for name, ok in claims.items() if not ok)
        if failed:
            print(f"runtime bench FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
    if args.federation:
        failed = []
        if not report["all_schedule_parity"]:
            failed.append("schedule parity")
        if not report["all_parallel_parity"]:
            failed.append("serial/parallel parity")
        if not report["multi_shard_gain_ok"]:
            failed.append(
                "multi-shard rounds/s gain (need >= 2 routers, got "
                + str(report["multi_shard_gain_routers"])
                + ")"
            )
        scaling = report["scaling"]
        if not scaling["parallel_parity"]:
            failed.append("scaling-cell serial/parallel parity")
        if not scaling["speedup_ok"]:
            failed.append(
                f"parallel speedup >= {scaling['speedup_gate']}x "
                f"(measured {scaling['measured_speedup']}x)"
            )
        stream = report.get("stream_demo")
        if stream is not None and not stream["all_jobs_finished"]:
            failed.append("stream demo lost jobs")
        if failed:
            print(f"federation bench FAILED: {', '.join(failed)}", file=sys.stderr)
            return 1
    if not (args.chaos or args.runtime or args.federation or args.events):
        telemetry = report["telemetry"]
        if telemetry["gated"] and not telemetry["overhead_ok"]:
            print(
                "core bench FAILED: telemetry recording overhead "
                f"{telemetry['overhead_fraction']:+.2%} exceeds the "
                f"{telemetry['overhead_gate']:.0%} gate",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
