"""CLI entry point: ``python -m repro.bench [--smoke] [--out PATH]``."""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.core_bench import run_core_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the scheduler-core benchmark (baseline vs. indexed).",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small 32-GPU configuration for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_core.json",
        help="output JSON path (default: BENCH_core.json); '-' to skip writing",
    )
    parser.add_argument(
        "--no-policies",
        action="store_true",
        help="skip the scheduling-policy x placement benchmark matrix",
    )
    args = parser.parse_args(argv)
    out_path = None if args.out == "-" else args.out
    report = run_core_bench(
        smoke=args.smoke, out_path=out_path, policies=not args.no_policies
    )
    json.dump(report, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
