"""The core benchmark: indexed + event-skipping loop vs. the seed baseline.

Runs the seeded 256-GPU Philly-style workload (see
:mod:`repro.bench.workload`) through FIFO + consolidated placement twice:

* **baseline** -- :class:`~repro.bench.legacy.LegacySimulator`: seed-cost state
  queries (full scans) and no event skipping, i.e. the pre-refactor core;
* **indexed** -- the current :class:`~repro.simulator.engine.Simulator` on the
  indexed state with fast-forward enabled.

Both runs must produce *identical* per-job completion times and round logs
(the benchmark fails loudly otherwise), so the speedup is pure bookkeeping,
not a change in scheduling behaviour.  Results are written to
``BENCH_core.json``.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import tempfile
import time
from typing import Dict, Optional

from repro.bench import workload
from repro.bench.legacy import LegacySimulator
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling
from repro.simulator.engine import SimulationResult, Simulator
from repro.telemetry.events import run_metadata
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.sinks import JsonlSink

#: Recording a run may cost at most this fraction of the untraced wall time
#: (gated on the full configuration; smoke timings are noise-dominated).
TELEMETRY_OVERHEAD_GATE = 0.05
#: Timing repetitions per leg for the overhead measurement (best-of).
_OVERHEAD_REPS = 5


def _run_case(
    indexed: bool, smoke: bool, trace_path: Optional[str] = None
) -> Dict[str, object]:
    trace = workload.bench_trace(smoke=smoke)
    simulator_cls = Simulator if indexed else LegacySimulator
    sink = None
    extra: Dict[str, object] = {}
    if trace_path is not None:
        sink = JsonlSink(trace_path)
        extra["recorder"] = TraceRecorder(sink, source="sim")
    simulator = simulator_cls(
        cluster_state=workload.bench_cluster(smoke=smoke),
        jobs=trace.fresh_jobs(),
        scheduling_policy=FifoScheduling(),
        placement_policy=ConsolidatedPlacement(),
        round_duration=workload.ROUND_DURATION,
        **extra,
    )
    start = time.perf_counter()
    cpu_start = time.process_time()
    result = simulator.run()
    cpu_time = time.process_time() - cpu_start
    wall_time = time.perf_counter() - start
    if sink is not None:
        sink.close()
    return {
        "result": result,
        "wall_time_s": wall_time,
        "cpu_time_s": cpu_time,
        "rounds": result.rounds,
        "rounds_per_sec": result.rounds / wall_time if wall_time > 0 else float("inf"),
    }


def _telemetry_overhead(smoke: bool, untraced: Dict[str, object]) -> Dict[str, object]:
    """Measure recording cost: traced vs untraced indexed legs, best-of-N.

    Both legs repeat ``_OVERHEAD_REPS`` times interleaved and the ratio is
    taken between the per-leg minima, which is what makes a ~5% gate
    meaningful on a sub-second run.  The gate binds on **process CPU time**:
    recording cost is pure CPU (encode + write to page cache), while wall
    time also absorbs scheduler preemption from whatever else the machine is
    running, which a bench run cannot control (wall numbers are still
    reported).  The traced run must also keep schedule parity with the
    untraced one -- recording that changed the schedule would be a
    correctness bug, not an overhead problem.
    """
    fd, trace_path = tempfile.mkstemp(suffix=".jsonl", prefix="bench-trace-")
    os.close(fd)
    # Freeze the heap the earlier bench legs accumulated: without this, the
    # traced leg's extra allocations trigger collections that scan the whole
    # bench heap, billing unrelated GC work to the recording overhead (the
    # effect is context-dependent, which is worse than being slow).
    gc.collect()
    gc.freeze()
    try:
        untraced_runs = [untraced]
        traced_runs = []
        for _ in range(_OVERHEAD_REPS):
            traced_runs.append(_run_case(indexed=True, smoke=smoke, trace_path=trace_path))
            untraced_runs.append(_run_case(indexed=True, smoke=smoke))
            gc.collect()
        events = sum(1 for _ in open(trace_path)) - 1  # minus header line
    finally:
        gc.unfreeze()
        os.remove(trace_path)
    parity = _parity(untraced["result"], traced_runs[-1]["result"])
    traced_cpu = min(run["cpu_time_s"] for run in traced_runs)
    untraced_cpu = min(run["cpu_time_s"] for run in untraced_runs)
    overhead = traced_cpu / untraced_cpu - 1 if untraced_cpu > 0 else 0.0
    return {
        "events": events,
        "traced_cpu_time_s": round(traced_cpu, 4),
        "untraced_cpu_time_s": round(untraced_cpu, 4),
        "traced_wall_time_s": round(min(r["wall_time_s"] for r in traced_runs), 4),
        "untraced_wall_time_s": round(min(r["wall_time_s"] for r in untraced_runs), 4),
        "overhead_fraction": round(overhead, 4),
        "overhead_gate": TELEMETRY_OVERHEAD_GATE,
        # The gate binds on the full configuration only: the smoke run
        # finishes in tens of milliseconds, where timer noise dwarfs any
        # real recording cost.
        "gated": not smoke,
        "overhead_ok": smoke or overhead <= TELEMETRY_OVERHEAD_GATE,
        "schedule_parity": (
            parity["identical_completion_times"]
            and parity["identical_round_logs"]
            and parity["identical_round_count"]
        ),
    }


def _parity(baseline: SimulationResult, indexed: SimulationResult) -> Dict[str, object]:
    base_completions = {j.job_id: j.completion_time for j in baseline.jobs}
    new_completions = {j.job_id: j.completion_time for j in indexed.jobs}
    mismatched = sorted(
        job_id
        for job_id in set(base_completions) | set(new_completions)
        if base_completions.get(job_id) != new_completions.get(job_id)
    )
    return {
        "identical_completion_times": not mismatched,
        "identical_round_logs": baseline.round_log == indexed.round_log,
        "identical_round_count": baseline.rounds == indexed.rounds,
        "mismatched_job_ids": mismatched[:20],
    }


def run_core_bench(
    smoke: bool = False,
    out_path: Optional[str] = "BENCH_core.json",
    policies: bool = True,
    started_at: Optional[float] = None,
) -> Dict[str, object]:
    """Run baseline + indexed benchmark, verify parity, write the JSON report.

    With ``policies=True`` (the default) the report also carries the
    policy x placement matrix of :mod:`repro.bench.policy_bench`, comparing
    each incremental scheduling policy against its pre-refactor
    implementation, plus the telemetry recording-overhead leg (traced vs
    untraced indexed run; gated at ``TELEMETRY_OVERHEAD_GATE`` on the full
    configuration).  ``started_at`` is the caller's wall-clock stamp for the
    report metadata (the CLI passes ``time.time()``).
    """
    from repro.bench.policy_bench import run_policy_bench

    scale = "smoke" if smoke else "full"
    total_gpus = (workload.SMOKE_NODES if smoke else workload.FULL_NODES) * workload.GPUS_PER_NODE
    baseline = _run_case(indexed=False, smoke=smoke)
    indexed = _run_case(indexed=True, smoke=smoke)
    parity = _parity(baseline["result"], indexed["result"])

    def _case_report(case: Dict[str, object]) -> Dict[str, object]:
        result: SimulationResult = case["result"]
        return {
            "wall_time_s": round(case["wall_time_s"], 4),
            "rounds": case["rounds"],
            "rounds_per_sec": round(case["rounds_per_sec"], 1),
            "finished_jobs": len(result.finished_jobs()),
            "avg_jct_s": round(result.avg_jct(), 2),
        }

    report = {
        "benchmark": f"core-{scale}-{total_gpus}gpu-philly-fifo-consolidated",
        "config": {
            "scale": scale,
            "seed": workload.BENCH_SEED,
            "num_nodes": workload.SMOKE_NODES if smoke else workload.FULL_NODES,
            "gpus_per_node": workload.GPUS_PER_NODE,
            "total_gpus": total_gpus,
            "num_jobs": workload.SMOKE_JOBS if smoke else workload.FULL_JOBS,
            "jobs_per_hour": workload.SMOKE_JOBS_PER_HOUR if smoke else workload.FULL_JOBS_PER_HOUR,
            "round_duration_s": workload.ROUND_DURATION,
            "python": platform.python_version(),
        },
        "baseline": _case_report(baseline),
        "indexed": _case_report(indexed),
        "speedup_rounds_per_sec": round(
            indexed["rounds_per_sec"] / baseline["rounds_per_sec"], 2
        ),
        "speedup_wall_time": round(
            baseline["wall_time_s"] / indexed["wall_time_s"], 2
        )
        if indexed["wall_time_s"] > 0
        else float("inf"),
        "parity": parity,
    }
    report["metadata"] = run_metadata(
        workload.BENCH_SEED, report["config"], started_at
    )

    schedule_parity = (
        parity["identical_completion_times"]
        and parity["identical_round_logs"]
        and parity["identical_round_count"]
    )
    report["schedule_parity"] = schedule_parity

    report["telemetry"] = _telemetry_overhead(smoke, indexed)

    # Event-driven engine vs the round-loop oracle: long-horizon speedup cell
    # plus scenario and policy parity matrices (raises on divergence or a
    # missed speedup gate -- see repro.bench.event_bench).
    from repro.bench.event_bench import run_event_bench

    report["event_core"] = run_event_bench(smoke=smoke)

    if policies:
        report["policies"] = run_policy_bench(smoke=smoke)

    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")

    if not schedule_parity:
        raise AssertionError(
            f"baseline and indexed runs diverged: {parity}"
        )
    if not report["telemetry"]["schedule_parity"]:
        raise AssertionError(
            "recording changed the schedule: traced and untraced runs diverged"
        )
    if policies and not report["policies"]["all_schedule_parity"]:
        raise AssertionError(
            "a policy benchmark cell diverged from its pre-refactor baseline: "
            + str(
                {
                    name: cell
                    for name, cell in report["policies"]["cells"].items()
                    if not cell["schedule_parity"]
                }
            )
        )
    return report
