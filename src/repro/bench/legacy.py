"""Pre-refactor reference implementations used as the benchmark baseline.

These subclasses reproduce the *seed* cost model of the state layer so the
benchmark can report an honest before/after comparison from a single build:

* :class:`LegacyClusterState` answers every query by scanning all GPU rows
  (O(total GPUs)), exactly like the seed ``ClusterState`` did.  Mutations
  still maintain the new indexes (they are simply ignored by the overridden
  queries), which keeps mutation costs comparable to the seed's.
* :class:`LegacyJobState` answers every view by scanning and sorting the whole
  registry (O(total jobs)), like the seed ``JobState``.
* :class:`LegacyBloxManager` re-scans every finished job (and each one's GPUs)
  when pruning, the seed's O(finished x total GPUs) behaviour.
* :class:`LegacySimulator` wires the three together and disables the
  event-skipping fast-forward, executing every round like the seed loop.

The scheduling *decisions* are identical either way -- the benchmark asserts
this -- only the bookkeeping costs differ.

The ``Legacy*Scheduling`` classes below likewise preserve the *policy-layer*
hot path as it stood before the incremental policy refactor: full re-sorts of
the runnable set every round, Pollux's O(capacity x jobs) water-filling scan,
Gavel's per-job rebuild of the cluster GPU-type set, Tiresias' comparator
side effect, and the pre-refactor fast-forward opt-outs
(``steady_state_safe = False`` on tiresias/gavel, no ``next_policy_event_time``
bounds anywhere).  The policy benchmark matrix
(:mod:`repro.bench.policy_bench`) runs them against the incremental
implementations on identical workloads and asserts schedule parity cell by
cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.gpu_types import GPU_TYPES
from repro.cluster.node import GPU
from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.blox_manager import BloxManager
from repro.core.cluster_state import ClusterState, gpu_type_key
from repro.core.exceptions import ConfigurationError, UnknownNodeError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.policies.scheduling.tiresias import DEFAULT_QUEUE_THRESHOLDS
from repro.simulator.engine import Simulator


class LegacyClusterState(ClusterState):
    """Seed-style cluster state: every query is a full scan of the GPU table."""

    def free_gpus(self, gpu_type=None) -> List[GPU]:
        out = []
        for gpu in self.gpus.values():
            if not gpu.is_free:
                continue
            if self.nodes[gpu.node_id].failed:
                continue
            if gpu_type is not None and gpu_type_key(gpu.gpu_type) != gpu_type_key(gpu_type):
                continue
            out.append(gpu)
        return sorted(out, key=lambda g: g.gpu_id)

    def num_free_gpus(self, gpu_type=None) -> int:
        return len(self.free_gpus(gpu_type))

    def free_gpus_by_node(self) -> Dict[int, List[GPU]]:
        out: Dict[int, List[GPU]] = {}
        for gpu in self.free_gpus():
            out.setdefault(gpu.node_id, []).append(gpu)
        for gpus in out.values():
            gpus.sort(key=lambda g: g.local_gpu_id)
        return out

    def gpus_on_node(self, node_id: int) -> List[GPU]:
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        return sorted(
            (g for g in self.gpus.values() if g.node_id == node_id),
            key=lambda g: g.local_gpu_id,
        )

    def free_gpus_on_node(self, node_id: int) -> List[GPU]:
        return [g for g in self.gpus_on_node(node_id) if g.is_free]

    def gpus_for_job(self, job_id: int) -> List[GPU]:
        return sorted(
            (g for g in self.gpus.values() if g.job_id == job_id),
            key=lambda g: g.gpu_id,
        )

    def nodes_for_job(self, job_id: int) -> List[int]:
        return sorted({g.node_id for g in self.gpus_for_job(job_id)})

    def jobs_with_allocations(self) -> List[int]:
        return sorted({g.job_id for g in self.gpus.values() if g.job_id is not None})

    def utilization(self) -> float:
        if not self.gpus:
            return 0.0
        busy = sum(1 for g in self.gpus.values() if not g.is_free)
        return busy / len(self.gpus)


class LegacyJobState(JobState):
    """Seed-style job registry: every view scans and sorts the whole registry."""

    def jobs_with_status(self, *statuses: JobStatus) -> List[Job]:
        wanted = set(statuses)
        return sorted(
            (j for j in self._jobs.values() if j.status in wanted),
            key=lambda j: j.job_id,
        )

    def count_with_status(self, *statuses: JobStatus) -> int:
        return len(self.jobs_with_status(*statuses))

    def active_jobs(self) -> List[Job]:
        return [j for j in self.all_jobs() if j.status.is_active]

    def count_active(self) -> int:
        return len(self.active_jobs())

    def finished_jobs(self) -> List[Job]:
        return [j for j in self.all_jobs() if j.is_finished]

    def count_finished(self) -> int:
        return len(self.finished_jobs())


class LegacyBloxManager(BloxManager):
    """Seed-style pruning: rescan every finished job's GPUs each round."""

    def prune_completed_jobs(self, cluster_state, job_state):
        finished_holding_gpus = [
            job
            for job in job_state.finished_jobs()
            if cluster_state.gpus_for_job(job.job_id)
        ]
        for job in finished_holding_gpus:
            cluster_state.release_job(job.job_id)
            job.allocated_gpus = []
        return finished_holding_gpus


# ----------------------------------------------------------------------
# Pre-refactor scheduling policies (the policy-layer benchmark baselines)
# ----------------------------------------------------------------------


class LegacyFifoScheduling(SchedulingPolicy):
    """Seed FIFO: full re-sort of the runnable set every round."""

    name = "fifo"
    steady_state_safe = True

    def __init__(self, hol_blocking: bool = False) -> None:
        self.hol_blocking = hol_blocking

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        ordered = sorted(job_state.runnable_jobs(), key=lambda j: (j.arrival_time, j.job_id))
        if not self.hol_blocking:
            return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]
        capacity = sum(
            node.num_gpus for node in cluster_state.nodes.values() if not node.failed
        )
        entries: List[ScheduleEntry] = []
        remaining = capacity
        for job in ordered:
            if job.num_gpus > remaining:
                break
            entries.append(ScheduleEntry(job_id=job.job_id, gpu_demand=job.num_gpus))
            remaining -= job.num_gpus
        return entries


class LegacySrtfScheduling(SchedulingPolicy):
    """Seed SRTF: full re-sort of the runnable set every round."""

    name = "srtf"
    steady_state_safe = True

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        ordered = sorted(
            job_state.runnable_jobs(),
            key=lambda j: (j.remaining_work, j.arrival_time, j.job_id),
        )
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]


class LegacyLasScheduling(SchedulingPolicy):
    """Seed LAS: full re-sort of the runnable set every round."""

    name = "las"
    steady_state_safe = True

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        ordered = sorted(
            job_state.runnable_jobs(),
            key=lambda j: (j.attained_service, j.arrival_time, j.job_id),
        )
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]


class LegacyTiresiasScheduling(SchedulingPolicy):
    """Seed Tiresias: impure comparator, full re-sort, no event bounds."""

    name = "tiresias"
    steady_state_safe = False  # pre-refactor: comparator side effect per round

    def __init__(
        self,
        queue_thresholds: Sequence[float] = DEFAULT_QUEUE_THRESHOLDS,
        starvation_promote_after: float = float("inf"),
    ) -> None:
        thresholds = list(queue_thresholds)
        if any(t <= 0 for t in thresholds):
            raise ConfigurationError("queue thresholds must be positive")
        if thresholds != sorted(thresholds):
            raise ConfigurationError("queue thresholds must be increasing")
        self.queue_thresholds = thresholds
        self.starvation_promote_after = starvation_promote_after
        self._last_run_time: Dict[int, float] = {}

    def queue_index(self, job: Job) -> int:
        for index, threshold in enumerate(self.queue_thresholds):
            if job.attained_service < threshold:
                return index
        return len(self.queue_thresholds)

    def _effective_queue(self, job: Job, now: float) -> int:
        if job.status == JobStatus.RUNNING:
            self._last_run_time[job.job_id] = now
        waited = now - self._last_run_time.get(job.job_id, job.arrival_time)
        if waited >= self.starvation_promote_after:
            return 0
        return self.queue_index(job)

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        now = getattr(job_state, "current_time", 0.0)
        ordered = sorted(
            job_state.runnable_jobs(),
            key=lambda j: (self._effective_queue(j, now), j.arrival_time, j.job_id),
        )
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]


class LegacyGavelScheduling(SchedulingPolicy):
    """Seed Gavel: rebuilds the cluster GPU-type set per job per round."""

    name = "gavel"
    steady_state_safe = False  # pre-refactor: schedule() mutated job metrics

    @staticmethod
    def job_throughput_on(job: Job, gpu_type_name: str) -> float:
        if gpu_type_name in job.per_gpu_throughput:
            return max(1e-9, float(job.per_gpu_throughput[gpu_type_name]))
        gpu_type = GPU_TYPES.get(gpu_type_name)
        return gpu_type.compute_factor if gpu_type is not None else 1.0

    def best_gpu_type(self, job: Job, cluster_state: ClusterState) -> Optional[str]:
        present = {
            node.gpu_type_name for node in cluster_state.nodes.values() if not node.failed
        }
        if not present:
            return None
        return max(present, key=lambda t: self.job_throughput_on(job, t))

    def normalised_service(self, job: Job, cluster_state: ClusterState) -> float:
        gpus = cluster_state.gpus_for_job(job.job_id)
        if gpus:
            type_name = gpus[0].gpu_type.name
        else:
            type_name = self.best_gpu_type(job, cluster_state) or "v100"
        return job.attained_service * self.job_throughput_on(job, type_name)

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        jobs = job_state.runnable_jobs()
        ordered = sorted(
            jobs,
            key=lambda j: (self.normalised_service(j, cluster_state), j.arrival_time, j.job_id),
        )
        entries = []
        for job in ordered:
            preferred = self.best_gpu_type(job, cluster_state)
            job.metrics["preferred_gpu_type"] = preferred
            entries.append(
                ScheduleEntry(job_id=job.job_id, gpu_demand=job.num_gpus, gpu_type=preferred)
            )
        return entries


class LegacyPolluxScheduling(SchedulingPolicy):
    """Seed Pollux: O(capacity x jobs) greedy water-filling scan, no memoization."""

    name = "pollux"

    def __init__(self, efficiency_decay: float = 0.03, restart_penalty: float = 0.05) -> None:
        if efficiency_decay < 0:
            raise ConfigurationError("efficiency_decay must be >= 0")
        if restart_penalty < 0:
            raise ConfigurationError("restart_penalty must be >= 0")
        self.efficiency_decay = efficiency_decay
        self.restart_penalty = restart_penalty

    def statistical_efficiency(self, job: Job, num_gpus: int) -> float:
        extra = max(0, num_gpus - 1)
        scale_limit = max(1, job.max_batch_scale)
        overscale = max(0, num_gpus - scale_limit)
        return 1.0 / (1.0 + self.efficiency_decay * extra + 0.5 * overscale)

    def goodput(self, job: Job, num_gpus: int) -> float:
        if num_gpus <= 0:
            return 0.0
        return job.scaling.speedup(num_gpus) * self.statistical_efficiency(job, num_gpus)

    def marginal_goodput(self, job: Job, num_gpus: int) -> float:
        cap = min(job.scaling.max_useful_gpus, job.num_gpus * max(1, job.max_batch_scale))
        if num_gpus >= cap:
            return 0.0
        gain = self.goodput(job, num_gpus + 1) - self.goodput(job, num_gpus)
        if num_gpus == 0 and job.status != JobStatus.RUNNING:
            gain -= self.restart_penalty
        return gain

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        jobs = job_state.runnable_jobs()
        if not jobs:
            return []
        capacity = sum(
            node.num_gpus for node in cluster_state.nodes.values() if not node.failed
        )

        running = [j for j in jobs if j.status == JobStatus.RUNNING]
        waiting = sorted(
            (j for j in jobs if j.status != JobStatus.RUNNING),
            key=lambda j: (j.arrival_time, j.job_id),
        )

        allocation: Dict[int, int] = {j.job_id: 0 for j in jobs}
        by_id = {j.job_id: j for j in jobs}

        remaining = capacity
        for job in sorted(running, key=lambda j: (j.arrival_time, j.job_id)):
            if remaining <= 0:
                break
            allocation[job.job_id] = 1
            remaining -= 1

        while remaining > 0:
            best_id = None
            best_gain = 1e-12
            for job_id, gpus in allocation.items():
                gain = self.marginal_goodput(by_id[job_id], gpus)
                if gain > best_gain:
                    best_gain = gain
                    best_id = job_id
            if best_id is None:
                break
            allocation[best_id] += 1
            remaining -= 1

        ordered = sorted(running, key=lambda j: (j.arrival_time, j.job_id)) + waiting
        return [
            ScheduleEntry(job_id=j.job_id, gpu_demand=allocation[j.job_id])
            for j in ordered
            if allocation[j.job_id] > 0
        ]


class PrePolicyRefactorJobState(JobState):
    """Job registry with the pre-policy-refactor view costs.

    Identical indexes to the current :class:`JobState`, but every view sorts
    its id-set on each call -- the cost the status-indexed registry had before
    this PR added the memoized sorted views.
    """

    def jobs_with_status(self, *statuses: JobStatus) -> List[Job]:
        ids: List[int] = []
        for status in dict.fromkeys(statuses):
            ids.extend(self._by_status[status])
        return [self._jobs[i] for i in sorted(ids)]


class PrePolicyRefactorBloxManager(BloxManager):
    """Manager with the pre-policy-refactor costs: per-round prune scans (no
    O(1) early-out) and the double-sort lease-renewal check in exec_jobs."""

    def prune_completed_jobs(self, cluster_state, job_state):
        finished_holding_gpus = [
            job_state.get(job_id)
            for job_id in cluster_state.jobs_with_allocations()
            if job_id in job_state and job_state.get(job_id).is_finished
        ]
        for job in finished_holding_gpus:
            cluster_state.release_job(job.job_id)
            job.allocated_gpus = []
        return finished_holding_gpus

    def exec_jobs(self, decision, cluster_state, job_state):
        for job_id in decision.to_suspend:
            job = job_state.get(job_id)
            self.preemptor.preempt(job, cluster_state, self.current_time)
        for job_id in sorted(decision.to_launch):
            gpu_ids = decision.to_launch[job_id]
            job = job_state.get(job_id)
            if job.is_finished:
                continue
            if job.status == JobStatus.RUNNING and sorted(gpu_ids) == sorted(job.allocated_gpus):
                continue
            if job.status == JobStatus.RUNNING:
                self.preemptor.preempt(job, cluster_state, self.current_time)
            self.launcher.launch(job, gpu_ids, cluster_state, self.current_time)


class LegacyPolicySimulator(Simulator):
    """The scheduling loop as it stood before the incremental policy refactor.

    The policy-layer benchmark baseline: indexed state (the previous PR's
    refactor is kept) but none of this PR's hot-path machinery --

    * no steady-mode strides or chained drain skipping (classic per-round
      light loops only; decision-stable skipping never triggers because the
      legacy policies define no ``next_policy_event_time`` bound);
    * per-round effective-rate recomputation (no version-stamped rate cache);
    * per-call view sorting in ``JobState`` and per-round prune scans.

    Combined with the ``Legacy*Scheduling`` policies above this reproduces the
    pre-PR cost model from a single build, the same way
    :class:`LegacyClusterState` reproduces the seed's.
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("job_state", PrePolicyRefactorJobState())
        super().__init__(*args, **kwargs)
        self.execution_model._rates_cacheable = False
        self._stride_accelerable = False
        self.manager = PrePolicyRefactorBloxManager(
            trace_jobs=self.jobs,
            round_duration=self.manager.round_duration,
            execution_model=self.execution_model,
            cluster_manager=self.manager.cluster_manager,
        )


class LegacySimulator(Simulator):
    """The scheduling loop on seed-cost state, with event skipping disabled.

    The passed-in cluster is rebuilt as a :class:`LegacyClusterState` (same
    nodes, GPU ids and assignments), so the simulation mutates the rebuilt
    copy, not the object the caller handed in.
    """

    def __init__(self, cluster_state, *args, **kwargs) -> None:
        if not isinstance(cluster_state, LegacyClusterState):
            cluster_state = cluster_state.copy_as(LegacyClusterState)
        kwargs["fast_forward"] = False
        kwargs.setdefault("job_state", LegacyJobState())
        super().__init__(cluster_state, *args, **kwargs)
        self.manager = LegacyBloxManager(
            trace_jobs=self.jobs,
            round_duration=self.manager.round_duration,
            execution_model=self.execution_model,
            cluster_manager=self.manager.cluster_manager,
        )
