"""Pre-refactor reference implementations used as the benchmark baseline.

These subclasses reproduce the *seed* cost model of the state layer so the
benchmark can report an honest before/after comparison from a single build:

* :class:`LegacyClusterState` answers every query by scanning all GPU rows
  (O(total GPUs)), exactly like the seed ``ClusterState`` did.  Mutations
  still maintain the new indexes (they are simply ignored by the overridden
  queries), which keeps mutation costs comparable to the seed's.
* :class:`LegacyJobState` answers every view by scanning and sorting the whole
  registry (O(total jobs)), like the seed ``JobState``.
* :class:`LegacyBloxManager` re-scans every finished job (and each one's GPUs)
  when pruning, the seed's O(finished x total GPUs) behaviour.
* :class:`LegacySimulator` wires the three together and disables the
  event-skipping fast-forward, executing every round like the seed loop.

The scheduling *decisions* are identical either way -- the benchmark asserts
this -- only the bookkeeping costs differ.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import GPU
from repro.core.blox_manager import BloxManager
from repro.core.cluster_state import ClusterState, gpu_type_key
from repro.core.exceptions import UnknownNodeError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.simulator.engine import Simulator


class LegacyClusterState(ClusterState):
    """Seed-style cluster state: every query is a full scan of the GPU table."""

    def free_gpus(self, gpu_type=None) -> List[GPU]:
        out = []
        for gpu in self.gpus.values():
            if not gpu.is_free:
                continue
            if self.nodes[gpu.node_id].failed:
                continue
            if gpu_type is not None and gpu_type_key(gpu.gpu_type) != gpu_type_key(gpu_type):
                continue
            out.append(gpu)
        return sorted(out, key=lambda g: g.gpu_id)

    def num_free_gpus(self, gpu_type=None) -> int:
        return len(self.free_gpus(gpu_type))

    def free_gpus_by_node(self) -> Dict[int, List[GPU]]:
        out: Dict[int, List[GPU]] = {}
        for gpu in self.free_gpus():
            out.setdefault(gpu.node_id, []).append(gpu)
        for gpus in out.values():
            gpus.sort(key=lambda g: g.local_gpu_id)
        return out

    def gpus_on_node(self, node_id: int) -> List[GPU]:
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        return sorted(
            (g for g in self.gpus.values() if g.node_id == node_id),
            key=lambda g: g.local_gpu_id,
        )

    def free_gpus_on_node(self, node_id: int) -> List[GPU]:
        return [g for g in self.gpus_on_node(node_id) if g.is_free]

    def gpus_for_job(self, job_id: int) -> List[GPU]:
        return sorted(
            (g for g in self.gpus.values() if g.job_id == job_id),
            key=lambda g: g.gpu_id,
        )

    def nodes_for_job(self, job_id: int) -> List[int]:
        return sorted({g.node_id for g in self.gpus_for_job(job_id)})

    def jobs_with_allocations(self) -> List[int]:
        return sorted({g.job_id for g in self.gpus.values() if g.job_id is not None})

    def utilization(self) -> float:
        if not self.gpus:
            return 0.0
        busy = sum(1 for g in self.gpus.values() if not g.is_free)
        return busy / len(self.gpus)


class LegacyJobState(JobState):
    """Seed-style job registry: every view scans and sorts the whole registry."""

    def jobs_with_status(self, *statuses: JobStatus) -> List[Job]:
        wanted = set(statuses)
        return sorted(
            (j for j in self._jobs.values() if j.status in wanted),
            key=lambda j: j.job_id,
        )

    def count_with_status(self, *statuses: JobStatus) -> int:
        return len(self.jobs_with_status(*statuses))

    def active_jobs(self) -> List[Job]:
        return [j for j in self.all_jobs() if j.status.is_active]

    def count_active(self) -> int:
        return len(self.active_jobs())

    def finished_jobs(self) -> List[Job]:
        return [j for j in self.all_jobs() if j.is_finished]

    def count_finished(self) -> int:
        return len(self.finished_jobs())


class LegacyBloxManager(BloxManager):
    """Seed-style pruning: rescan every finished job's GPUs each round."""

    def prune_completed_jobs(self, cluster_state, job_state):
        finished_holding_gpus = [
            job
            for job in job_state.finished_jobs()
            if cluster_state.gpus_for_job(job.job_id)
        ]
        for job in finished_holding_gpus:
            cluster_state.release_job(job.job_id)
            job.allocated_gpus = []
        return finished_holding_gpus


class LegacySimulator(Simulator):
    """The scheduling loop on seed-cost state, with event skipping disabled.

    The passed-in cluster is rebuilt as a :class:`LegacyClusterState` (same
    nodes, GPU ids and assignments), so the simulation mutates the rebuilt
    copy, not the object the caller handed in.
    """

    def __init__(self, cluster_state, *args, **kwargs) -> None:
        if not isinstance(cluster_state, LegacyClusterState):
            cluster_state = cluster_state.copy_as(LegacyClusterState)
        kwargs["fast_forward"] = False
        kwargs.setdefault("job_state", LegacyJobState())
        super().__init__(cluster_state, *args, **kwargs)
        self.manager = LegacyBloxManager(
            trace_jobs=self.jobs,
            round_duration=self.manager.round_duration,
            execution_model=self.execution_model,
            cluster_manager=self.manager.cluster_manager,
        )
