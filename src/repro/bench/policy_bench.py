"""The policy-layer benchmark: incremental policies vs. their pre-PR selves.

Runs a scheduling-policy x placement matrix over the seeded 256-GPU
Philly-style workload (:mod:`repro.bench.workload`).  Each cell simulates the
same trace twice:

* **baseline** -- the pre-refactor policy implementation
  (:mod:`repro.bench.legacy`: full re-sorts, Pollux's O(capacity x jobs)
  scan, Gavel's per-job type-set rebuild, Tiresias' impure comparator) on
  :class:`~repro.bench.legacy.LegacyPolicySimulator`, which reproduces the
  pre-refactor engine cost model (classic per-round light loops only, no
  steady-mode strides, no rate/view caching);
* **current** -- the incremental policy on the current
  :class:`~repro.simulator.engine.Simulator` with event-aware fast-forward.

Both runs must produce identical per-job completion times and round logs
(``schedule_parity``), so per-cell speedups are pure hot-path work, not
behaviour changes.  Wall times take the best of ``repeats`` runs to damp
scheduler noise; the parity verdict comes from the first pair.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.bench import workload
from repro.bench.legacy import (
    LegacyFifoScheduling,
    LegacyGavelScheduling,
    LegacyLasScheduling,
    LegacyPolicySimulator,
    LegacyPolluxScheduling,
    LegacySrtfScheduling,
    LegacyTiresiasScheduling,
)
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.placement.first_free import FirstFreePlacement
from repro.policies.scheduling import (
    FifoScheduling,
    GavelScheduling,
    LasScheduling,
    PolluxScheduling,
    SrtfScheduling,
    TiresiasScheduling,
)
from repro.simulator.engine import SimulationResult, Simulator

#: policy name -> (incremental factory, pre-refactor factory)
POLICY_FACTORIES = {
    "fifo": (FifoScheduling, LegacyFifoScheduling),
    "srtf": (SrtfScheduling, LegacySrtfScheduling),
    "las": (LasScheduling, LegacyLasScheduling),
    "tiresias": (TiresiasScheduling, LegacyTiresiasScheduling),
    "gavel": (GavelScheduling, LegacyGavelScheduling),
    "pollux": (PolluxScheduling, LegacyPolluxScheduling),
}

PLACEMENT_FACTORIES = {
    "consolidated": ConsolidatedPlacement,
    "first-free": FirstFreePlacement,
}

#: (policy, placement) cells of the full matrix: every policy against the
#: default placement of the paper's comparisons, plus a second placement for
#: one gang and one discretised policy to exercise the placement dimension.
FULL_MATRIX: Tuple[Tuple[str, str], ...] = (
    ("fifo", "consolidated"),
    ("srtf", "consolidated"),
    ("las", "consolidated"),
    ("tiresias", "consolidated"),
    ("gavel", "consolidated"),
    ("pollux", "consolidated"),
    ("fifo", "first-free"),
    ("tiresias", "first-free"),
)

#: CI configuration: one control cell plus the two headline elastic cells, so
#: a policy-layer regression (perf machinery or schedule change) fails CI.
SMOKE_MATRIX: Tuple[Tuple[str, str], ...] = (
    ("fifo", "consolidated"),
    ("tiresias", "consolidated"),
    ("pollux", "consolidated"),
)


def _run_cell_case(
    policy_factory, placement_factory, simulator_cls, smoke: bool
) -> Tuple[SimulationResult, float]:
    trace = workload.bench_trace(smoke=smoke)
    simulator = simulator_cls(
        cluster_state=workload.bench_cluster(smoke=smoke),
        jobs=trace.fresh_jobs(),
        scheduling_policy=policy_factory(),
        placement_policy=placement_factory(),
        round_duration=workload.ROUND_DURATION,
    )
    start = time.perf_counter()
    result = simulator.run()
    return result, time.perf_counter() - start


def _cell_parity(baseline: SimulationResult, current: SimulationResult) -> bool:
    base_completions = {j.job_id: j.completion_time for j in baseline.jobs}
    new_completions = {j.job_id: j.completion_time for j in current.jobs}
    return (
        base_completions == new_completions
        and baseline.round_log == current.round_log
        and baseline.rounds == current.rounds
    )


def run_policy_bench(
    smoke: bool = False,
    repeats: Optional[int] = None,
    matrix: Optional[Tuple[Tuple[str, str], ...]] = None,
) -> Dict[str, object]:
    """Run the policy x placement matrix; returns the per-cell report dict."""
    if matrix is None:
        matrix = SMOKE_MATRIX if smoke else FULL_MATRIX
    if repeats is None:
        repeats = 1 if smoke else 3

    cells: Dict[str, object] = {}
    all_parity = True
    for policy_name, placement_name in matrix:
        current_factory, legacy_factory = POLICY_FACTORIES[policy_name]
        placement_factory = PLACEMENT_FACTORIES[placement_name]

        current_walls: List[float] = []
        baseline_walls: List[float] = []
        current_result = baseline_result = None
        for _ in range(repeats):
            result, wall = _run_cell_case(
                current_factory, placement_factory, Simulator, smoke
            )
            if current_result is None:
                current_result = result
            current_walls.append(wall)
            result, wall = _run_cell_case(
                legacy_factory, placement_factory, LegacyPolicySimulator, smoke
            )
            if baseline_result is None:
                baseline_result = result
            baseline_walls.append(wall)

        parity = _cell_parity(baseline_result, current_result)
        all_parity = all_parity and parity
        wall_new = min(current_walls)
        wall_old = min(baseline_walls)
        rps_new = current_result.rounds / wall_new if wall_new > 0 else float("inf")
        rps_old = baseline_result.rounds / wall_old if wall_old > 0 else float("inf")
        cells[f"{policy_name}/{placement_name}"] = {
            "policy": policy_name,
            "placement": placement_name,
            "schedule_parity": parity,
            "rounds": current_result.rounds,
            "baseline_wall_time_s": round(wall_old, 4),
            "current_wall_time_s": round(wall_new, 4),
            "baseline_rounds_per_sec": round(rps_old, 1),
            "current_rounds_per_sec": round(rps_new, 1),
            "speedup_rounds_per_sec": round(rps_new / rps_old, 2) if rps_old else None,
            "finished_jobs": len(current_result.finished_jobs()),
            "avg_jct_s": round(current_result.avg_jct(), 2),
        }

    return {
        "matrix": [f"{p}/{pl}" for p, pl in matrix],
        "repeats": repeats,
        "all_schedule_parity": all_parity,
        "cells": cells,
    }
