"""The chaos benchmark: control-plane faults with recovery, parity-gated.

``python -m repro.bench --chaos`` exercises both halves of the robustness
subsystem (see ``docs/robustness.md``) and *gates* on the property that makes
it trustworthy: fault recovery is invisible in the schedule.

* **Federation leg** -- the 2-shard parallel federation run with a
  :class:`~repro.federation.parallel.SupervisorConfig` armed; a
  :class:`~repro.federation.parallel.WorkerKillPlan` SIGKILLs one worker
  mid-``advance`` (both before the broadcast and between broadcast and
  collect), the supervisor respawns it and replays from the last checkpoint,
  and the result must be **bit-identical** to the fault-free serial run.
  A degradation cell kills a worker with restarts exhausted
  (``on_unrecoverable="degrade"``) and checks job conservation: every job is
  either finished on a surviving shard or counted in ``lost_jobs``.
* **Runtime leg** -- the ``chaos`` scenario (node failures + spot waves)
  through the :class:`~repro.runtime.central_scheduler.CentralScheduler`
  with a seeded :class:`~repro.runtime.rpc.FaultPlan` dropping, delaying,
  duplicating and losing replies on every lease RPC.  With retries and
  idempotency tokens on, each seed must reproduce the fault-free schedule
  exactly, leak zero leases, and record nonzero retry/recovery counters
  (proof the faults actually fired).

Results are *merged* into the existing ``BENCH_federation.json`` and
``BENCH_runtime.json`` under a ``"chaos"`` key (read-modify-write), so the
chaos sections live next to the benchmarks they extend.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from repro.bench import workload
from repro.bench.federation_bench import _bench_factory, _shard_parity
from repro.bench.runtime_bench import _parity
from repro.federation.engine import FederationEngine, FederationResult
from repro.federation.parallel import (
    ParallelFederationEngine,
    SupervisorConfig,
    WorkerKillPlan,
)
from repro.federation.router import make_router
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.runtime.central_scheduler import CentralScheduler
from repro.runtime.rpc import FaultPlan, FaultSpec, RetryPolicy
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import SCENARIO_SEED
from repro.simulator.overheads import OverheadModel

#: The federation chaos shape: 2 shards x 2 workers (one shard per worker),
#: queue-delay routing -- the CI shape named in the issue.
CHAOS_SHARDS = 2
CHAOS_WORKERS = 2
CHAOS_ROUTER = "queue-delay"

#: Advance indices at which the kill plan SIGKILLs worker 0.  Chosen to land
#: both before the first checkpoint (pure replay-from-genesis) and well past
#: one (replay from a mid-run checkpoint).
KILL_POINTS_SMOKE: Tuple[int, ...] = (1, 5)
KILL_POINTS_FULL: Tuple[int, ...] = (3, 17)

#: RPC fault seeds of the runtime leg (the property-test seeds 0-4; smoke
#: trims to keep CI in seconds).
FAULT_SEEDS_SMOKE: Tuple[int, ...] = (0, 1, 2)
FAULT_SEEDS_FULL: Tuple[int, ...] = (0, 1, 2, 3, 4)

#: Per-call fault probabilities of the runtime leg.  With ~5% drop and ~5%
#: lost-reply per delivery and 8 attempts, the chance any call in a run
#: exhausts its retries is negligible (~1e-8 per call) -- exhaustion would
#: abort the run, which is itself a gate failure.
FAULT_SPEC = FaultSpec(
    drop_rate=0.05, lose_reply_rate=0.05, duplicate_rate=0.05, delay_rate=0.05
)
RETRY_POLICY = RetryPolicy(max_attempts=8)


# ----------------------------------------------------------------------
# Federation leg: kill-one-worker recovery parity + degradation
# ----------------------------------------------------------------------


def _supervisor(smoke: bool, **overrides) -> SupervisorConfig:
    base = dict(
        checkpoint_interval=4 if smoke else 8,
        backoff_base_s=0.01,
        backoff_max_s=0.1,
    )
    base.update(overrides)
    return SupervisorConfig(**base)


def _serial_reference(smoke: bool, total_nodes: int) -> FederationResult:
    trace = workload.bench_trace(smoke=smoke)
    factory = _bench_factory(total_nodes // CHAOS_SHARDS, True)
    return FederationEngine(
        factory.build_all(CHAOS_SHARDS),
        make_router(CHAOS_ROUTER),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    ).run()


def _supervised_run(
    smoke: bool,
    total_nodes: int,
    supervisor: SupervisorConfig,
    kill_plan: WorkerKillPlan,
) -> FederationResult:
    trace = workload.bench_trace(smoke=smoke)
    return ParallelFederationEngine(
        factory=_bench_factory(total_nodes // CHAOS_SHARDS, True),
        num_shards=CHAOS_SHARDS,
        router=make_router(CHAOS_ROUTER),
        jobs=trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
        workers=CHAOS_WORKERS,
        supervisor=supervisor,
        kill_plan=kill_plan,
    ).run()


def run_federation_chaos(smoke: bool = False) -> Dict[str, object]:
    """Kill-one-worker parity cells plus the degradation cell."""
    total_nodes = workload.SMOKE_NODES if smoke else workload.FULL_NODES
    num_jobs = workload.SMOKE_JOBS if smoke else workload.FULL_JOBS
    kill_points = KILL_POINTS_SMOKE if smoke else KILL_POINTS_FULL
    reference = _serial_reference(smoke, total_nodes)

    cells: Dict[str, object] = {}
    all_parity = True
    all_recovered = True
    for when in ("before", "after"):
        for kill_at in kill_points:
            result = _supervised_run(
                smoke,
                total_nodes,
                _supervisor(smoke),
                WorkerKillPlan(kills=((kill_at, 0),), when=when),
            )
            stats = result.fault_stats
            parity = _shard_parity(reference, result)
            all_parity = all_parity and parity
            all_recovered = all_recovered and stats.worker_restarts >= 1
            cells[f"kill-{when}/advance{kill_at}"] = {
                "kill_when": when,
                "kill_at_advance": kill_at,
                "schedule_parity": parity,
                "worker_restarts": stats.worker_restarts,
                "checkpoints": stats.checkpoints,
                "replayed_commands": stats.replayed_commands,
                "wall_time_s": round(result.wall_time_s, 4),
            }

    # Degradation: restarts exhausted immediately, the dead shard's
    # queued-but-unrouted jobs re-route to the survivor.
    degrade_at = kill_points[-1]
    degraded = _supervised_run(
        smoke,
        total_nodes,
        _supervisor(smoke, max_restarts=0, on_unrecoverable="degrade"),
        WorkerKillPlan(kills=((degrade_at, 1),), when="before"),
    )
    dstats = degraded.fault_stats
    finished = sum(len(shard.jobs) for shard in degraded.shard_results)
    conserved = finished + dstats.lost_jobs == num_jobs
    degrade_cell = {
        "kill_at_advance": degrade_at,
        "dead_shards": dstats.dead_shards,
        "rerouted_jobs": dstats.rerouted_jobs,
        "lost_jobs": dstats.lost_jobs,
        "finished_jobs": finished,
        "total_jobs": num_jobs,
        "jobs_conserved": conserved,
        "jobs_per_shard": degraded.jobs_per_shard(),
    }

    return {
        "shape": {
            "num_shards": CHAOS_SHARDS,
            "workers": CHAOS_WORKERS,
            "router": CHAOS_ROUTER,
            "total_nodes": total_nodes,
            "num_jobs": num_jobs,
            "checkpoint_interval": 4 if smoke else 8,
        },
        "cells": cells,
        "degrade": degrade_cell,
        "all_kill_parity": all_parity,
        "all_kills_recovered": all_recovered,
        "degrade_ok": conserved and dstats.dead_shards >= 1,
        "ok": all_parity and all_recovered and conserved and dstats.dead_shards >= 1,
    }


# ----------------------------------------------------------------------
# Runtime leg: lease protocol under seeded RPC faults
# ----------------------------------------------------------------------


def _deployment_run(compiled, fault_seed: Optional[int]):
    """Run the compiled scenario; returns ``(scheduler, result)``."""
    scheduler = CentralScheduler(
        cluster_state=compiled.build_cluster(),
        jobs=compiled.trace.fresh_jobs(),
        scheduling_policy=TiresiasScheduling(),
        round_duration=compiled.spec.round_duration,
        lease_protocol="optimistic",
        overhead_model=OverheadModel(),
        cluster_manager=compiled.make_cluster_manager(),
        tracked_job_ids=compiled.trace.tracked_ids(),
        fault_plan=None if fault_seed is None else FaultPlan(FAULT_SPEC, seed=fault_seed),
        retry_policy=None if fault_seed is None else RETRY_POLICY,
    )
    return scheduler, scheduler.run()


def run_runtime_chaos(smoke: bool = False, seed: int = SCENARIO_SEED) -> Dict[str, object]:
    """The ``chaos`` scenario under per-seed RPC fault plans, parity-gated."""
    compiled = get_scenario("chaos", smoke=smoke).compile(seed)
    fault_seeds = FAULT_SEEDS_SMOKE if smoke else FAULT_SEEDS_FULL
    ref_scheduler, ref_result = _deployment_run(compiled, fault_seed=None)

    cells: Dict[str, object] = {}
    all_parity = True
    all_zero_leak = True
    all_recovered = True
    for fault_seed in fault_seeds:
        faulty, faulty_result = _deployment_run(compiled, fault_seed=fault_seed)
        stats = faulty.fault_stats()
        leaked = faulty.leaked_leases()
        parity = _parity(ref_result, faulty_result)
        all_parity = all_parity and parity
        all_zero_leak = all_zero_leak and leaked == 0
        all_recovered = all_recovered and stats.any_recovery()
        cells[f"seed{fault_seed}"] = {
            "fault_seed": fault_seed,
            "schedule_parity": parity,
            "leaked_leases": leaked,
            "rpc_calls": stats.rpc_calls,
            "faults_injected": stats.faults_injected,
            "retries": stats.retries,
            "duplicates_suppressed": stats.duplicates_suppressed,
            "exhausted": stats.exhausted,
        }

    return {
        "scenario": "chaos",
        "scenario_seed": seed,
        "policy": "tiresias",
        "lease_protocol": "optimistic",
        "fault_spec": {
            "drop_rate": FAULT_SPEC.drop_rate,
            "lose_reply_rate": FAULT_SPEC.lose_reply_rate,
            "duplicate_rate": FAULT_SPEC.duplicate_rate,
            "delay_rate": FAULT_SPEC.delay_rate,
            "delay_ms": FAULT_SPEC.delay_ms,
        },
        "retry_policy": {
            "max_attempts": RETRY_POLICY.max_attempts,
            "backoff_base_ms": RETRY_POLICY.backoff_base_ms,
            "backoff_max_ms": RETRY_POLICY.backoff_max_ms,
        },
        "rounds": ref_result.rounds,
        "reference_leaked_leases": ref_scheduler.leaked_leases(),
        "cells": cells,
        "all_schedule_parity": all_parity,
        "zero_leaked_leases": all_zero_leak,
        "recovery_counters_nonzero": all_recovered,
        "ok": all_parity and all_zero_leak and all_recovered,
    }


# ----------------------------------------------------------------------
# Driver: merge the sections into the two existing bench reports
# ----------------------------------------------------------------------


def _merge_section(path: Optional[str], section: Dict[str, object]) -> None:
    """Read-modify-write ``path``, setting its ``"chaos"`` key."""
    if not path:
        return
    report: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path) as handle:
            report = json.load(handle)
    report["chaos"] = section
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def run_chaos_bench(
    smoke: bool = False,
    federation_out: Optional[str] = "BENCH_federation.json",
    runtime_out: Optional[str] = "BENCH_runtime.json",
    seed: int = SCENARIO_SEED,
    started_at: Optional[float] = None,
) -> Dict[str, object]:
    """Run both chaos legs and merge their sections into the bench reports."""
    from repro.telemetry.events import run_metadata

    federation = run_federation_chaos(smoke=smoke)
    runtime = run_runtime_chaos(smoke=smoke, seed=seed)
    metadata = run_metadata(
        seed, {"benchmark": "chaos", "smoke": smoke}, started_at
    )
    federation["metadata"] = metadata
    runtime["metadata"] = metadata
    _merge_section(federation_out, federation)
    _merge_section(runtime_out, runtime)
    return {
        "benchmark": "chaos",
        "smoke": smoke,
        "federation": federation,
        "runtime": runtime,
        "metadata": metadata,
        "ok": bool(federation["ok"]) and bool(runtime["ok"]),
    }
