"""The seeded benchmark workload: a 256-GPU Philly-style load scenario.

The benchmark mirrors the setup of the paper's load-sweep experiments
(Fig. 8-9): a homogeneous V100 cluster of 4-GPU nodes and a Poisson
Philly-like trace sized to keep the cluster busy (~70% offered load) with a
heavy-tailed duration distribution, so the simulation exercises both the
contended regime (long queues, many placement decisions per round) and the
drain regime (a few stragglers running alone for thousands of rounds -- the
regime event skipping targets).  Everything is seeded so the baseline and the
indexed run replay exactly the same scenario.
"""

from __future__ import annotations

from repro.cluster.builder import build_cluster
from repro.core.cluster_state import ClusterState
from repro.workloads.philly import generate_philly_trace
from repro.workloads.trace import Trace

BENCH_SEED = 20240301

#: Full benchmark: 64 nodes x 4 V100 = 256 GPUs.
FULL_NODES = 64
FULL_JOBS = 600
FULL_JOBS_PER_HOUR = 8.0

#: Smoke benchmark (CI): 8 nodes x 4 = 32 GPUs, a few dozen jobs.
SMOKE_NODES = 8
SMOKE_JOBS = 60
SMOKE_JOBS_PER_HOUR = 4.0

GPUS_PER_NODE = 4
ROUND_DURATION = 300.0

#: Long-horizon benchmark: 30 days of Philly arrivals (180 jobs at 0.25
#: jobs/hour = 720 h) at low offered load on a 64-GPU cluster with
#: fine-grained 60 s rounds.  Low load means long decision-free stretches
#: (single-job drains, idle gaps) and fine rounds mean many rounds per
#: stretch -- the regime where the event core's O(events) skipping separates
#: from the round loop's O(rounds) skipping.  The load is the honest knob
#: here: arrivals and completions (the full rounds both engines share) are
#: the irreducible cost, so the separation measures skipped-round execution
#: and nothing else.
LONG_NODES = 16
LONG_JOBS = 180
LONG_JOBS_PER_HOUR = 0.25
LONG_ROUND_DURATION = 60.0

#: Smoke variant of the long-horizon cell: 5 days of arrivals (30 jobs at
#: 0.25 jobs/hour = 120 h), same round granularity and load shape.
LONG_SMOKE_NODES = 8
LONG_SMOKE_JOBS = 30
LONG_SMOKE_JOBS_PER_HOUR = 0.25
LONG_SMOKE_ROUND_DURATION = 60.0


def bench_cluster(smoke: bool = False) -> ClusterState:
    """Build a fresh benchmark cluster (new state object per run)."""
    return build_cluster(
        num_nodes=SMOKE_NODES if smoke else FULL_NODES,
        gpus_per_node=GPUS_PER_NODE,
        gpu_type="v100",
        network_bw_gbps=10.0,
    )


def bench_trace(smoke: bool = False) -> Trace:
    """Generate the seeded Philly-style benchmark trace."""
    if smoke:
        return generate_philly_trace(
            num_jobs=SMOKE_JOBS, jobs_per_hour=SMOKE_JOBS_PER_HOUR, seed=BENCH_SEED
        )
    return generate_philly_trace(
        num_jobs=FULL_JOBS, jobs_per_hour=FULL_JOBS_PER_HOUR, seed=BENCH_SEED
    )


def long_horizon_cluster(smoke: bool = False) -> ClusterState:
    """Build a fresh long-horizon benchmark cluster."""
    return build_cluster(
        num_nodes=LONG_SMOKE_NODES if smoke else LONG_NODES,
        gpus_per_node=GPUS_PER_NODE,
        gpu_type="v100",
        network_bw_gbps=10.0,
    )


def long_horizon_trace(smoke: bool = False) -> Trace:
    """Generate the seeded 30-day (5-day smoke) low-load Philly trace."""
    if smoke:
        return generate_philly_trace(
            num_jobs=LONG_SMOKE_JOBS,
            jobs_per_hour=LONG_SMOKE_JOBS_PER_HOUR,
            seed=BENCH_SEED,
        )
    return generate_philly_trace(
        num_jobs=LONG_JOBS, jobs_per_hour=LONG_JOBS_PER_HOUR, seed=BENCH_SEED
    )


def long_horizon_round_duration(smoke: bool = False) -> float:
    """Round duration of the long-horizon cell."""
    return LONG_SMOKE_ROUND_DURATION if smoke else LONG_ROUND_DURATION
