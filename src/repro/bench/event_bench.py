"""The event-core benchmark: event-driven engine vs the round-loop oracle.

Three parity surfaces plus one performance cell, all driven by the
``engine="rounds"|"events"`` switch of :class:`~repro.simulator.engine.Simulator`
(identical everything else):

* **long_horizon** -- the 30-day low-load Philly cell
  (:mod:`repro.bench.workload` ``LONG_*``): both engines timed best-of-N with
  the round log disabled (the streaming configuration, where skipped segments
  are O(1) for the event core), parity checked on per-job completion times,
  round count and end time; then one untimed leg per engine with the full
  round log to prove the logs bit-identical too.  The full configuration
  gates ``speedup_rounds_per_sec >= EVENT_SPEEDUP_GATE``.
* **scenarios** -- every scenario in the registry (churn timelines,
  failure storms, spot markets...) under fifo and tiresias, event vs rounds
  bit-identical completions + round logs + round counts.
* **policies** -- the policy x placement matrix on the seeded bench workload,
  same bit-identity check per cell.

Every cell must hold schedule parity; the report records it and
:func:`run_event_bench` raises ``AssertionError`` otherwise, exactly like the
other bench gates.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.bench import workload
from repro.simulator.engine import SimulationResult, Simulator

#: The long-horizon cell must run at least this many times faster under the
#: event engine than under the round loop (full configuration only; the smoke
#: cell finishes in milliseconds, where timer noise dominates).
EVENT_SPEEDUP_GATE = 5.0
#: Timing repetitions per engine leg (best-of).
_TIMING_REPS = 3

_POLICY_NAMES = ("fifo", "srtf", "las", "tiresias")
_PLACEMENT_NAMES = ("consolidated", "first-free")


def _make_policy(name: str):
    if name == "fifo":
        from repro.policies.scheduling.fifo import FifoScheduling

        return FifoScheduling()
    if name == "srtf":
        from repro.policies.scheduling.srtf import SrtfScheduling

        return SrtfScheduling()
    if name == "las":
        from repro.policies.scheduling.las import LasScheduling

        return LasScheduling()
    if name == "tiresias":
        from repro.policies.scheduling.tiresias import TiresiasScheduling

        return TiresiasScheduling()
    raise ValueError(f"unknown policy {name!r}")


def _make_placement(name: str):
    if name == "consolidated":
        from repro.policies.placement.consolidated import ConsolidatedPlacement

        return ConsolidatedPlacement()
    if name == "first-free":
        from repro.policies.placement.first_free import FirstFreePlacement

        return FirstFreePlacement()
    raise ValueError(f"unknown placement {name!r}")


def schedule_parity(rounds: SimulationResult, events: SimulationResult) -> Dict[str, object]:
    """Bit-identity verdict between a rounds-engine and an events-engine run."""
    rounds_completions = {j.job_id: j.completion_time for j in rounds.jobs}
    events_completions = {j.job_id: j.completion_time for j in events.jobs}
    mismatched = sorted(
        job_id
        for job_id in set(rounds_completions) | set(events_completions)
        if rounds_completions.get(job_id) != events_completions.get(job_id)
    )
    return {
        "identical_completion_times": not mismatched,
        "identical_round_logs": rounds.round_log == events.round_log,
        "identical_round_count": rounds.rounds == events.rounds,
        "identical_end_time": rounds.end_time == events.end_time,
        "mismatched_job_ids": mismatched[:20],
    }


def _parity_ok(parity: Dict[str, object]) -> bool:
    return bool(
        parity["identical_completion_times"]
        and parity["identical_round_logs"]
        and parity["identical_round_count"]
        and parity["identical_end_time"]
    )


def _run_long_horizon(
    engine: str, smoke: bool, round_log_limit: Optional[int]
) -> Tuple[SimulationResult, float]:
    simulator = Simulator(
        cluster_state=workload.long_horizon_cluster(smoke=smoke),
        jobs=workload.long_horizon_trace(smoke=smoke).fresh_jobs(),
        scheduling_policy=_make_policy("fifo"),
        placement_policy=_make_placement("consolidated"),
        round_duration=workload.long_horizon_round_duration(smoke=smoke),
        engine=engine,
        round_log_limit=round_log_limit,
        max_rounds=2_000_000,
    )
    start = time.perf_counter()
    result = simulator.run()
    return result, time.perf_counter() - start


def _long_horizon_cell(smoke: bool) -> Dict[str, object]:
    best: Dict[str, float] = {}
    last: Dict[str, SimulationResult] = {}
    for _ in range(_TIMING_REPS):
        for engine in ("rounds", "events"):
            result, wall = _run_long_horizon(engine, smoke, round_log_limit=0)
            best[engine] = min(best.get(engine, wall), wall)
            last[engine] = result
    timed_parity = schedule_parity(last["rounds"], last["events"])

    # One untimed leg per engine with the full round log: the timed legs
    # disable it (that is the streaming configuration the cell measures), so
    # log bit-identity is proved separately at the same cell.
    logged_rounds, _ = _run_long_horizon("rounds", smoke, round_log_limit=None)
    logged_events, _ = _run_long_horizon("events", smoke, round_log_limit=None)
    log_parity = schedule_parity(logged_rounds, logged_events)

    rounds_count = last["rounds"].rounds
    rounds_rps = rounds_count / best["rounds"] if best["rounds"] > 0 else float("inf")
    events_rps = rounds_count / best["events"] if best["events"] > 0 else float("inf")
    speedup = events_rps / rounds_rps if rounds_rps > 0 else float("inf")
    return {
        "horizon_days": round(last["rounds"].end_time / 86400.0, 2),
        "rounds": rounds_count,
        "finished_jobs": len(last["rounds"].finished_jobs()),
        "rounds_engine_wall_s": round(best["rounds"], 4),
        "events_engine_wall_s": round(best["events"], 4),
        "rounds_engine_rounds_per_sec": round(rounds_rps, 1),
        "events_engine_rounds_per_sec": round(events_rps, 1),
        "speedup_rounds_per_sec": round(speedup, 2),
        "speedup_gate": EVENT_SPEEDUP_GATE,
        # The gate binds on the full configuration only: the smoke cell runs
        # in milliseconds, where timer noise dwarfs the real separation.
        "gated": not smoke,
        "speedup_ok": smoke or speedup >= EVENT_SPEEDUP_GATE,
        "schedule_parity": _parity_ok(timed_parity) and _parity_ok(log_parity),
        "parity": timed_parity,
        "round_log_parity": log_parity,
    }


def _scenario_cells(smoke: bool) -> Dict[str, object]:
    from repro.experiments.harness import PolicySpec, run_policy
    from repro.scenarios.registry import get_scenario, scenario_names
    from repro.scenarios.runner import (
        PLACEMENT_FACTORIES,
        POLICY_FACTORIES,
        SCENARIO_SEED,
    )

    del smoke  # Scenario cells always use the smoke-compiled variants: the
    # parity claim is per scenario mechanism (churn kinds), not per scale,
    # and the full variants would dominate the bench wall time.
    cells: Dict[str, object] = {}
    all_parity = True
    for name in scenario_names():
        scenario = get_scenario(name, smoke=True).compile(SCENARIO_SEED)
        for policy_name in ("fifo", "tiresias"):
            spec = PolicySpec(
                label=f"{name}/{policy_name}",
                scheduling=POLICY_FACTORIES[policy_name],
                placement=PLACEMENT_FACTORIES["consolidated"],
            )
            results = {}
            for engine in ("rounds", "events"):
                results[engine] = run_policy(
                    scenario.trace,
                    spec,
                    num_nodes=scenario.spec.cluster.num_nodes,
                    cluster=scenario.build_cluster(),
                    cluster_manager=scenario.make_cluster_manager(),
                    round_duration=scenario.spec.round_duration,
                    engine=engine,
                )
            parity = schedule_parity(results["rounds"], results["events"])
            ok = _parity_ok(parity)
            all_parity = all_parity and ok
            cells[f"{name}/{policy_name}"] = {
                "schedule_parity": ok,
                "rounds": results["rounds"].rounds,
                "cluster_events": len(scenario.events),
            }
    return {"all_schedule_parity": all_parity, "cells": cells}


def _policy_cells(smoke: bool) -> Dict[str, object]:
    cells: Dict[str, object] = {}
    all_parity = True
    for policy_name in _POLICY_NAMES:
        for placement_name in _PLACEMENT_NAMES:
            results = {}
            for engine in ("rounds", "events"):
                simulator = Simulator(
                    cluster_state=workload.bench_cluster(smoke=smoke),
                    jobs=workload.bench_trace(smoke=smoke).fresh_jobs(),
                    scheduling_policy=_make_policy(policy_name),
                    placement_policy=_make_placement(placement_name),
                    round_duration=workload.ROUND_DURATION,
                    engine=engine,
                )
                results[engine] = simulator.run()
            parity = schedule_parity(results["rounds"], results["events"])
            ok = _parity_ok(parity)
            all_parity = all_parity and ok
            cells[f"{policy_name}/{placement_name}"] = {
                "schedule_parity": ok,
                "rounds": results["rounds"].rounds,
            }
    return {"all_schedule_parity": all_parity, "cells": cells}


def run_event_bench(smoke: bool = False) -> Dict[str, object]:
    """Run the event-core bench; returns the ``event_core`` report section.

    Raises ``AssertionError`` when any parity surface diverges, or (full
    configuration) when the long-horizon speedup misses its gate.
    """
    long_horizon = _long_horizon_cell(smoke)
    scenarios = _scenario_cells(smoke)
    policies = _policy_cells(smoke)
    all_parity = bool(
        long_horizon["schedule_parity"]
        and scenarios["all_schedule_parity"]
        and policies["all_schedule_parity"]
    )
    report = {
        "scale": "smoke" if smoke else "full",
        "long_horizon": long_horizon,
        "scenarios": scenarios,
        "policies": policies,
        "all_schedule_parity": all_parity,
    }
    if not all_parity:
        failing: List[str] = []
        if not long_horizon["schedule_parity"]:
            failing.append(f"long_horizon: {long_horizon['parity']}")
        failing.extend(
            f"scenario {name}"
            for name, cell in scenarios["cells"].items()
            if not cell["schedule_parity"]
        )
        failing.extend(
            f"policy {name}"
            for name, cell in policies["cells"].items()
            if not cell["schedule_parity"]
        )
        raise AssertionError(
            "event engine diverged from the round-loop oracle: " + "; ".join(failing)
        )
    if not long_horizon["speedup_ok"]:
        raise AssertionError(
            f"long-horizon event-core speedup {long_horizon['speedup_rounds_per_sec']}x "
            f"missed the >= {EVENT_SPEEDUP_GATE}x gate"
        )
    return report
