"""The federation benchmark: router x shard-count matrix, parity-checked.

``python -m repro.bench --federation`` runs the seeded Philly-style benchmark
workload through every stock :mod:`repro.federation.router` at several shard
counts.  The *total* GPU capacity is held constant across shard counts (the
64-node cluster is split into 1, 2, 4 or 8 equal shards), so every cell
schedules the same offered load and the matrix isolates the effect of
horizontal sharding: per-round policy/placement cost shrinks with shard size
while the scheduling quality (makespan, JCT) pays for the loss of global
placement freedom -- the trade-off the routers are there to manage.

Every cell is simulated twice, with per-shard event-skipping fast-forward on
and with per-round stepping, and must produce bit-identical per-shard
completion times, round logs, round counts *and routing assignments*
(``schedule_parity``) -- routing reads shard state only at pause points, so
fast-forward remains a pure performance feature across the federation layer.
Each shard's ``ClusterState.check_invariants()`` is asserted after every run.

Results are written to ``BENCH_federation.json``.  The report fails (exit 1
in the CLI) unless every cell has schedule parity and at least two routers
show a multi-shard rounds/s gain over their own 1-shard cell.
"""

from __future__ import annotations

import json
import pickle
import platform
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench import workload
from repro.federation.engine import FederationEngine, FederationResult
from repro.federation.engine import build_uniform_shards
from repro.federation.router import make_router, router_names
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling

#: Shard counts of the matrix.  Every count must divide the node total and
#: leave each shard at least as large as the workload's biggest gang
#: (16 GPUs = 4 nodes), or routing would have no feasible shard.
FULL_TOTAL_NODES = 64
FULL_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: CI smoke: 16 nodes so a 4-way split still fits the largest gang.
SMOKE_TOTAL_NODES = 16
SMOKE_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class FederationCell:
    """One picklable cell of the matrix (shipped to sweep workers)."""

    router: str
    num_shards: int
    total_nodes: int
    smoke: bool


def _run_federation(cell: FederationCell, fast_forward: bool) -> FederationResult:
    trace = workload.bench_trace(smoke=cell.smoke)
    shards = build_uniform_shards(
        num_shards=cell.num_shards,
        nodes_per_shard=cell.total_nodes // cell.num_shards,
        scheduling_factory=FifoScheduling,
        placement_factory=ConsolidatedPlacement,
        gpus_per_node=workload.GPUS_PER_NODE,
        round_duration=workload.ROUND_DURATION,
        fast_forward=fast_forward,
    )
    engine = FederationEngine(
        shards,
        make_router(cell.router),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    )
    result = engine.run()
    for shard in shards:
        shard.cluster_state.check_invariants()
    return result


def _shard_parity(fastforward: FederationResult, stepping: FederationResult) -> bool:
    """Bit-identical per-shard schedules and identical routing decisions."""
    if fastforward.assignments != stepping.assignments:
        return False
    for ff_shard, step_shard in zip(fastforward.shard_results, stepping.shard_results):
        ff_completions = {j.job_id: j.completion_time for j in ff_shard.jobs}
        step_completions = {j.job_id: j.completion_time for j in step_shard.jobs}
        if ff_completions != step_completions:
            return False
        if ff_shard.round_log != step_shard.round_log:
            return False
        if ff_shard.rounds != step_shard.rounds:
            return False
    return True


def _execute_cell(cell: FederationCell) -> Tuple[str, Dict[str, object]]:
    """Run one cell (fast-forward + stepping) and reduce it to a JSON row."""
    fastforward = _run_federation(cell, fast_forward=True)
    stepping = _run_federation(cell, fast_forward=False)
    parity = _shard_parity(fastforward, stepping)
    ff_rps = (
        fastforward.total_rounds() / fastforward.wall_time_s
        if fastforward.wall_time_s > 0
        else float("inf")
    )
    step_rps = (
        stepping.total_rounds() / stepping.wall_time_s
        if stepping.wall_time_s > 0
        else float("inf")
    )
    summary = fastforward.summary()
    row = {
        "router": cell.router,
        "num_shards": cell.num_shards,
        "nodes_per_shard": cell.total_nodes // cell.num_shards,
        "schedule_parity": parity,
        "total_rounds": fastforward.total_rounds(),
        "jobs_per_shard": fastforward.jobs_per_shard(),
        "fastforward_wall_s": round(fastforward.wall_time_s, 4),
        "stepping_wall_s": round(stepping.wall_time_s, 4),
        "fastforward_rounds_per_sec": round(ff_rps, 1),
        "stepping_rounds_per_sec": round(step_rps, 1),
        "speedup_rounds_per_sec": round(ff_rps / step_rps, 2) if step_rps > 0 else None,
        "makespan_s": round(summary.pooled.makespan, 1),
        "avg_jct_s": round(summary.pooled.avg_jct, 1),
        "p99_jct_s": round(summary.pooled.p99_jct, 1),
        "finished_jobs": summary.pooled.count,
        "routing_imbalance": round(summary.routing_imbalance, 3),
        "capacity_weighted_utilization": round(summary.capacity_weighted_utilization, 4),
    }
    return f"{cell.router}/shards{cell.num_shards}", row


def run_federation_bench(
    smoke: bool = False,
    out_path: Optional[str] = "BENCH_federation.json",
    processes: Optional[int] = None,
) -> Dict[str, object]:
    """Run the router x shard-count matrix; returns the JSON report payload."""
    total_nodes = SMOKE_TOTAL_NODES if smoke else FULL_TOTAL_NODES
    shard_counts = SMOKE_SHARD_COUNTS if smoke else FULL_SHARD_COUNTS
    routers = router_names()
    cells = [
        FederationCell(
            router=router, num_shards=count, total_nodes=total_nodes, smoke=smoke
        )
        for router in routers
        for count in shard_counts
    ]

    # Cells are timed and *compared* (the multi-shard gain gate), so the
    # default is serial execution: concurrent cells contend for cores and
    # make cross-cell rounds/s comparisons -- and therefore the gate --
    # machine-load-dependent.  Parallelism is an explicit opt-in for quick
    # parity-only runs.
    if processes is None:
        processes = 1
    if processes > 1:
        try:
            for cell in cells:
                pickle.dumps(cell)
        except Exception as exc:  # pragma: no cover - cells are plain data
            warnings.warn(
                f"federation cells could not be shipped to workers ({exc!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            rows = [_execute_cell(cell) for cell in cells]
        else:
            with ProcessPoolExecutor(max_workers=processes) as executor:
                rows = list(executor.map(_execute_cell, cells))
    else:
        rows = [_execute_cell(cell) for cell in cells]

    cell_rows = dict(rows)
    all_parity = all(row["schedule_parity"] for row in cell_rows.values())

    # A router "shows a multi-shard gain" when its best multi-shard cell
    # beats its own 1-shard cell on fast-forward rounds/s.
    gain_routers: List[str] = []
    for router in routers:
        single = cell_rows[f"{router}/shards{shard_counts[0]}"]
        multi = [
            cell_rows[f"{router}/shards{count}"]
            for count in shard_counts
            if count > shard_counts[0]
        ]
        if not multi:
            continue
        best = max(row["fastforward_rounds_per_sec"] for row in multi)
        if best > single["fastforward_rounds_per_sec"]:
            gain_routers.append(router)

    scale = "smoke" if smoke else "full"
    total_gpus = total_nodes * workload.GPUS_PER_NODE
    report: Dict[str, object] = {
        "benchmark": f"federation-{scale}-{total_gpus}gpu-philly-fifo-consolidated",
        "config": {
            "scale": scale,
            "seed": workload.BENCH_SEED,
            "total_nodes": total_nodes,
            "gpus_per_node": workload.GPUS_PER_NODE,
            "total_gpus": total_gpus,
            "num_jobs": workload.SMOKE_JOBS if smoke else workload.FULL_JOBS,
            "jobs_per_hour": workload.SMOKE_JOBS_PER_HOUR
            if smoke
            else workload.FULL_JOBS_PER_HOUR,
            "round_duration_s": workload.ROUND_DURATION,
            "shard_counts": list(shard_counts),
            "routers": routers,
            "scheduling": "fifo",
            "placement": "consolidated",
            "python": platform.python_version(),
        },
        "matrix": sorted(cell_rows),
        "all_schedule_parity": all_parity,
        "multi_shard_gain_routers": gain_routers,
        "multi_shard_gain_ok": len(gain_routers) >= 2,
        "cells": cell_rows,
    }

    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report
