"""The federation benchmark: router x shard-count matrix, parity-checked.

``python -m repro.bench --federation`` runs the seeded Philly-style benchmark
workload through every stock :mod:`repro.federation.router` at several shard
counts.  The *total* GPU capacity is held constant across shard counts (the
64-node cluster is split into 1, 2, 4 or 8 equal shards), so every cell
schedules the same offered load and the matrix isolates the effect of
horizontal sharding: per-round policy/placement cost shrinks with shard size
while the scheduling quality (makespan, JCT) pays for the loss of global
placement freedom -- the trade-off the routers are there to manage.

Every cell is simulated twice, with per-shard event-skipping fast-forward on
and with per-round stepping, and must produce bit-identical per-shard
completion times, round logs, round counts *and routing assignments*
(``schedule_parity``) -- routing reads shard state only at pause points, so
fast-forward remains a pure performance feature across the federation layer.
Multi-shard cells are additionally executed on the multiprocess
:class:`~repro.federation.parallel.ParallelFederationEngine` and must match
the serial engine bit-for-bit (``parallel_parity``): worker processes are an
execution detail, never a semantic one.  Each shard's
``ClusterState.check_invariants()`` is asserted after every serial run.

A dedicated *scaling cell* (max shard count, a longer trace) measures the
serial-vs-parallel wall-clock speedup; the >= 3x gate it feeds is enforced
only on machines with >= 8 usable cores (the measurement is still recorded,
with the skip reason, elsewhere).  ``--stream N`` appends a 64-shard
streaming demonstration: N jobs consumed from a lazy arrival iterator with
in-worker result reduction, recording the parent's peak RSS.

Results are written to ``BENCH_federation.json``.  The report fails (exit 1
in the CLI) on any parity loss (fast-forward or parallel), if fewer than two
routers show a multi-shard rounds/s gain over their own 1-shard cell, or if
the speedup gate is enforced and missed.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench import workload
from repro.core.exceptions import ConfigurationError
from repro.federation.engine import (
    FederationEngine,
    FederationResult,
    UniformShardFactory,
)
from repro.federation.parallel import ParallelFederationEngine, default_worker_count
from repro.federation.router import make_router, router_names
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling
from repro.telemetry.events import run_metadata
from repro.workloads.philly import PhillyTraceGenerator

#: Shard counts of the matrix.  Every count must divide the node total and
#: leave each shard at least as large as the workload's biggest gang
#: (16 GPUs = 4 nodes), or routing would have no feasible shard.
FULL_TOTAL_NODES = 64
FULL_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: CI smoke: 16 nodes so a 4-way split still fits the largest gang.
SMOKE_TOTAL_NODES = 16
SMOKE_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4)

#: The matrix cells are too short (~0.5 s) to measure parallel speedup --
#: process startup would dominate -- so the scaling gate runs one dedicated
#: cell: max shard count, a denser and longer trace on the same cluster.
SCALING_JOBS = 2400
SCALING_JOBS_PER_HOUR = 12.0
SMOKE_SCALING_JOBS = 150
SMOKE_SCALING_JOBS_PER_HOUR = 6.0
SPEEDUP_GATE = 3.0
SPEEDUP_GATE_MIN_CORES = 8

#: Streaming demo shape: 64 shards x 4 nodes x 4 GPUs = 1024 GPUs, arrival
#: rate scaled 4x from the 256-GPU full benchmark to hold the offered load.
STREAM_SHARDS = 64
STREAM_NODES_PER_SHARD = 4
STREAM_JOBS_PER_HOUR = 32.0
STREAM_ROUTER = "queue-delay"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _bench_factory(cell_nodes_per_shard: int, fast_forward: bool) -> UniformShardFactory:
    return UniformShardFactory(
        nodes_per_shard=cell_nodes_per_shard,
        scheduling_factory=FifoScheduling,
        placement_factory=ConsolidatedPlacement,
        gpus_per_node=workload.GPUS_PER_NODE,
        round_duration=workload.ROUND_DURATION,
        fast_forward=fast_forward,
    )


@dataclass(frozen=True)
class FederationCell:
    """One picklable cell of the matrix (shipped to sweep workers)."""

    router: str
    num_shards: int
    total_nodes: int
    smoke: bool
    #: Worker processes for the parallel leg; 0 skips it (1-shard cells).
    workers: int = 0


def _run_federation(cell: FederationCell, fast_forward: bool) -> FederationResult:
    trace = workload.bench_trace(smoke=cell.smoke)
    factory = _bench_factory(cell.total_nodes // cell.num_shards, fast_forward)
    shards = factory.build_all(cell.num_shards)
    engine = FederationEngine(
        shards,
        make_router(cell.router),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    )
    result = engine.run()
    for shard in shards:
        shard.cluster_state.check_invariants()
    return result


def _run_parallel(cell: FederationCell) -> FederationResult:
    trace = workload.bench_trace(smoke=cell.smoke)
    engine = ParallelFederationEngine(
        factory=_bench_factory(cell.total_nodes // cell.num_shards, True),
        num_shards=cell.num_shards,
        router=make_router(cell.router),
        jobs=trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
        workers=cell.workers,
    )
    return engine.run()


def _shard_parity(left: FederationResult, right: FederationResult) -> bool:
    """Bit-identical per-shard schedules and identical routing decisions."""
    if left.assignments != right.assignments:
        return False
    for left_shard, right_shard in zip(left.shard_results, right.shard_results):
        left_completions = {j.job_id: j.completion_time for j in left_shard.jobs}
        right_completions = {j.job_id: j.completion_time for j in right_shard.jobs}
        if left_completions != right_completions:
            return False
        if left_shard.round_log != right_shard.round_log:
            return False
        if left_shard.rounds != right_shard.rounds:
            return False
    return True


def _execute_cell(cell: FederationCell) -> Tuple[str, Dict[str, object]]:
    """Run one cell (fast-forward + stepping + parallel) into a JSON row."""
    fastforward = _run_federation(cell, fast_forward=True)
    stepping = _run_federation(cell, fast_forward=False)
    parity = _shard_parity(fastforward, stepping)
    ff_rps = (
        fastforward.total_rounds() / fastforward.wall_time_s
        if fastforward.wall_time_s > 0
        else float("inf")
    )
    step_rps = (
        stepping.total_rounds() / stepping.wall_time_s
        if stepping.wall_time_s > 0
        else float("inf")
    )
    summary = fastforward.summary()
    row = {
        "router": cell.router,
        "num_shards": cell.num_shards,
        "nodes_per_shard": cell.total_nodes // cell.num_shards,
        "schedule_parity": parity,
        "total_rounds": fastforward.total_rounds(),
        "jobs_per_shard": fastforward.jobs_per_shard(),
        "fastforward_wall_s": round(fastforward.wall_time_s, 4),
        "stepping_wall_s": round(stepping.wall_time_s, 4),
        "fastforward_rounds_per_sec": round(ff_rps, 1),
        "stepping_rounds_per_sec": round(step_rps, 1),
        "speedup_rounds_per_sec": round(ff_rps / step_rps, 2) if step_rps > 0 else None,
        "routing_time_s": round(fastforward.routing_time_s, 4),
        "advance_time_s": round(fastforward.advance_time_s, 4),
        "shard_busy_time_s": [round(t, 4) for t in fastforward.shard_busy_time_s()],
        "makespan_s": round(summary.pooled.makespan, 1),
        "avg_jct_s": round(summary.pooled.avg_jct, 1),
        "p99_jct_s": round(summary.pooled.p99_jct, 1),
        "finished_jobs": summary.pooled.count,
        "routing_imbalance": round(summary.routing_imbalance, 3),
        "capacity_weighted_utilization": round(summary.capacity_weighted_utilization, 4),
    }
    if cell.workers >= 2 and cell.num_shards >= 2:
        parallel = _run_parallel(cell)
        row.update(
            {
                "parallel_parity": _shard_parity(fastforward, parallel),
                "parallel_workers": parallel.workers,
                "parallel_wall_s": round(parallel.wall_time_s, 4),
                "parallel_routing_time_s": round(parallel.routing_time_s, 4),
                "parallel_advance_time_s": round(parallel.advance_time_s, 4),
                "parallel_speedup_vs_serial": round(
                    fastforward.wall_time_s / parallel.wall_time_s, 2
                )
                if parallel.wall_time_s > 0
                else None,
            }
        )
    return f"{cell.router}/shards{cell.num_shards}", row


# ----------------------------------------------------------------------
# Dedicated scaling cell: the >= 3x wall-clock gate
# ----------------------------------------------------------------------


def _scaling_trace(smoke: bool):
    return PhillyTraceGenerator(
        num_jobs=SMOKE_SCALING_JOBS if smoke else SCALING_JOBS,
        jobs_per_hour=SMOKE_SCALING_JOBS_PER_HOUR if smoke else SCALING_JOBS_PER_HOUR,
        seed=workload.BENCH_SEED,
    ).generate()


def run_scaling_cell(
    smoke: bool = False,
    total_nodes: Optional[int] = None,
    num_shards: Optional[int] = None,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """Serial vs parallel wall clock at max shards on the long trace.

    Returns the JSON section with the measured speedup and whether the
    >= 3x gate is enforced on this machine (needs >= 8 usable cores and
    8 shards / 8 workers; otherwise the measurement is recorded and the gate
    skipped with a reason -- a 1-core container cannot physically speed up).
    """
    if total_nodes is None:
        total_nodes = SMOKE_TOTAL_NODES if smoke else FULL_TOTAL_NODES
    if num_shards is None:
        num_shards = (SMOKE_SHARD_COUNTS if smoke else FULL_SHARD_COUNTS)[-1]
    if workers is None:
        workers = num_shards
    trace = _scaling_trace(smoke)
    factory = _bench_factory(total_nodes // num_shards, True)
    router_name = "queue-delay"
    serial = FederationEngine(
        factory.build_all(num_shards),
        make_router(router_name),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    ).run()
    parallel = ParallelFederationEngine(
        factory=factory,
        num_shards=num_shards,
        router=make_router(router_name),
        jobs=trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
        workers=workers,
    ).run()
    parity = _shard_parity(serial, parallel)
    speedup = (
        serial.wall_time_s / parallel.wall_time_s if parallel.wall_time_s > 0 else 0.0
    )
    cores = _usable_cores()
    enforced = (
        not smoke
        and cores >= SPEEDUP_GATE_MIN_CORES
        and num_shards >= SPEEDUP_GATE_MIN_CORES
        and parallel.workers >= SPEEDUP_GATE_MIN_CORES
    )
    if enforced:
        reason = None
    elif smoke:
        reason = "smoke run"
    elif cores < SPEEDUP_GATE_MIN_CORES:
        reason = f"usable cores {cores} < {SPEEDUP_GATE_MIN_CORES}"
    else:
        reason = (
            f"shards/workers {num_shards}/{parallel.workers} < "
            f"{SPEEDUP_GATE_MIN_CORES}"
        )
    return {
        "router": router_name,
        "num_shards": num_shards,
        "workers": parallel.workers,
        "num_jobs": len(trace.jobs),
        "usable_cores": cores,
        "parallel_parity": parity,
        "serial_wall_s": round(serial.wall_time_s, 4),
        "parallel_wall_s": round(parallel.wall_time_s, 4),
        "serial_routing_time_s": round(serial.routing_time_s, 4),
        "serial_advance_time_s": round(serial.advance_time_s, 4),
        "parallel_routing_time_s": round(parallel.routing_time_s, 4),
        "parallel_advance_time_s": round(parallel.advance_time_s, 4),
        "shard_busy_time_s": [round(t, 4) for t in serial.shard_busy_time_s()],
        "measured_speedup": round(speedup, 2),
        "speedup_gate": SPEEDUP_GATE,
        "gate_enforced": enforced,
        "gate_skip_reason": reason,
        "speedup_ok": (speedup >= SPEEDUP_GATE) if enforced else True,
    }


# ----------------------------------------------------------------------
# Streaming demonstration: 64 shards, lazy arrivals, bounded parent memory
# ----------------------------------------------------------------------


def run_stream_demo(
    num_jobs: int,
    workers: Optional[int] = None,
    num_shards: int = STREAM_SHARDS,
) -> Dict[str, object]:
    """Feed ``num_jobs`` lazily through a ``num_shards``-shard parallel run.

    The arrival stream is a generator (``PhillyTraceGenerator.iter_jobs``),
    assignment tracking is off, and workers reduce their shard results to
    statistics before replying -- the parent never holds the trace or a shard
    result, which ``peak_rss_mib`` in the returned section substantiates.
    """
    if num_jobs < 1:
        raise ConfigurationError(f"--stream needs >= 1 jobs, got {num_jobs}")
    if workers is None:
        workers = max(2, min(default_worker_count(num_shards), 8))
    generator = PhillyTraceGenerator(
        num_jobs=num_jobs,
        jobs_per_hour=STREAM_JOBS_PER_HOUR,
        seed=workload.BENCH_SEED,
    )
    engine = ParallelFederationEngine(
        factory=_bench_factory(STREAM_NODES_PER_SHARD, True),
        num_shards=num_shards,
        router=make_router(STREAM_ROUTER),
        jobs=generator.iter_jobs(),
        workers=workers,
    )
    result = engine.run_stream()
    section = result.as_dict()
    section["jobs_per_hour"] = STREAM_JOBS_PER_HOUR
    section["nodes_per_shard"] = STREAM_NODES_PER_SHARD
    section["all_jobs_finished"] = result.finished_jobs() == num_jobs
    return section


# ----------------------------------------------------------------------
# The matrix driver
# ----------------------------------------------------------------------


def run_federation_bench(
    smoke: bool = False,
    out_path: Optional[str] = "BENCH_federation.json",
    processes: Optional[int] = None,
    shard_counts: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    routers: Optional[Sequence[str]] = None,
    stream_jobs: Optional[int] = None,
    started_at: Optional[float] = None,
) -> Dict[str, object]:
    """Run the router x shard-count matrix; returns the JSON report payload.

    ``shard_counts``, ``workers`` and ``routers`` override the hard-coded
    matrix so the scaling cells are reproducible at other machine sizes;
    ``stream_jobs`` appends the 64-shard streaming demonstration.
    ``started_at`` is the caller's wall-clock stamp for the report metadata.
    """
    total_nodes = SMOKE_TOTAL_NODES if smoke else FULL_TOTAL_NODES
    if shard_counts is None:
        shard_counts = SMOKE_SHARD_COUNTS if smoke else FULL_SHARD_COUNTS
    shard_counts = tuple(shard_counts)
    biggest_gang_nodes = 16 // workload.GPUS_PER_NODE
    for count in shard_counts:
        if count < 1 or total_nodes % count != 0:
            raise ConfigurationError(
                f"shard count {count} does not divide {total_nodes} nodes"
            )
        if total_nodes // count < biggest_gang_nodes:
            raise ConfigurationError(
                f"shard count {count} leaves {total_nodes // count} nodes per "
                f"shard, below the workload's largest gang "
                f"({biggest_gang_nodes} nodes)"
            )
    if routers is None:
        routers = router_names()
    else:
        routers = list(routers)
        for name in routers:
            make_router(name)  # validate early, before minutes of cells
    # Parallel legs always run with >= 2 workers even on small machines:
    # parity is core-count-independent, only the speedup is not (that is the
    # scaling cell's job).
    cell_workers = (
        max(2, workers)
        if workers is not None
        else max(2, min(default_worker_count(max(shard_counts)), 8))
    )
    cells = [
        FederationCell(
            router=router,
            num_shards=count,
            total_nodes=total_nodes,
            smoke=smoke,
            workers=min(cell_workers, count) if count >= 2 else 0,
        )
        for router in routers
        for count in shard_counts
    ]

    # Cells are timed and *compared* (the multi-shard gain gate), so the
    # default is serial execution: concurrent cells contend for cores and
    # make cross-cell rounds/s comparisons -- and therefore the gate --
    # machine-load-dependent.  Parallelism is an explicit opt-in for quick
    # parity-only runs.
    if processes is None:
        processes = 1
    if processes > 1:
        try:
            for cell in cells:
                pickle.dumps(cell)
        except Exception as exc:  # pragma: no cover - cells are plain data
            warnings.warn(
                f"federation cells could not be shipped to workers ({exc!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            rows = [_execute_cell(cell) for cell in cells]
        else:
            with ProcessPoolExecutor(max_workers=processes) as executor:
                rows = list(executor.map(_execute_cell, cells))
    else:
        rows = [_execute_cell(cell) for cell in cells]

    cell_rows = dict(rows)
    all_parity = all(row["schedule_parity"] for row in cell_rows.values())
    parallel_rows = [row for row in cell_rows.values() if "parallel_parity" in row]
    all_parallel_parity = all(row["parallel_parity"] for row in parallel_rows)

    # A router "shows a multi-shard gain" when its best multi-shard cell
    # beats its own 1-shard cell on fast-forward rounds/s.
    gain_routers: List[str] = []
    for router in routers:
        single_key = f"{router}/shards{shard_counts[0]}"
        if single_key not in cell_rows:
            continue
        single = cell_rows[single_key]
        multi = [
            cell_rows[f"{router}/shards{count}"]
            for count in shard_counts
            if count > shard_counts[0]
        ]
        if not multi:
            continue
        best = max(row["fastforward_rounds_per_sec"] for row in multi)
        if best > single["fastforward_rounds_per_sec"]:
            gain_routers.append(router)
    gain_possible = len(shard_counts) > 1 and shard_counts[0] == 1

    scaling = run_scaling_cell(smoke=smoke, total_nodes=total_nodes)

    scale = "smoke" if smoke else "full"
    total_gpus = total_nodes * workload.GPUS_PER_NODE
    report: Dict[str, object] = {
        "benchmark": f"federation-{scale}-{total_gpus}gpu-philly-fifo-consolidated",
        "config": {
            "scale": scale,
            "seed": workload.BENCH_SEED,
            "total_nodes": total_nodes,
            "gpus_per_node": workload.GPUS_PER_NODE,
            "total_gpus": total_gpus,
            "num_jobs": workload.SMOKE_JOBS if smoke else workload.FULL_JOBS,
            "jobs_per_hour": workload.SMOKE_JOBS_PER_HOUR
            if smoke
            else workload.FULL_JOBS_PER_HOUR,
            "round_duration_s": workload.ROUND_DURATION,
            "shard_counts": list(shard_counts),
            "routers": list(routers),
            "parallel_workers": cell_workers,
            "usable_cores": _usable_cores(),
            "scheduling": "fifo",
            "placement": "consolidated",
            "python": platform.python_version(),
        },
        "matrix": sorted(cell_rows),
        "all_schedule_parity": all_parity,
        "all_parallel_parity": all_parallel_parity,
        "parallel_cells": len(parallel_rows),
        "multi_shard_gain_routers": gain_routers,
        "multi_shard_gain_ok": (len(gain_routers) >= 2) if gain_possible else True,
        "scaling": scaling,
        "cells": cell_rows,
    }
    report["metadata"] = run_metadata(
        workload.BENCH_SEED, report["config"], started_at
    )
    if stream_jobs is not None:
        report["stream_demo"] = run_stream_demo(stream_jobs)

    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report
