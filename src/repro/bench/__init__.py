"""Performance benchmarks for the scheduler core.

``python -m repro.bench`` runs the core benchmark: one seeded 256-GPU
Philly-style workload simulated twice -- once on the pre-refactor ("legacy")
code paths (full-scan state queries, no event skipping) and once on the
indexed, event-skipping core -- and writes ``BENCH_core.json`` with rounds/sec
and end-to-end wall time for both, plus a schedule-parity verdict proving the
two runs made identical scheduling decisions.  The JSON is committed so the
perf trajectory is measurable PR over PR.
"""

from repro.bench.core_bench import run_core_bench

__all__ = ["run_core_bench"]
