"""Performance benchmarks for the scheduler core and policy layer.

``python -m repro.bench`` runs two benchmarks over the seeded 256-GPU
Philly-style workload and writes ``BENCH_core.json``:

* the **core** benchmark: the workload simulated on the pre-refactor
  ("legacy") state layer (full-scan queries, no event skipping) and on the
  indexed, event-skipping core;
* the **policy matrix**: each scheduling policy (fifo, srtf, las, tiresias,
  gavel, pollux) x placement cell simulated with its pre-refactor
  implementation (on the pre-refactor engine cost model) and with the current
  incremental implementation.

Every comparison carries a schedule-parity verdict proving the paired runs
made identical scheduling decisions, so the reported speedups are pure
hot-path work.  The JSON is committed so the perf trajectory is measurable PR
over PR.

``python -m repro.bench --runtime`` instead runs the **runtime** benchmark
(``BENCH_runtime.json``): every registry scenario through the deployment
path (CentralScheduler, fast-forward on and off) and plain simulation with
identical deterministic overheads -- schedule-parity checked -- plus the
Fig. 19 lease-scaling sweep comparing central vs optimistic renewal.

``python -m repro.bench --chaos`` runs the **chaos** benchmark: kill-one-
worker recovery parity for the supervised parallel federation and the
``chaos`` scenario under seeded RPC fault injection, merging a ``"chaos"``
section into ``BENCH_federation.json`` and ``BENCH_runtime.json``.
"""

from repro.bench.chaos_bench import run_chaos_bench
from repro.bench.core_bench import run_core_bench
from repro.bench.policy_bench import run_policy_bench
from repro.bench.runtime_bench import run_runtime_bench

__all__ = [
    "run_chaos_bench",
    "run_core_bench",
    "run_policy_bench",
    "run_runtime_bench",
]
