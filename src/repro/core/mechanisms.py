"""Simulation-mode job launch and preemption mechanisms.

In a real deployment the launch mechanism shells out to the WorkerManager on
each node and the preemption mechanism revokes leases so jobs checkpoint at the
next iteration boundary (see :mod:`repro.runtime`).  In simulation these two
abstractions only need to keep the shared state consistent and charge the
corresponding overheads; as the paper notes, this is exactly the pair of
modules that differs between simulation and cluster runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.abstractions import JobLauncher, PreemptionMechanism
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import AllocationError
from repro.core.job import Job, JobStatus
from repro.simulator.overheads import OverheadModel


class SimulatedLauncher(JobLauncher):
    """Assigns GPUs, reserves auxiliary resources and charges launch overheads."""

    name = "simulated-launch"

    def __init__(self, overheads: Optional[OverheadModel] = None) -> None:
        self.overheads = overheads if overheads is not None else OverheadModel()

    def launch(
        self,
        job: Job,
        gpu_ids: Sequence[int],
        cluster_state: ClusterState,
        current_time: float,
    ) -> None:
        if not gpu_ids:
            raise AllocationError(f"cannot launch job {job.job_id} with an empty allocation")
        cluster_state.assign(job.job_id, gpu_ids)
        self._reserve_aux_resources(job, cluster_state)
        job.allocated_gpus = sorted(gpu_ids)
        job.status = JobStatus.RUNNING
        job.pending_overhead += self.overheads.launch_overhead(job)
        job.num_launches += 1
        if job.first_schedule_time is None:
            job.first_schedule_time = current_time

    def _reserve_aux_resources(self, job: Job, cluster_state: ClusterState) -> None:
        """Reserve CPU cores and host memory alongside the GPUs.

        Resource-sensitive placement (Synergy) records the per-GPU CPU share it
        wants for the job in ``job.metrics["cpu_alloc_per_gpu"]``; other
        policies leave it unset, in which case the job gets its full demand and
        no throughput throttling.  The resulting CPU throughput factor is
        published back into the job's metrics for the execution model.
        """
        cpu_per_gpu = job.metrics.get("cpu_alloc_per_gpu")
        mem_per_gpu = job.metrics.get("mem_alloc_per_gpu")
        throttle = cpu_per_gpu is not None
        if cpu_per_gpu is None:
            cpu_per_gpu = job.cpu_demand_per_gpu
        if mem_per_gpu is None:
            mem_per_gpu = job.mem_demand_per_gpu

        gpus = cluster_state.gpus_for_job(job.job_id)
        total_cpu_granted = 0.0
        per_node_counts = {}
        for gpu in gpus:
            per_node_counts[gpu.node_id] = per_node_counts.get(gpu.node_id, 0) + 1
        for node_id, count in per_node_counts.items():
            node = cluster_state.node(node_id)
            cpu_wanted = float(cpu_per_gpu) * count
            mem_wanted = float(mem_per_gpu) * count
            cpu_granted = min(cpu_wanted, max(0.0, node.cpu_free))
            mem_granted = min(mem_wanted, max(0.0, node.mem_free))
            # Reserve through the cluster so the job->aux-node index stays in
            # sync and release_job can free it without scanning every node.
            cluster_state.reserve_aux(job.job_id, node_id, cpu_granted, mem_granted)
            total_cpu_granted += cpu_granted

        if throttle:
            demand = job.cpu_demand_per_gpu * max(1, len(gpus))
            share = 1.0 if demand <= 0 else min(1.0, total_cpu_granted / demand)
            # CPU starvation slows the input pipeline: model a linear slowdown
            # bounded below so a job never fully stalls on CPU alone.
            job.metrics["cpu_throughput_factor"] = 0.4 + 0.6 * share
        else:
            job.metrics["cpu_throughput_factor"] = 1.0


class SimulatedPreemption(PreemptionMechanism):
    """Checkpoints a job (charging overhead) and releases its GPUs."""

    name = "simulated-preemption"

    def __init__(self, overheads: Optional[OverheadModel] = None) -> None:
        self.overheads = overheads if overheads is not None else OverheadModel()

    def preempt(self, job: Job, cluster_state: ClusterState, current_time: float) -> None:
        cluster_state.release_job(job.job_id)
        job.allocated_gpus = []
        if job.status == JobStatus.RUNNING:
            job.status = JobStatus.PREEMPTED
            job.num_preemptions += 1
            # The checkpoint save plus the restore on the next launch are both
            # paid when the job next runs.
            job.pending_overhead += self.overheads.preemption_overhead(job)
        job.metrics.pop("cpu_throughput_factor", None)
