"""Exception hierarchy shared across the toolkit.

Every error raised by the toolkit derives from :class:`BloxError`, so callers can
catch a single base class at the boundary of their own code.
"""


class BloxError(Exception):
    """Base class for all errors raised by the repro toolkit."""


class ConfigurationError(BloxError):
    """A component was constructed or composed with invalid parameters."""


class UnknownJobError(BloxError, KeyError):
    """A job id was looked up that is not tracked by :class:`~repro.core.job_state.JobState`."""

    def __init__(self, job_id):
        super().__init__(f"unknown job id: {job_id!r}")
        self.job_id = job_id


class UnknownNodeError(BloxError, KeyError):
    """A node id was looked up that is not part of the cluster."""

    def __init__(self, node_id):
        super().__init__(f"unknown node id: {node_id!r}")
        self.node_id = node_id


class AllocationError(BloxError):
    """A placement decision is inconsistent with the cluster state.

    Raised for example when a placement policy assigns a GPU that is already
    assigned to another job, or assigns a GPU that does not exist.
    """


class LeaseError(BloxError):
    """The lease protocol between scheduler and workers was violated."""


class RpcFaultError(BloxError):
    """An RPC failed permanently: every delivery attempt was consumed by
    injected faults (or retries were disabled).  Only raised under a
    :class:`~repro.runtime.rpc.FaultPlan`; fault-free channels never fail."""


class TraceFormatError(ConfigurationError, ValueError):
    """A workload trace file or record could not be parsed.

    A malformed trace is a configuration problem (the experiment was composed
    with bad inputs), so this derives from :class:`ConfigurationError`;
    ``ValueError`` is kept in the bases for callers that catch parse errors
    generically.
    """


class SimulationError(BloxError):
    """The simulation engine reached an inconsistent state."""
