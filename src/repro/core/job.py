"""The :class:`Job` record: the unit of work scheduled by every policy.

A ``Job`` combines the static description found in a workload trace (arrival
time, requested GPUs, model profile) with the dynamic state maintained by the
scheduler across rounds (attained service, work completed, current allocation).
Blox keeps all of this in a dictionary-style ``JobState``; we keep the per-job
fields on a dataclass for readability and let
:class:`~repro.core.job_state.JobState` own the collection.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.exceptions import ConfigurationError


class JobStatus(enum.Enum):
    """Lifecycle of a job inside the scheduler.

    The transitions are::

        SUBMITTED -> WAITING_ADMISSION -> RUNNABLE -> RUNNING <-> PREEMPTED
                                                        |
                                                        v
                                                    COMPLETED / FAILED / TERMINATED
    """

    SUBMITTED = "submitted"
    WAITING_ADMISSION = "waiting_admission"
    RUNNABLE = "runnable"
    RUNNING = "running"
    PREEMPTED = "preempted"
    COMPLETED = "completed"
    TERMINATED = "terminated"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        """Whether the job will never run again."""
        return self in (JobStatus.COMPLETED, JobStatus.TERMINATED, JobStatus.FAILED)

    @property
    def is_active(self) -> bool:
        """Whether the job is admitted and still has work to do."""
        return self in (JobStatus.RUNNABLE, JobStatus.RUNNING, JobStatus.PREEMPTED)


_job_counter = itertools.count()


def _next_job_id() -> int:
    return next(_job_counter)


class _StatusField:
    """Data descriptor routing ``job.status`` writes through the owning registry.

    :class:`~repro.core.job_state.JobState` keeps status-indexed job sets; for
    those indexes to stay correct *every* status write -- whether it goes
    through ``JobState.set_status`` or assigns ``job.status`` directly (as the
    launch/preemption mechanisms and the execution model do) -- must notify the
    registry.  The descriptor stores the raw value in ``job.__dict__`` and
    calls back into the registry recorded by ``JobState.track``.
    """

    def __set_name__(self, owner, name) -> None:
        self._attr = "_" + name

    def __get__(self, obj, objtype=None):
        if obj is None:
            # Dataclasses read the class attribute to obtain the __init__
            # default for the field.
            return JobStatus.SUBMITTED
        return obj.__dict__[self._attr]

    def __set__(self, obj, value) -> None:
        old = obj.__dict__.get(self._attr)
        obj.__dict__[self._attr] = value
        registry = obj.__dict__.get("_registry")
        if registry is not None and old is not value:
            registry._reindex_status(obj, old, value)


class _ProgressField:
    """Data descriptor routing progress writes through the owning registry.

    Scheduling policies keep ordered priority structures keyed on attained
    service / remaining work (see
    :class:`~repro.policies.scheduling.priority_index.RunnablePriorityIndex`).
    For those structures to stay correct, every write to ``attained_service``
    and ``work_done`` -- the execution model updates both once per running job
    per round -- notifies the registry recorded by ``JobState.track``, which
    forwards to its observers.  Untracked jobs pay only a dict store.
    """

    def __init__(self, default: float = 0.0) -> None:
        self._default = default

    def __set_name__(self, owner, name) -> None:
        self._name = name
        self._attr = "_" + name

    def __get__(self, obj, objtype=None):
        if obj is None:
            # Dataclasses read the class attribute to obtain the __init__
            # default for the field.
            return self._default
        return obj.__dict__[self._attr]

    def __set__(self, obj, value) -> None:
        state = obj.__dict__
        old = state.get(self._attr)
        state[self._attr] = value
        registry = state.get("_registry")
        if (
            registry is not None
            and registry._progress_observers
            and old is not None
            and old != value
        ):
            registry._notify_progress(obj, self._name, old, value)


@dataclass
class ScalingProfile:
    """How a job's throughput scales with the number of allocated GPUs.

    The throughput of a data-parallel DNN training job scales sub-linearly with
    the number of workers because of communication.  We model the speedup of
    running on ``g`` GPUs relative to a single GPU with the classic
    efficiency-decay form::

        speedup(g) = g / (1 + alpha * (g - 1))

    where ``alpha`` in ``[0, 1]`` captures the communication overhead per extra
    worker (``alpha = 0`` is perfect linear scaling).  ``max_useful_gpus`` caps
    the number of GPUs beyond which adding workers yields no further speedup;
    elastic policies such as Pollux and Optimus use it to bound allocations.
    """

    alpha: float = 0.05
    max_useful_gpus: int = 16

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError(f"scaling alpha must be in [0, 1], got {self.alpha}")
        if self.max_useful_gpus < 1:
            raise ConfigurationError(
                f"max_useful_gpus must be >= 1, got {self.max_useful_gpus}"
            )

    def speedup(self, num_gpus: int) -> float:
        """Return the speedup of ``num_gpus`` GPUs relative to one GPU."""
        if num_gpus <= 0:
            return 0.0
        effective = min(num_gpus, self.max_useful_gpus)
        return effective / (1.0 + self.alpha * (effective - 1))

    def marginal_speedup(self, num_gpus: int) -> float:
        """Speedup gained by going from ``num_gpus`` to ``num_gpus + 1`` GPUs."""
        return self.speedup(num_gpus + 1) - self.speedup(num_gpus)


@dataclass
class Job:
    """A DL training job as seen by the scheduler.

    Parameters mirror the information available in the traces used by the Blox
    paper: arrival time, requested GPU count and isolated run time, plus the
    profile data (per-iteration time, scaling behaviour, placement sensitivity,
    resource demands, loss curve) associated with the model the job trains.
    """

    # --- static description -------------------------------------------------
    arrival_time: float
    num_gpus: int
    duration: float
    job_id: int = field(default_factory=_next_job_id)
    model_name: str = "generic"
    gpu_type: str = "v100"
    iteration_time: float = 1.0
    scaling: ScalingProfile = field(default_factory=ScalingProfile)
    placement_sensitive: bool = False
    skew: float = 0.0
    comm_intensity: float = 0.1
    cpu_demand_per_gpu: float = 3.0
    mem_demand_per_gpu: float = 16.0
    convergence_fraction: float = 1.0
    loss_threshold: float = 0.0
    batch_size: int = 32
    max_batch_scale: int = 8
    user: str = "default"
    metadata: Dict[str, object] = field(default_factory=dict)

    # --- dynamic state ------------------------------------------------------
    status: JobStatus = _StatusField()
    admitted_time: Optional[float] = None
    first_schedule_time: Optional[float] = None
    completion_time: Optional[float] = None
    attained_service: float = _ProgressField(0.0)
    work_done: float = _ProgressField(0.0)
    allocated_gpus: List[int] = field(default_factory=list)
    num_preemptions: int = 0
    num_launches: int = 0
    pending_overhead: float = 0.0
    metrics: Dict[str, object] = field(default_factory=dict)
    per_gpu_throughput: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError(f"job {self.job_id} requests {self.num_gpus} GPUs")
        if self.duration <= 0:
            raise ConfigurationError(f"job {self.job_id} has non-positive duration")
        if self.iteration_time <= 0:
            raise ConfigurationError(f"job {self.job_id} has non-positive iteration time")
        if not 0.0 < self.convergence_fraction <= 1.0:
            raise ConfigurationError(
                f"convergence_fraction must be in (0, 1], got {self.convergence_fraction}"
            )

    # --- pickling ---------------------------------------------------------

    def __getstate__(self):
        """Pickle support (federation workers ship jobs across processes).

        ``_registry`` is the backref to the owning
        :class:`~repro.core.job_state.JobState` installed by ``track``; it is
        runtime wiring, and keeping it would drag the entire registry (and
        every other job in it) into every pickled job.  It is dropped here and
        restored by ``JobState.__setstate__`` on the registry side, so a job
        pickled *inside* its registry round-trips fully bound while a job
        pickled alone arrives unbound (track it to re-bind).
        """
        state = self.__dict__.copy()
        state.pop("_registry", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    # --- derived quantities ---------------------------------------------

    @property
    def total_iterations(self) -> float:
        """Number of iterations the user asked for (epoch-based termination)."""
        return self.duration / self.iteration_time

    @property
    def total_work(self) -> float:
        """Total GPU-normalised work in seconds on the requested allocation."""
        return self.duration

    @property
    def remaining_work(self) -> float:
        """Seconds of work left assuming the requested allocation."""
        return max(0.0, self.duration - self.work_done)

    @property
    def progress_fraction(self) -> float:
        """Fraction of the requested work already completed, in ``[0, 1]``."""
        if self.duration <= 0:
            return 1.0
        return min(1.0, self.work_done / self.duration)

    @property
    def is_running(self) -> bool:
        return self.status == JobStatus.RUNNING

    @property
    def is_finished(self) -> bool:
        return self.status.is_terminal

    @property
    def is_distributed(self) -> bool:
        """Whether the job requests more than one GPU."""
        return self.num_gpus > 1

    def job_completion_time(self) -> Optional[float]:
        """JCT = completion time minus arrival time, or ``None`` if unfinished."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    def responsiveness(self) -> Optional[float]:
        """Time from submission until the job first received GPUs."""
        if self.first_schedule_time is None:
            return None
        return self.first_schedule_time - self.arrival_time

    # --- speed model ------------------------------------------------------

    def throughput_factor(self, allocated_gpus: int) -> float:
        """Rate of progress relative to running on the requested allocation.

        A job that asked for ``num_gpus`` GPUs and received ``allocated_gpus``
        progresses at ``speedup(allocated) / speedup(requested)`` of its
        isolated rate.  Elastic schedulers (Pollux, Optimus) may allocate more
        or fewer GPUs than requested.
        """
        if allocated_gpus <= 0:
            return 0.0
        requested_speedup = self.scaling.speedup(self.num_gpus)
        if requested_speedup <= 0:
            return 0.0
        return self.scaling.speedup(allocated_gpus) / requested_speedup

    def copy_static(self) -> "Job":
        """Return a fresh copy with the static description but reset dynamic state.

        Used by shadow simulations (the automatic scheduler synthesizer) and by
        experiment harnesses that run the same trace under several policies.
        """
        return Job(
            arrival_time=self.arrival_time,
            num_gpus=self.num_gpus,
            duration=self.duration,
            job_id=self.job_id,
            model_name=self.model_name,
            gpu_type=self.gpu_type,
            iteration_time=self.iteration_time,
            scaling=ScalingProfile(self.scaling.alpha, self.scaling.max_useful_gpus),
            placement_sensitive=self.placement_sensitive,
            skew=self.skew,
            comm_intensity=self.comm_intensity,
            cpu_demand_per_gpu=self.cpu_demand_per_gpu,
            mem_demand_per_gpu=self.mem_demand_per_gpu,
            convergence_fraction=self.convergence_fraction,
            loss_threshold=self.loss_threshold,
            batch_size=self.batch_size,
            max_batch_scale=self.max_batch_scale,
            user=self.user,
            metadata=dict(self.metadata),
            per_gpu_throughput=dict(self.per_gpu_throughput),
        )

    def snapshot(self) -> "Job":
        """Return a deep-enough copy including dynamic state.

        The synthesizer forks the live system state into a shadow simulation;
        list/dict fields are copied so the shadow run cannot mutate the live job.
        """
        clone = self.copy_static()
        clone.status = self.status
        clone.admitted_time = self.admitted_time
        clone.first_schedule_time = self.first_schedule_time
        clone.completion_time = self.completion_time
        clone.attained_service = self.attained_service
        clone.work_done = self.work_done
        clone.allocated_gpus = list(self.allocated_gpus)
        clone.num_preemptions = self.num_preemptions
        clone.num_launches = self.num_launches
        clone.pending_overhead = self.pending_overhead
        clone.metrics = dict(self.metrics)
        return clone
