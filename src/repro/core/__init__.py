"""Core abstractions and shared data structures of the toolkit."""

from repro.core.job import Job, JobStatus, ScalingProfile
from repro.core.job_state import JobState
from repro.core.cluster_state import ClusterState
from repro.core.abstractions import (
    AdmissionPolicy,
    ClusterManager,
    JobLauncher,
    MetricCollector,
    PlacementDecision,
    PlacementPolicy,
    PreemptionMechanism,
    ScheduleEntry,
    SchedulingPolicy,
    TerminationPolicy,
)
from repro.core.blox_manager import BloxManager
from repro.core.events import (
    KIND_ARRIVAL,
    KIND_CLUSTER,
    KIND_COMPLETION,
    KIND_POLICY,
    EventHeap,
    SimEvent,
)
from repro.core.mechanisms import SimulatedLauncher, SimulatedPreemption
from repro.core import exceptions

__all__ = [
    "Job",
    "JobStatus",
    "ScalingProfile",
    "JobState",
    "ClusterState",
    "AdmissionPolicy",
    "ClusterManager",
    "JobLauncher",
    "MetricCollector",
    "PlacementDecision",
    "PlacementPolicy",
    "PreemptionMechanism",
    "ScheduleEntry",
    "SchedulingPolicy",
    "TerminationPolicy",
    "BloxManager",
    "EventHeap",
    "SimEvent",
    "KIND_ARRIVAL",
    "KIND_CLUSTER",
    "KIND_COMPLETION",
    "KIND_POLICY",
    "SimulatedLauncher",
    "SimulatedPreemption",
    "exceptions",
]
