"""``JobState``: the shared view of every job the scheduler knows about.

Blox models job state as a flexible key-value store because different
schedulers track different metrics.  Here each job is a
:class:`~repro.core.job.Job` dataclass with an open ``metrics`` dictionary, and
``JobState`` owns the collection: active jobs, jobs waiting for admission and
finished jobs, plus the query helpers that scheduling policies rely on.

The registry is *status-indexed*: one id-set per :class:`JobStatus`, updated
through a single transition path.  :meth:`set_status` is the explicit
transition API; direct ``job.status = ...`` writes from mechanisms and the
execution model are also routed here by the status descriptor on ``Job``, so
the views (``runnable_jobs``, ``running_jobs``, ``finished_jobs``, ...) read
an index instead of scanning and re-sorting the whole registry every round.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.exceptions import UnknownJobError
from repro.core.job import Job, JobStatus

#: Statuses in which a job is admitted and still has work to do / terminal
#: statuses.  Derived from the JobStatus predicates so there is exactly one
#: source of truth for the status partition.
ACTIVE_STATUSES = tuple(s for s in JobStatus if s.is_active)
FINISHED_STATUSES = tuple(s for s in JobStatus if s.is_terminal)


class JobStateObserver:
    """Receives change notifications from a :class:`JobState` registry.

    Scheduling policies register an observer (via :meth:`JobState.add_observer`)
    to maintain incremental priority structures instead of re-scanning and
    re-sorting the registry every round.  Three hooks cover every way a job's
    scheduling-relevant state can change:

    * :meth:`on_job_tracked` -- a job entered the registry (or replaced a
      previously tracked object with the same id);
    * :meth:`on_status_change` -- a status transition, fired both by
      :meth:`JobState.set_status` and by direct ``job.status = ...`` writes
      (the status descriptor routes them here);
    * :meth:`on_progress` -- ``attained_service`` or ``work_done`` changed
      (the execution model writes both once per running job per round).

    Hooks fire *after* the registry's own indexes are updated, so observers may
    query the registry from inside a hook.  Observers must not mutate job
    status or progress from inside a hook (no re-entrant transitions).
    """

    def on_job_tracked(self, job: Job) -> None:
        return None

    def on_status_change(self, job: Job, old: Optional[JobStatus], new: JobStatus) -> None:
        return None

    def on_progress(self, job: Job, field: str, old: float, new: float) -> None:
        return None


class JobState:
    """Registry of all submitted jobs with status-indexed views."""

    def __init__(self) -> None:
        self._jobs: Dict[int, Job] = {}
        self._by_status: Dict[JobStatus, Set[int]] = {s: set() for s in JobStatus}
        #: Observers are held weakly: an observer is typically owned by a
        #: scheduling policy, and policies may be swapped mid-run (the
        #: synthesizer does) without an unregister call -- a strong list would
        #: keep every stale policy index alive and dispatching forever.
        self._observers: List[weakref.ref] = []
        #: Observers that override on_progress; progress writes (two per
        #: running job per round, the hottest notification path) dispatch only
        #: to these.
        self._progress_observers: List[weakref.ref] = []
        #: Memoized sorted views keyed by the requested status tuple,
        #: invalidated on any status transition or (re)tracking.  The hot loop
        #: reads views like running_jobs() several times per round while
        #: transitions happen at most a few times per round.
        self._view_cache: Dict[tuple, List[Job]] = {}
        #: Simulated (or wall-clock) time of the current round; the scheduling
        #: loop refreshes this before invoking policies so policies that need a
        #: notion of "now" (Themis' fairness estimate, Tiresias' starvation
        #: guard, Optimus' convergence rate) can read it without a side channel.
        self.current_time: float = 0.0
        #: Incremented every time this registry crosses a pickle boundary.
        #: ``__getstate__`` drops observer registrations (they are weak refs
        #: to live policy objects), but when a *whole simulator* is pickled --
        #: checkpoint/restart of a federation shard -- the policy index comes
        #: along in the same graph, still pointing at this registry by
        #: identity, and its ``bind()`` would short-circuit forever.  Indexes
        #: compare this epoch on bind and re-attach when it moved.
        self.bind_epoch: int = 0

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------

    def add_observer(self, observer: JobStateObserver) -> None:
        """Register an observer for tracking/status/progress notifications.

        Registering the same observer twice is a no-op (each observer receives
        every notification exactly once).  The registry holds observers
        *weakly*: a garbage-collected observer (e.g. the priority index of a
        policy the synthesizer swapped out) silently drops off the dispatch
        lists, so callers must keep a strong reference to an observer they
        want notified.  Progress notifications are only dispatched to
        observers that actually override ``on_progress``, so observers that
        only care about membership/status changes add no cost to the
        execution hot path.
        """
        if any(ref() is observer for ref in self._observers):
            return
        self._observers.append(weakref.ref(observer))
        if type(observer).on_progress is not JobStateObserver.on_progress:
            self._progress_observers.append(weakref.ref(observer))

    def remove_observer(self, observer: JobStateObserver) -> None:
        """Detach a previously registered observer (no-op if absent)."""
        self._observers = [
            ref for ref in self._observers if ref() is not None and ref() is not observer
        ]
        self._progress_observers = [
            ref
            for ref in self._progress_observers
            if ref() is not None and ref() is not observer
        ]

    def _live_observers(self, refs: List[weakref.ref]) -> List[JobStateObserver]:
        """Resolve weak observer refs, pruning any that died."""
        observers = []
        dead = False
        for ref in refs:
            observer = ref()
            if observer is None:
                dead = True
            else:
                observers.append(observer)
        if dead:
            refs[:] = [ref for ref in refs if ref() is not None]
        return observers

    def _notify_progress(self, job: Job, field: str, old: float, new: float) -> None:
        """Forward a progress write to observers (called by the Job descriptor)."""
        if not self._progress_observers or self._jobs.get(job.job_id) is not job:
            return
        for observer in self._live_observers(self._progress_observers):
            observer.on_progress(job, field, old, new)

    def __getstate__(self):
        """Pickle support (parallel sweeps ship results across processes).

        Observer registrations are runtime wiring to live policy objects --
        weak references that neither can nor should cross a process boundary
        -- so they are dropped; a policy on the receiving side re-binds
        lazily.  The memoized views are likewise rebuildable.
        """
        state = self.__dict__.copy()
        state["_observers"] = []
        state["_progress_observers"] = []
        state["_view_cache"] = {}
        return state

    def __setstate__(self, state) -> None:
        """Re-install the registry backref each job's ``__getstate__`` dropped.

        After this, status writes on the unpickled jobs keep the unpickled
        registry's indexes in sync exactly as on the original -- the contract
        the federation worker protocol relies on when a whole shard result
        crosses the process boundary.
        """
        self.__dict__.update(state)
        # A restored registry has no observers; any index unpickled in the
        # same graph must notice and re-attach (see ``bind_epoch``).
        self.bind_epoch = state.get("bind_epoch", 0) + 1
        for job in self._jobs.values():
            job.__dict__["_registry"] = self

    # ------------------------------------------------------------------
    # Status index maintenance
    # ------------------------------------------------------------------

    def _reindex_status(self, job: Job, old: Optional[JobStatus], new: JobStatus) -> None:
        """Move a tracked job between status sets (called by the Job descriptor)."""
        if self._jobs.get(job.job_id) is not job:
            return
        if old is not None:
            self._by_status[old].discard(job.job_id)
        self._by_status[new].add(job.job_id)
        if self._view_cache:
            self._view_cache.clear()
        if self._observers:
            for observer in self._live_observers(self._observers):
                observer.on_status_change(job, old, new)

    def set_status(self, job_id: int, status: JobStatus) -> Job:
        """Transition a job to ``status``, keeping the status indexes in sync.

        This is the canonical transition API; assigning ``job.status`` directly
        is equivalent for tracked jobs (the descriptor notifies the registry)
        but callers holding only an id should use this.
        """
        job = self.get(job_id)
        job.status = status
        return job

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_new_jobs(self, jobs: Iterable[Job], current_time: float = 0.0) -> List[Job]:
        """Add admitted jobs and mark them runnable.

        Mirrors ``job_state.add_new_jobs(accepted_jobs)`` in the Blox workflow.
        Returns the list of jobs added (useful for logging/tests).
        """
        added = []
        for job in jobs:
            self.track(job)
            job.status = JobStatus.RUNNABLE
            if job.admitted_time is None:
                job.admitted_time = current_time
            added.append(job)
        return added

    def track(self, job: Job) -> None:
        """Track a job without changing its status (used for admission queues).

        A job belongs to at most one registry: tracking an object another
        ``JobState`` still owns would leave that registry's status index
        permanently stale, so it is rejected -- track a ``snapshot()`` or
        ``copy_static()`` of the job instead.
        """
        foreign = job.__dict__.get("_registry")
        if foreign is not None and foreign is not self:
            raise ValueError(
                f"job {job.job_id} is already tracked by another JobState; "
                "track a snapshot() or copy_static() of it instead"
            )
        previous = self._jobs.get(job.job_id)
        if previous is not None and previous is not job:
            self._by_status[previous.status].discard(previous.job_id)
            previous.__dict__.pop("_registry", None)
        self._jobs[job.job_id] = job
        job.__dict__["_registry"] = self
        self._by_status[job.status].add(job.job_id)
        if self._view_cache:
            self._view_cache.clear()
        if self._observers:
            for observer in self._live_observers(self._observers):
                observer.on_job_tracked(job)

    def prune_completed_jobs(self) -> List[Job]:
        """Return (but keep a record of) jobs that reached a terminal state.

        The Blox loop calls this every round; we keep finished jobs in the
        registry so that end-of-run metrics can be computed, but they no longer
        appear in :meth:`active_jobs`.
        """
        return self.finished_jobs()

    # ------------------------------------------------------------------
    # Lookup and views
    # ------------------------------------------------------------------

    def get(self, job_id: int) -> Job:
        if job_id not in self._jobs:
            raise UnknownJobError(job_id)
        return self._jobs[job_id]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def all_jobs(self) -> List[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def jobs_with_status(self, *statuses: JobStatus) -> List[Job]:
        cached = self._view_cache.get(statuses)
        if cached is None:
            ids: List[int] = []
            for status in dict.fromkeys(statuses):
                ids.extend(self._by_status[status])
            cached = [self._jobs[i] for i in sorted(ids)]
            self._view_cache[statuses] = cached
        # Return a copy: callers may hold the list across transitions.
        return list(cached)

    def count_with_status(self, *statuses: JobStatus) -> int:
        """O(1)-per-status count of jobs in the given statuses."""
        return sum(len(self._by_status[s]) for s in dict.fromkeys(statuses))

    def active_jobs(self) -> List[Job]:
        """Jobs that have been admitted and still have work left."""
        return self.jobs_with_status(*ACTIVE_STATUSES)

    def count_active(self) -> int:
        return self.count_with_status(*ACTIVE_STATUSES)

    def running_jobs(self) -> List[Job]:
        return self.jobs_with_status(JobStatus.RUNNING)

    def runnable_jobs(self) -> List[Job]:
        """Jobs eligible for scheduling this round (running or waiting to run)."""
        return self.jobs_with_status(
            JobStatus.RUNNABLE, JobStatus.RUNNING, JobStatus.PREEMPTED
        )

    def finished_jobs(self) -> List[Job]:
        return self.jobs_with_status(*FINISHED_STATUSES)

    def count_finished(self) -> int:
        return self.count_with_status(*FINISHED_STATUSES)

    def waiting_admission_jobs(self) -> List[Job]:
        return self.jobs_with_status(JobStatus.WAITING_ADMISSION)

    def filter(self, predicate: Callable[[Job], bool]) -> List[Job]:
        """Generic filtered view, e.g. ``job_state.filter(lambda j: j.num_gpus > 4)``."""
        return [j for j in self.all_jobs() if predicate(j)]

    # ------------------------------------------------------------------
    # Aggregates used by policies and experiments
    # ------------------------------------------------------------------

    def total_demand_gpus(self, statuses: Optional[Iterable[JobStatus]] = None) -> int:
        """Sum of requested GPUs across jobs in the given statuses (active by default)."""
        if statuses is None:
            jobs = self.active_jobs()
        else:
            jobs = self.jobs_with_status(*statuses)
        return sum(j.num_gpus for j in jobs)

    def update_metric(self, job_id: int, key: str, value: object) -> None:
        """Record an application-level metric for a job (loss, iteration time, ...)."""
        self.get(job_id).metrics[key] = value

    def snapshot(self) -> "JobState":
        """Deep copy of the registry used by shadow simulations."""
        clone = JobState()
        clone.current_time = self.current_time
        for job in self._jobs.values():
            clone.track(job.snapshot())
        return clone

    # ------------------------------------------------------------------
    # Invariant checking (test support)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the status indexes exactly partition the tracked jobs."""
        seen: Set[int] = set()
        for status, ids in self._by_status.items():
            for job_id in sorted(ids):
                assert job_id in self._jobs, f"index references unknown job {job_id}"
                assert self._jobs[job_id].status is status, (
                    f"job {job_id} indexed under {status} but has status "
                    f"{self._jobs[job_id].status}"
                )
                assert job_id not in seen, f"job {job_id} indexed under two statuses"
                seen.add(job_id)
        assert seen == set(self._jobs), "status index does not cover the registry"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"JobState(total={len(self._jobs)}, active={self.count_active()}, "
            f"finished={self.count_finished()})"
        )
