"""``JobState``: the shared view of every job the scheduler knows about.

Blox models job state as a flexible key-value store because different
schedulers track different metrics.  Here each job is a
:class:`~repro.core.job.Job` dataclass with an open ``metrics`` dictionary, and
``JobState`` owns the collection: active jobs, jobs waiting for admission and
finished jobs, plus the query helpers that scheduling policies rely on.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.core.exceptions import UnknownJobError
from repro.core.job import Job, JobStatus


class JobState:
    """Registry of all submitted jobs with status-based views."""

    def __init__(self) -> None:
        self._jobs: Dict[int, Job] = {}
        #: Simulated (or wall-clock) time of the current round; the scheduling
        #: loop refreshes this before invoking policies so policies that need a
        #: notion of "now" (Themis' fairness estimate, Tiresias' starvation
        #: guard, Optimus' convergence rate) can read it without a side channel.
        self.current_time: float = 0.0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_new_jobs(self, jobs: Iterable[Job], current_time: float = 0.0) -> List[Job]:
        """Add admitted jobs and mark them runnable.

        Mirrors ``job_state.add_new_jobs(accepted_jobs)`` in the Blox workflow.
        Returns the list of jobs added (useful for logging/tests).
        """
        added = []
        for job in jobs:
            job.status = JobStatus.RUNNABLE
            if job.admitted_time is None:
                job.admitted_time = current_time
            self._jobs[job.job_id] = job
            added.append(job)
        return added

    def track(self, job: Job) -> None:
        """Track a job without changing its status (used for admission queues)."""
        self._jobs[job.job_id] = job

    def prune_completed_jobs(self) -> List[Job]:
        """Return (but keep a record of) jobs that reached a terminal state.

        The Blox loop calls this every round; we keep finished jobs in the
        registry so that end-of-run metrics can be computed, but they no longer
        appear in :meth:`active_jobs`.
        """
        return [job for job in self._jobs.values() if job.is_finished]

    # ------------------------------------------------------------------
    # Lookup and views
    # ------------------------------------------------------------------

    def get(self, job_id: int) -> Job:
        if job_id not in self._jobs:
            raise UnknownJobError(job_id)
        return self._jobs[job_id]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def all_jobs(self) -> List[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def jobs_with_status(self, *statuses: JobStatus) -> List[Job]:
        wanted = set(statuses)
        return sorted(
            (j for j in self._jobs.values() if j.status in wanted),
            key=lambda j: j.job_id,
        )

    def active_jobs(self) -> List[Job]:
        """Jobs that have been admitted and still have work left."""
        return [j for j in self.all_jobs() if j.status.is_active]

    def running_jobs(self) -> List[Job]:
        return self.jobs_with_status(JobStatus.RUNNING)

    def runnable_jobs(self) -> List[Job]:
        """Jobs eligible for scheduling this round (running or waiting to run)."""
        return self.jobs_with_status(
            JobStatus.RUNNABLE, JobStatus.RUNNING, JobStatus.PREEMPTED
        )

    def finished_jobs(self) -> List[Job]:
        return [j for j in self.all_jobs() if j.is_finished]

    def waiting_admission_jobs(self) -> List[Job]:
        return self.jobs_with_status(JobStatus.WAITING_ADMISSION)

    def filter(self, predicate: Callable[[Job], bool]) -> List[Job]:
        """Generic filtered view, e.g. ``job_state.filter(lambda j: j.num_gpus > 4)``."""
        return [j for j in self.all_jobs() if predicate(j)]

    # ------------------------------------------------------------------
    # Aggregates used by policies and experiments
    # ------------------------------------------------------------------

    def total_demand_gpus(self, statuses: Optional[Iterable[JobStatus]] = None) -> int:
        """Sum of requested GPUs across jobs in the given statuses (active by default)."""
        if statuses is None:
            jobs = self.active_jobs()
        else:
            jobs = self.jobs_with_status(*statuses)
        return sum(j.num_gpus for j in jobs)

    def update_metric(self, job_id: int, key: str, value: object) -> None:
        """Record an application-level metric for a job (loss, iteration time, ...)."""
        self.get(job_id).metrics[key] = value

    def snapshot(self) -> "JobState":
        """Deep copy of the registry used by shadow simulations."""
        clone = JobState()
        clone.current_time = self.current_time
        for job in self._jobs.values():
            clone._jobs[job.job_id] = job.snapshot()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"JobState(total={len(self._jobs)}, active={len(self.active_jobs())}, "
            f"finished={len(self.finished_jobs())})"
        )
