"""``JobState``: the shared view of every job the scheduler knows about.

Blox models job state as a flexible key-value store because different
schedulers track different metrics.  Here each job is a
:class:`~repro.core.job.Job` dataclass with an open ``metrics`` dictionary, and
``JobState`` owns the collection: active jobs, jobs waiting for admission and
finished jobs, plus the query helpers that scheduling policies rely on.

The registry is *status-indexed*: one id-set per :class:`JobStatus`, updated
through a single transition path.  :meth:`set_status` is the explicit
transition API; direct ``job.status = ...`` writes from mechanisms and the
execution model are also routed here by the status descriptor on ``Job``, so
the views (``runnable_jobs``, ``running_jobs``, ``finished_jobs``, ...) read
an index instead of scanning and re-sorting the whole registry every round.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.exceptions import UnknownJobError
from repro.core.job import Job, JobStatus

#: Statuses in which a job is admitted and still has work to do / terminal
#: statuses.  Derived from the JobStatus predicates so there is exactly one
#: source of truth for the status partition.
ACTIVE_STATUSES = tuple(s for s in JobStatus if s.is_active)
FINISHED_STATUSES = tuple(s for s in JobStatus if s.is_terminal)


class JobState:
    """Registry of all submitted jobs with status-indexed views."""

    def __init__(self) -> None:
        self._jobs: Dict[int, Job] = {}
        self._by_status: Dict[JobStatus, Set[int]] = {s: set() for s in JobStatus}
        #: Simulated (or wall-clock) time of the current round; the scheduling
        #: loop refreshes this before invoking policies so policies that need a
        #: notion of "now" (Themis' fairness estimate, Tiresias' starvation
        #: guard, Optimus' convergence rate) can read it without a side channel.
        self.current_time: float = 0.0

    # ------------------------------------------------------------------
    # Status index maintenance
    # ------------------------------------------------------------------

    def _reindex_status(self, job: Job, old: Optional[JobStatus], new: JobStatus) -> None:
        """Move a tracked job between status sets (called by the Job descriptor)."""
        if self._jobs.get(job.job_id) is not job:
            return
        if old is not None:
            self._by_status[old].discard(job.job_id)
        self._by_status[new].add(job.job_id)

    def set_status(self, job_id: int, status: JobStatus) -> Job:
        """Transition a job to ``status``, keeping the status indexes in sync.

        This is the canonical transition API; assigning ``job.status`` directly
        is equivalent for tracked jobs (the descriptor notifies the registry)
        but callers holding only an id should use this.
        """
        job = self.get(job_id)
        job.status = status
        return job

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_new_jobs(self, jobs: Iterable[Job], current_time: float = 0.0) -> List[Job]:
        """Add admitted jobs and mark them runnable.

        Mirrors ``job_state.add_new_jobs(accepted_jobs)`` in the Blox workflow.
        Returns the list of jobs added (useful for logging/tests).
        """
        added = []
        for job in jobs:
            self.track(job)
            job.status = JobStatus.RUNNABLE
            if job.admitted_time is None:
                job.admitted_time = current_time
            added.append(job)
        return added

    def track(self, job: Job) -> None:
        """Track a job without changing its status (used for admission queues).

        A job belongs to at most one registry: tracking an object another
        ``JobState`` still owns would leave that registry's status index
        permanently stale, so it is rejected -- track a ``snapshot()`` or
        ``copy_static()`` of the job instead.
        """
        foreign = job.__dict__.get("_registry")
        if foreign is not None and foreign is not self:
            raise ValueError(
                f"job {job.job_id} is already tracked by another JobState; "
                "track a snapshot() or copy_static() of it instead"
            )
        previous = self._jobs.get(job.job_id)
        if previous is not None and previous is not job:
            self._by_status[previous.status].discard(previous.job_id)
            previous.__dict__.pop("_registry", None)
        self._jobs[job.job_id] = job
        job.__dict__["_registry"] = self
        self._by_status[job.status].add(job.job_id)

    def prune_completed_jobs(self) -> List[Job]:
        """Return (but keep a record of) jobs that reached a terminal state.

        The Blox loop calls this every round; we keep finished jobs in the
        registry so that end-of-run metrics can be computed, but they no longer
        appear in :meth:`active_jobs`.
        """
        return self.finished_jobs()

    # ------------------------------------------------------------------
    # Lookup and views
    # ------------------------------------------------------------------

    def get(self, job_id: int) -> Job:
        if job_id not in self._jobs:
            raise UnknownJobError(job_id)
        return self._jobs[job_id]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def all_jobs(self) -> List[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def jobs_with_status(self, *statuses: JobStatus) -> List[Job]:
        ids: List[int] = []
        for status in dict.fromkeys(statuses):
            ids.extend(self._by_status[status])
        return [self._jobs[i] for i in sorted(ids)]

    def count_with_status(self, *statuses: JobStatus) -> int:
        """O(1)-per-status count of jobs in the given statuses."""
        return sum(len(self._by_status[s]) for s in dict.fromkeys(statuses))

    def active_jobs(self) -> List[Job]:
        """Jobs that have been admitted and still have work left."""
        return self.jobs_with_status(*ACTIVE_STATUSES)

    def count_active(self) -> int:
        return self.count_with_status(*ACTIVE_STATUSES)

    def running_jobs(self) -> List[Job]:
        return self.jobs_with_status(JobStatus.RUNNING)

    def runnable_jobs(self) -> List[Job]:
        """Jobs eligible for scheduling this round (running or waiting to run)."""
        return self.jobs_with_status(
            JobStatus.RUNNABLE, JobStatus.RUNNING, JobStatus.PREEMPTED
        )

    def finished_jobs(self) -> List[Job]:
        return self.jobs_with_status(*FINISHED_STATUSES)

    def count_finished(self) -> int:
        return self.count_with_status(*FINISHED_STATUSES)

    def waiting_admission_jobs(self) -> List[Job]:
        return self.jobs_with_status(JobStatus.WAITING_ADMISSION)

    def filter(self, predicate: Callable[[Job], bool]) -> List[Job]:
        """Generic filtered view, e.g. ``job_state.filter(lambda j: j.num_gpus > 4)``."""
        return [j for j in self.all_jobs() if predicate(j)]

    # ------------------------------------------------------------------
    # Aggregates used by policies and experiments
    # ------------------------------------------------------------------

    def total_demand_gpus(self, statuses: Optional[Iterable[JobStatus]] = None) -> int:
        """Sum of requested GPUs across jobs in the given statuses (active by default)."""
        if statuses is None:
            jobs = self.active_jobs()
        else:
            jobs = self.jobs_with_status(*statuses)
        return sum(j.num_gpus for j in jobs)

    def update_metric(self, job_id: int, key: str, value: object) -> None:
        """Record an application-level metric for a job (loss, iteration time, ...)."""
        self.get(job_id).metrics[key] = value

    def snapshot(self) -> "JobState":
        """Deep copy of the registry used by shadow simulations."""
        clone = JobState()
        clone.current_time = self.current_time
        for job in self._jobs.values():
            clone.track(job.snapshot())
        return clone

    # ------------------------------------------------------------------
    # Invariant checking (test support)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the status indexes exactly partition the tracked jobs."""
        seen: Set[int] = set()
        for status, ids in self._by_status.items():
            for job_id in ids:
                assert job_id in self._jobs, f"index references unknown job {job_id}"
                assert self._jobs[job_id].status is status, (
                    f"job {job_id} indexed under {status} but has status "
                    f"{self._jobs[job_id].status}"
                )
                assert job_id not in seen, f"job {job_id} indexed under two statuses"
                seen.add(job_id)
        assert seen == set(self._jobs), "status index does not cover the registry"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"JobState(total={len(self._jobs)}, active={self.count_active()}, "
            f"finished={self.count_finished()})"
        )
