"""Typed simulation events and the event heap of the event-driven core.

The event-driven engine (:mod:`repro.simulator.event_core`) organises its
round-skipping around a heap of :class:`SimEvent` entries: the next thing
that can change a scheduling decision.  Four kinds cover every source of
change the round loop reacts to:

* ``KIND_CLUSTER`` -- the cluster manager's next membership event
  (scenario-timeline churn, federation routing bounds surfaced through
  :meth:`~repro.core.abstractions.ClusterManager.next_event_time`);
* ``KIND_ARRIVAL`` -- the next trace/routed job becoming poppable from the
  manager's wait queue;
* ``KIND_POLICY`` -- the scheduling policy's own next internal event
  (:meth:`~repro.core.abstractions.SchedulingPolicy.next_policy_event_time`,
  e.g. a Tiresias demotion threshold crossing);
* ``KIND_COMPLETION`` -- a running job reaching its termination target, found
  by the exact per-round replay of
  :meth:`~repro.simulator.execution.ExecutionModel.steady_completion_round`.

**Event time is the absolute round index**, not a float timestamp.  The round
loop is the differential oracle the event engine must match bit-for-bit, and
the loop quantises every observable effect to a round boundary: an arrival at
t=1234.5s takes effect in the first round whose ``pop_wait_queue`` sees it.
Storing the integer round keeps heap ordering exact (no float-comparison
ambiguity between event sources) while the engine derives the round index
from float timestamps with the oracle's own accumulated-clock comparisons.

Deterministic tie-breaking is the tuple order ``(time, kind, id)``:

* equal rounds resolve by *kind* -- boundary kinds (cluster, arrival, policy)
  order before completions, encoding explicitly what the round loop resolves
  implicitly: a completion that lands in the same round as a boundary event
  is materialised by that round's full pass through the loop (advance ->
  prune -> admit -> schedule), never by the skip executor;
* equal ``(time, kind)`` resolve by *id* (job id for arrivals/completions),
  matching the ascending-job-id order in which the loop's per-round steps
  visit jobs.
"""

from __future__ import annotations

import heapq
from typing import List, NamedTuple, Optional

#: Kind ordinals double as tie-break priority at an equal round; see module
#: docstring.  Boundary kinds (the skip executor must hand the round back to
#: the full loop) sort before completions (materialised inside the skip).
KIND_CLUSTER = 0
KIND_ARRIVAL = 1
KIND_POLICY = 2
KIND_COMPLETION = 3

KIND_NAMES = {
    KIND_CLUSTER: "cluster",
    KIND_ARRIVAL: "arrival",
    KIND_POLICY: "policy",
    KIND_COMPLETION: "completion",
}


class SimEvent(NamedTuple):
    """One entry of the event heap; orders by ``(time, kind, id)``.

    ``time`` is the absolute round index the event takes effect in (see
    module docstring for why rounds, not seconds).  ``id`` is the job id for
    arrival/completion events and 0 for sourceless boundary events.
    """

    time: int
    kind: int
    id: int

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"kind{self.kind}")


class EventHeap:
    """A min-heap of :class:`SimEvent` with the ``(time, kind, id)`` order.

    A thin, explicit wrapper over :mod:`heapq`: tuple comparison on the
    NamedTuple *is* the tie-break contract, so push/pop order is a pure
    function of the event set -- no insertion-order dependence, which is what
    makes the event engine's schedule reproducible and comparable against the
    round-loop oracle.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[SimEvent] = []

    def push(self, event: SimEvent) -> None:
        heapq.heappush(self._entries, event)

    def pop(self) -> SimEvent:
        return heapq.heappop(self._entries)

    def peek(self) -> Optional[SimEvent]:
        return self._entries[0] if self._entries else None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:
        head = self.peek()
        return f"EventHeap(len={len(self._entries)}, next={head})"
