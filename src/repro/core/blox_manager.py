"""``BloxManager``: the glue between the scheduling loop and the execution backend.

In the paper the BloxManager maintains RPC endpoints for job submission and
worker communication.  In simulation it owns the simulated clock, the wait
queue of not-yet-arrived trace jobs, and the application of placement
decisions (launch/suspend) to the shared state -- the methods called from the
scheduling loop in Figure 2 of the paper (``update_cluster``,
``update_metrics``, ``prune_completed_jobs``, ``pop_wait_queue``,
``exec_jobs``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

from repro.core.abstractions import ClusterManager, PlacementDecision
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.core.mechanisms import SimulatedLauncher, SimulatedPreemption
from repro.simulator.execution import ExecutionModel


def is_lease_renewal(job: Job, gpu_ids) -> bool:
    """Whether (re)launching ``job`` on ``gpu_ids`` would change nothing.

    Relies on ``job.allocated_gpus`` being maintained sorted (the launcher
    sorts it; preemption and pruning clear it), and on kept allocations being
    handed around as copies of that list, so the plain equality almost always
    decides without sorting.  Shared by :meth:`BloxManager.exec_jobs` and the
    simulator's no-op-decision witness so the two can never disagree.
    """
    return job.status == JobStatus.RUNNING and (
        gpu_ids == job.allocated_gpus or sorted(gpu_ids) == job.allocated_gpus
    )


class BloxManager:
    """Drives simulated time and applies scheduling decisions to shared state."""

    def __init__(
        self,
        trace_jobs: Iterable[Job],
        round_duration: float = 300.0,
        execution_model: Optional[ExecutionModel] = None,
        launcher: Optional[SimulatedLauncher] = None,
        preemptor: Optional[SimulatedPreemption] = None,
        cluster_manager: Optional[ClusterManager] = None,
        simulate: bool = True,
    ) -> None:
        if round_duration <= 0:
            raise ConfigurationError(f"round_duration must be > 0, got {round_duration}")
        self.round_duration = float(round_duration)
        self.simulate = simulate
        self.current_time = 0.0
        self.round_number = 0
        self.execution = execution_model if execution_model is not None else ExecutionModel()
        overheads = self.execution.overheads
        self.launcher = launcher if launcher is not None else SimulatedLauncher(overheads)
        self.preemptor = preemptor if preemptor is not None else SimulatedPreemption(overheads)
        self.cluster_manager = cluster_manager if cluster_manager is not None else ClusterManager()
        self._wait_queue: Deque[Job] = deque(
            sorted(trace_jobs, key=lambda j: (j.arrival_time, j.job_id))
        )
        self.terminate = False
        #: Finished-job count at the last prune; lets prune_completed_jobs
        #: early-out in O(1) on the (common) rounds where nothing finished.
        self._pruned_finished_count = 0

    # ------------------------------------------------------------------
    # Loop steps (names follow Figure 2 in the paper)
    # ------------------------------------------------------------------

    def update_cluster(self, cluster_state: ClusterState) -> List[int]:
        """Apply node membership changes; returns job ids affected by failures."""
        return self.cluster_manager.update(cluster_state, self.current_time)

    def update_metrics(self, cluster_state: ClusterState, job_state: JobState) -> None:
        """Advance every running job over the round that just elapsed."""
        if self.round_number == 0:
            return
        round_start = self.current_time - self.round_duration
        for job in job_state.running_jobs():
            self.execution.advance(job, cluster_state, round_start, self.round_duration)

    def prune_completed_jobs(
        self, cluster_state: ClusterState, job_state: JobState
    ) -> List[Job]:
        """Release resources held by jobs that finished during the last round.

        Walks the cluster's job->GPU index (jobs currently holding GPUs are the
        only candidates) instead of re-scanning every finished job each round,
        and skips even that walk when the finished count has not moved since
        the previous prune (no newly finished job can be holding GPUs then).
        """
        finished_count = job_state.count_finished()
        if finished_count == self._pruned_finished_count:
            return []
        self._pruned_finished_count = finished_count
        finished_holding_gpus = []
        for job_id in cluster_state.jobs_with_allocations():
            if job_id not in job_state:
                continue
            job = job_state.get(job_id)
            if job.is_finished:
                finished_holding_gpus.append(job)
        for job in finished_holding_gpus:
            cluster_state.release_job(job.job_id)
            job.allocated_gpus = []
        return finished_holding_gpus

    def pop_wait_queue(self, simulate: Optional[bool] = None) -> List[Job]:
        """Return jobs whose arrival time has passed since the previous round."""
        del simulate  # kept for signature parity with the paper's example
        arrived: List[Job] = []
        while self._wait_queue and self._wait_queue[0].arrival_time <= self.current_time:
            arrived.append(self._wait_queue.popleft())
        return arrived

    def exec_jobs(
        self,
        decision: PlacementDecision,
        cluster_state: ClusterState,
        job_state: JobState,
    ) -> List[Tuple[int, List[int]]]:
        """Apply a placement decision: suspend first, then launch.

        Jobs that keep exactly the GPUs they already hold are treated as lease
        renewals and pay no overhead.  Returns the launches actually applied
        (renewals excluded), so the engine can trace real decisions without a
        second lease-renewal scan over the launch map.
        """
        for job_id in decision.to_suspend:
            job = job_state.get(job_id)
            self.preemptor.preempt(job, cluster_state, self.current_time)

        launched: List[Tuple[int, List[int]]] = []
        for job_id in sorted(decision.to_launch):
            gpu_ids = decision.to_launch[job_id]
            job = job_state.get(job_id)
            if job.is_finished:
                continue
            if is_lease_renewal(job, gpu_ids):
                continue  # lease renewed, nothing to do
            if job.status == JobStatus.RUNNING:
                # Placement changed without an explicit suspend: treat as a move.
                self.preemptor.preempt(job, cluster_state, self.current_time)
            self.launcher.launch(job, gpu_ids, cluster_state, self.current_time)
            launched.append((job_id, gpu_ids))
        return launched

    def advance_time(self) -> None:
        """Move the simulated clock forward by one round."""
        self.current_time += self.round_duration
        self.round_number += 1

    def submit_job(self, job: Job) -> None:
        """Append a job to the wait queue mid-run.

        This is the federation routing path: a :class:`FederationRouter`
        assigns an incoming gang to a shard, and the shard's manager receives
        it here before the round in which its arrival time falls executes --
        from the shard's point of view the job behaves exactly as if it had
        been in the trace from the start.  Arrivals must be routed in global
        ``(arrival_time, job_id)`` order, so appends keep the queue sorted;
        out-of-order submission would silently reorder ``pop_wait_queue`` and
        is rejected loudly instead.
        """
        if self._wait_queue:
            tail = self._wait_queue[-1]
            if (job.arrival_time, job.job_id) < (tail.arrival_time, tail.job_id):
                raise ConfigurationError(
                    f"job {job.job_id} (arrival {job.arrival_time}) submitted out of "
                    f"order after job {tail.job_id} (arrival {tail.arrival_time})"
                )
        self._wait_queue.append(job)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    @property
    def pending_arrivals(self) -> int:
        """Number of trace jobs that have not arrived yet."""
        return len(self._wait_queue)

    def next_arrival_time(self) -> Optional[float]:
        """Arrival time of the next queued trace job, or ``None`` if all arrived."""
        return self._wait_queue[0].arrival_time if self._wait_queue else None

    def queued_jobs(self) -> List[Job]:
        """Jobs waiting in the arrival queue (submitted/trace, not yet popped).

        Read-only view used by federation routers to account for gangs already
        routed to a shard but not yet admitted by its scheduling loop.
        """
        return list(self._wait_queue)

    def all_arrived(self) -> bool:
        return not self._wait_queue
