"""``ClusterState``: the shared view of machines and accelerators.

Blox stores the cluster state in a tabular structure with one row per GPU
(node id, global GPU id, local GPU id, GPU type, state, jobs running) plus a
per-node dictionary of hardware facts.  This class provides the same view with
query helpers used by placement policies, along with assignment bookkeeping
that raises :class:`~repro.core.exceptions.AllocationError` on double
allocation so inconsistent placement decisions are caught immediately.

The state is *indexed*: per-node free-GPU sets, a job->GPU index and cached
free/busy counters are updated invariantly by every mutation
(``assign``/``release_job``/``add_node``/``remove_node``/``mark_node_failed``/
``mark_node_recovered``), so the hot queries (``free_gpus``, ``gpus_for_job``,
``gpus_on_node``, ``num_free_gpus``, ``utilization``) cost O(result) instead of
O(total GPUs).  ``check_invariants`` recomputes everything from scratch and is
used by the test suite to prove the indexes never drift from the ground truth.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.cluster.gpu_types import GPUType
from repro.cluster.node import GPU, Node
from repro.core.exceptions import AllocationError, UnknownNodeError


def gpu_type_key(gpu_type: Union[str, GPUType]) -> str:
    """Normalised lookup key for a GPU type given either a name or a GPUType."""
    name = gpu_type.name if isinstance(gpu_type, GPUType) else str(gpu_type)
    return name.lower()


class ClusterState:
    """Tracks every node and GPU in the cluster and which job occupies it."""

    def __init__(self, nodes: Optional[Iterable[Node]] = None) -> None:
        self.nodes: Dict[int, Node] = {}
        self.gpus: Dict[int, GPU] = {}
        self._next_gpu_id = 0
        #: GPU ids per node, ordered by local GPU id (fixed once a node joins).
        self._node_gpu_ids: Dict[int, List[int]] = {}
        #: Free GPU ids per node (membership set; ordering comes from the list above).
        self._free_by_node: Dict[int, Set[int]] = {}
        #: job id -> set of GPU ids it currently holds.
        self._job_gpu_ids: Dict[int, Set[int]] = {}
        #: job id -> node ids where auxiliary CPU/memory is reserved for it.
        self._aux_nodes_by_job: Dict[int, Set[int]] = {}
        #: Cached counters kept in sync by every mutation.
        self._busy_count = 0
        self._free_healthy_count = 0
        self._free_healthy_by_type: Dict[str, int] = {}
        #: Compute-factor-weighted capacity counters (V100 = 1.0 per GPU).
        #: ``_healthy_capacity`` sums every GPU on a healthy node;
        #: ``_busy_capacity`` sums the assigned GPUs on healthy nodes.  Both
        #: are maintained by the same mutations as the unit counters, so the
        #: capacity-weighted utilisation of a heterogeneous cluster is O(1).
        self._busy_capacity = 0.0
        self._healthy_capacity = 0.0
        #: Version stamps consumed by the execution model's rate cache: the
        #: membership version bumps on any node add/remove/health change, a
        #: job's allocation version bumps whenever its GPU set changes.  A
        #: job's effective rate is a pure function of state covered by these
        #: two stamps (its GPUs, their types, its nodes' bandwidths), so a
        #: cache entry is valid exactly while both are unchanged.
        self.membership_version = 0
        self._alloc_version: Dict[int, int] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)

    # ------------------------------------------------------------------
    # Cluster management (add/remove nodes, failures)
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> List[int]:
        """Register a node and create GPU rows for it; returns new global GPU ids."""
        self._adopt_node(node)
        new_ids = []
        for local_id in range(node.num_gpus):
            gpu = GPU(
                gpu_id=self._next_gpu_id,
                node_id=node.node_id,
                local_gpu_id=local_id,
                gpu_type=node.gpu_type,
            )
            self._register_gpu(gpu)
            new_ids.append(gpu.gpu_id)
            self._next_gpu_id += 1
        return new_ids

    def _adopt_node(self, node: Node) -> None:
        """Register a node record without creating GPUs (snapshot/add_node helper)."""
        if node.node_id in self.nodes:
            raise AllocationError(f"node {node.node_id} is already part of the cluster")
        self.nodes[node.node_id] = node
        self._node_gpu_ids[node.node_id] = []
        self._free_by_node[node.node_id] = set()
        self.membership_version += 1

    def _register_gpu(self, gpu: GPU) -> None:
        """Index one GPU row (free or already assigned) under its node."""
        if gpu.node_id not in self.nodes:
            raise UnknownNodeError(gpu.node_id)
        node = self.nodes[gpu.node_id]
        self.gpus[gpu.gpu_id] = gpu
        ids = self._node_gpu_ids[gpu.node_id]
        ids.append(gpu.gpu_id)
        ids.sort(key=lambda g: self.gpus[g].local_gpu_id)
        if not node.failed:
            self._healthy_capacity += gpu.gpu_type.compute_factor
        if gpu.is_free:
            self._free_by_node[gpu.node_id].add(gpu.gpu_id)
            if not node.failed:
                self._free_healthy_count += 1
                key = gpu_type_key(gpu.gpu_type)
                self._free_healthy_by_type[key] = self._free_healthy_by_type.get(key, 0) + 1
        else:
            self._job_gpu_ids.setdefault(gpu.job_id, set()).add(gpu.gpu_id)
            self._busy_count += 1
            if not node.failed:
                self._busy_capacity += gpu.gpu_type.compute_factor

    def remove_node(self, node_id: int) -> List[int]:
        """Remove a node (e.g. on permanent failure); returns ids of evicted jobs.

        Jobs that had GPUs on the node lose their *entire* allocation (a gang
        job cannot keep running with a missing shard): their GPUs on surviving
        nodes are freed and every auxiliary CPU/memory reservation they hold --
        on this node or any other -- is released, so an eviction never leaks
        per-node aux bookkeeping.  Callers are responsible for resetting the
        evicted jobs' own ``allocated_gpus``/status (the scheduling loop does
        this by preempting them).
        """
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        node = self.nodes[node_id]
        evicted_jobs: List[int] = []
        for gpu_id in self._node_gpu_ids[node_id]:
            job_id = self.gpus[gpu_id].job_id
            if job_id is not None and job_id not in evicted_jobs:
                evicted_jobs.append(job_id)
        # Free each evicted job's full allocation (including GPUs on other
        # nodes) and its aux reservations everywhere.
        for job_id in evicted_jobs:
            self.release_job(job_id)
        # Drop any remaining aux bookkeeping that pointed at this node.
        for job_id in node.aux_job_ids():
            node.release_aux(job_id)
            nodes_for_job = self._aux_nodes_by_job.get(job_id)
            if nodes_for_job is not None:
                nodes_for_job.discard(node_id)
                if not nodes_for_job:
                    del self._aux_nodes_by_job[job_id]
        # Remove the node's (now all free) GPUs from the indexes.
        for gpu_id in self._node_gpu_ids[node_id]:
            del self.gpus[gpu_id]
            if not node.failed:
                self._free_healthy_count -= 1
                key = gpu_type_key(node.gpu_type)
                self._free_healthy_by_type[key] -= 1
                self._healthy_capacity -= node.gpu_type.compute_factor
        del self._node_gpu_ids[node_id]
        del self._free_by_node[node_id]
        del self.nodes[node_id]
        self.membership_version += 1
        return evicted_jobs

    def mark_node_failed(self, node_id: int) -> List[int]:
        """Mark a node failed without removing it; returns jobs running on it."""
        node = self.node(node_id)
        affected = sorted(
            {
                self.gpus[g].job_id
                for g in self._node_gpu_ids[node_id]
                if self.gpus[g].job_id is not None
            }
        )
        if not node.failed:
            node.failed = True
            free_here = len(self._free_by_node[node_id])
            self._free_healthy_count -= free_here
            key = gpu_type_key(node.gpu_type)
            self._free_healthy_by_type[key] = (
                self._free_healthy_by_type.get(key, 0) - free_here
            )
            factor = node.gpu_type.compute_factor
            total_here = len(self._node_gpu_ids[node_id])
            self._healthy_capacity -= factor * total_here
            self._busy_capacity -= factor * (total_here - free_here)
            self.membership_version += 1
        return affected

    def mark_node_recovered(self, node_id: int) -> None:
        """Bring a failed node back into the schedulable pool."""
        node = self.node(node_id)
        if not node.failed:
            return
        node.failed = False
        free_here = len(self._free_by_node[node_id])
        self._free_healthy_count += free_here
        key = gpu_type_key(node.gpu_type)
        self._free_healthy_by_type[key] = self._free_healthy_by_type.get(key, 0) + free_here
        factor = node.gpu_type.compute_factor
        total_here = len(self._node_gpu_ids[node_id])
        self._healthy_capacity += factor * total_here
        self._busy_capacity += factor * (total_here - free_here)
        self.membership_version += 1

    def node(self, node_id: int) -> Node:
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Queries used by scheduling and placement policies
    # ------------------------------------------------------------------

    @property
    def total_gpus(self) -> int:
        return len(self.gpus)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def active_nodes(self) -> List[Node]:
        """Nodes that have not been marked failed."""
        return [n for n in self.nodes.values() if not n.failed]

    def free_gpus(self, gpu_type: Optional[Union[str, GPUType]] = None) -> List[GPU]:
        """All unassigned GPUs on healthy nodes, optionally filtered by type."""
        wanted = gpu_type_key(gpu_type) if gpu_type is not None else None
        out: List[int] = []
        for node_id, node in self.nodes.items():
            if node.failed:
                continue
            if wanted is not None and gpu_type_key(node.gpu_type) != wanted:
                continue
            out.extend(self._free_by_node[node_id])
        return [self.gpus[g] for g in sorted(out)]

    def num_free_gpus(self, gpu_type: Optional[Union[str, GPUType]] = None) -> int:
        """Count of free GPUs on healthy nodes; O(1) via the cached counters."""
        if gpu_type is None:
            return self._free_healthy_count
        return self._free_healthy_by_type.get(gpu_type_key(gpu_type), 0)

    def free_gpus_by_node(self) -> Dict[int, List[GPU]]:
        """Free GPUs on healthy nodes grouped per node, ordered by local GPU id.

        This is the bulk query placement policies build their availability view
        from; it costs O(free GPUs), not O(total GPUs).
        """
        out: Dict[int, List[GPU]] = {}
        for node_id, node in self.nodes.items():
            if node.failed:
                continue
            free_ids = self._free_by_node[node_id]
            if not free_ids:
                continue
            out[node_id] = [
                self.gpus[g] for g in self._node_gpu_ids[node_id] if g in free_ids
            ]
        return out

    def gpus_on_node(self, node_id: int) -> List[GPU]:
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        return [self.gpus[g] for g in self._node_gpu_ids[node_id]]

    def free_gpus_on_node(self, node_id: int) -> List[GPU]:
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        free_ids = self._free_by_node[node_id]
        return [self.gpus[g] for g in self._node_gpu_ids[node_id] if g in free_ids]

    def gpus_for_job(self, job_id: int) -> List[GPU]:
        return [self.gpus[g] for g in sorted(self._job_gpu_ids.get(job_id, ()))]

    def num_gpus_for_job(self, job_id: int) -> int:
        """O(1) count of GPUs a job currently holds."""
        held = self._job_gpu_ids.get(job_id)
        return len(held) if held is not None else 0

    def nodes_for_job(self, job_id: int) -> List[int]:
        """Distinct node ids hosting a job, sorted; empty if the job is not placed."""
        return sorted({self.gpus[g].node_id for g in self._job_gpu_ids.get(job_id, ())})

    def job_is_consolidated(self, job_id: int) -> bool:
        """True when all of a job's GPUs are on a single node."""
        return len(self.nodes_for_job(job_id)) <= 1

    def jobs_with_allocations(self) -> List[int]:
        """Ids of jobs currently holding at least one GPU, sorted."""
        return sorted(self._job_gpu_ids)

    def alloc_version(self, job_id: int) -> int:
        """Monotonic stamp of a job's allocation (bumps on assign/release)."""
        return self._alloc_version.get(job_id, 0)

    def gpu(self, gpu_id: int) -> GPU:
        if gpu_id not in self.gpus:
            raise AllocationError(f"unknown GPU id {gpu_id}")
        return self.gpus[gpu_id]

    # ------------------------------------------------------------------
    # Assignment bookkeeping
    # ------------------------------------------------------------------

    def assign(self, job_id: int, gpu_ids: Sequence[int]) -> None:
        """Assign the given GPUs to a job.

        All GPUs must currently be free (and distinct); the whole assignment is
        validated before any index is touched so the cluster state never ends
        up half-updated.
        """
        if not gpu_ids:
            return  # no-op, and no phantom entry in the job->GPU index
        seen: Set[int] = set()
        for gpu_id in gpu_ids:
            gpu = self.gpu(gpu_id)
            if not gpu.is_free or gpu_id in seen:
                owner = job_id if gpu_id in seen else gpu.job_id
                raise AllocationError(
                    f"GPU {gpu_id} is already assigned to job {owner}, "
                    f"cannot assign to job {job_id}"
                )
            seen.add(gpu_id)
        held = self._job_gpu_ids.setdefault(job_id, set())
        self._alloc_version[job_id] = self._alloc_version.get(job_id, 0) + 1
        for gpu_id in gpu_ids:
            gpu = self.gpus[gpu_id]
            gpu.job_id = job_id
            held.add(gpu_id)
            self._free_by_node[gpu.node_id].discard(gpu_id)
            self._busy_count += 1
            node = self.nodes[gpu.node_id]
            if not node.failed:
                self._free_healthy_count -= 1
                self._free_healthy_by_type[gpu_type_key(gpu.gpu_type)] -= 1
                self._busy_capacity += gpu.gpu_type.compute_factor

    def reserve_aux(self, job_id: int, node_id: int, cpus: float, mem_gb: float) -> None:
        """Reserve CPU/memory for a job on a node, tracking it for release.

        Launch mechanisms must go through this (rather than calling
        ``Node.allocate_aux`` directly) so :meth:`release_job` can release aux
        reservations in O(nodes hosting the job) instead of scanning the
        cluster.
        """
        self.node(node_id).allocate_aux(job_id, cpus, mem_gb)
        self._aux_nodes_by_job.setdefault(job_id, set()).add(node_id)

    def release_job(self, job_id: int) -> List[int]:
        """Free every GPU (and auxiliary resources) held by a job; returns freed GPU ids."""
        freed = sorted(self._job_gpu_ids.pop(job_id, set()))
        aux_nodes = self._aux_nodes_by_job.pop(job_id, set())
        if freed:
            self._alloc_version[job_id] = self._alloc_version.get(job_id, 0) + 1
        for gpu_id in freed:
            gpu = self.gpus[gpu_id]
            gpu.job_id = None
            self._free_by_node[gpu.node_id].add(gpu_id)
            self._busy_count -= 1
            node = self.nodes[gpu.node_id]
            if not node.failed:
                self._free_healthy_count += 1
                key = gpu_type_key(gpu.gpu_type)
                self._free_healthy_by_type[key] = self._free_healthy_by_type.get(key, 0) + 1
                self._busy_capacity -= gpu.gpu_type.compute_factor
            # Defensive: cover aux reserved outside reserve_aux on hosting nodes.
            aux_nodes.add(gpu.node_id)
        for node_id in sorted(aux_nodes):
            if node_id in self.nodes:
                self.nodes[node_id].release_aux(job_id)
        return freed

    def utilization(self) -> float:
        """Fraction of GPUs currently assigned to some job."""
        if not self.gpus:
            return 0.0
        return self._busy_count / len(self.gpus)

    def healthy_capacity(self) -> float:
        """Compute-factor-weighted capacity of all GPUs on healthy nodes; O(1)."""
        return self._healthy_capacity

    def busy_capacity(self) -> float:
        """Compute-factor-weighted capacity of assigned GPUs on healthy nodes; O(1)."""
        return self._busy_capacity

    def capacity_utilization(self) -> float:
        """Fraction of the healthy, compute-weighted capacity currently in use.

        Unlike :meth:`utilization` this discounts failed nodes (capacity the
        scheduler cannot use should not count against it) and weighs each GPU
        by its generation's compute factor, so an A100 sitting idle costs more
        than an idle K80 -- the number scenario reports aggregate over time.
        """
        if self._healthy_capacity <= 0:
            return 0.0
        return self._busy_capacity / self._healthy_capacity

    # ------------------------------------------------------------------
    # Tabular view (the Blox GPU dataframe)
    # ------------------------------------------------------------------

    def gpu_table(self) -> List[Dict[str, object]]:
        """Return the per-GPU table as a list of dicts (one row per GPU)."""
        rows = []
        for gpu in sorted(self.gpus.values(), key=lambda g: g.gpu_id):
            rows.append(
                {
                    "node_id": gpu.node_id,
                    "gpu_id": gpu.gpu_id,
                    "local_gpu_id": gpu.local_gpu_id,
                    "gpu_type": gpu.gpu_type.name,
                    "state": gpu.state,
                    "job_id": gpu.job_id,
                }
            )
        return rows

    def snapshot(self) -> "ClusterState":
        """Deep copy used by shadow simulations (synthesizer).

        Built entirely from public APIs: nodes are cloned via
        :meth:`~repro.cluster.node.Node.clone` (which replays aux reservations
        through ``allocate_aux``) and GPUs re-registered through the same
        indexing path the live state uses.
        """
        return self.copy_as(type(self))

    def copy_as(self, cluster_cls: type) -> "ClusterState":
        """Deep copy into a (possibly different) ``ClusterState`` subclass.

        Used by :meth:`snapshot` and by the benchmark to rebuild a cluster as
        the seed-cost :class:`~repro.bench.legacy.LegacyClusterState`.
        """
        clone = cluster_cls()
        for node in self.nodes.values():
            clone._adopt_node(node.clone())
        for gpu in sorted(self.gpus.values(), key=lambda g: g.gpu_id):
            clone._register_gpu(
                GPU(
                    gpu_id=gpu.gpu_id,
                    node_id=gpu.node_id,
                    local_gpu_id=gpu.local_gpu_id,
                    gpu_type=gpu.gpu_type,
                    job_id=gpu.job_id,
                )
            )
        clone._next_gpu_id = self._next_gpu_id
        clone._aux_nodes_by_job = {
            job_id: set(node_ids) for job_id, node_ids in self._aux_nodes_by_job.items()
        }
        return clone

    # ------------------------------------------------------------------
    # Invariant checking (test support)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Recompute every index from the raw GPU rows and assert they agree.

        Raises ``AssertionError`` on any drift; used by the test suite after
        every mutation sequence.
        """
        busy = 0
        free_healthy = 0
        free_by_type: Dict[str, int] = {}
        job_gpus: Dict[int, Set[int]] = {}
        healthy_capacity = 0.0
        busy_capacity = 0.0
        for gpu in self.gpus.values():
            assert gpu.node_id in self.nodes, f"GPU {gpu.gpu_id} on unknown node"
            node = self.nodes[gpu.node_id]
            in_free = gpu.gpu_id in self._free_by_node[gpu.node_id]
            assert in_free == gpu.is_free, f"free index wrong for GPU {gpu.gpu_id}"
            if not node.failed:
                healthy_capacity += gpu.gpu_type.compute_factor
            if gpu.is_free:
                if not node.failed:
                    free_healthy += 1
                    key = gpu_type_key(gpu.gpu_type)
                    free_by_type[key] = free_by_type.get(key, 0) + 1
            else:
                busy += 1
                job_gpus.setdefault(gpu.job_id, set()).add(gpu.gpu_id)
                if not node.failed:
                    busy_capacity += gpu.gpu_type.compute_factor
        assert busy == self._busy_count, f"busy {busy} != cached {self._busy_count}"
        assert free_healthy == self._free_healthy_count, (
            f"free {free_healthy} != cached {self._free_healthy_count}"
        )
        # The cached capacities accumulate the same values in a different
        # order (and bulk multiples on fail/recover), so compare with a
        # tolerance instead of bit-exactly.
        assert math.isclose(
            healthy_capacity, self._healthy_capacity, rel_tol=1e-9, abs_tol=1e-9
        ), f"healthy capacity {healthy_capacity} != cached {self._healthy_capacity}"
        assert math.isclose(
            busy_capacity, self._busy_capacity, rel_tol=1e-9, abs_tol=1e-9
        ), f"busy capacity {busy_capacity} != cached {self._busy_capacity}"
        cached_by_type = {k: v for k, v in self._free_healthy_by_type.items() if v}
        assert free_by_type == cached_by_type, (
            f"per-type free {free_by_type} != cached {cached_by_type}"
        )
        assert job_gpus == {k: v for k, v in self._job_gpu_ids.items() if v}, (
            "job->GPU index drifted"
        )
        for node_id in self.nodes:
            listed = self._node_gpu_ids[node_id]
            actual = sorted(
                (g.gpu_id for g in self.gpus.values() if g.node_id == node_id),
                key=lambda g: self.gpus[g].local_gpu_id,
            )
            assert listed == actual, f"per-node GPU list drifted for node {node_id}"
        for job_id, node_ids in self._aux_nodes_by_job.items():
            for node_id in sorted(node_ids):
                assert node_id in self.nodes, (
                    f"aux index references removed node {node_id} for job {job_id}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ClusterState(nodes={self.num_nodes}, gpus={self.total_gpus}, "
            f"free={self.num_free_gpus()})"
        )
