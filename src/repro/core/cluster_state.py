"""``ClusterState``: the shared view of machines and accelerators.

Blox stores the cluster state in a tabular structure with one row per GPU
(node id, global GPU id, local GPU id, GPU type, state, jobs running) plus a
per-node dictionary of hardware facts.  This class provides the same view with
query helpers used by placement policies, along with assignment bookkeeping
that raises :class:`~repro.core.exceptions.AllocationError` on double
allocation so inconsistent placement decisions are caught immediately.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster.node import GPU, Node
from repro.core.exceptions import AllocationError, UnknownNodeError


class ClusterState:
    """Tracks every node and GPU in the cluster and which job occupies it."""

    def __init__(self, nodes: Optional[Iterable[Node]] = None) -> None:
        self.nodes: Dict[int, Node] = {}
        self.gpus: Dict[int, GPU] = {}
        self._next_gpu_id = 0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)

    # ------------------------------------------------------------------
    # Cluster management (add/remove nodes)
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> List[int]:
        """Register a node and create GPU rows for it; returns new global GPU ids."""
        if node.node_id in self.nodes:
            raise AllocationError(f"node {node.node_id} is already part of the cluster")
        self.nodes[node.node_id] = node
        new_ids = []
        for local_id in range(node.num_gpus):
            gpu = GPU(
                gpu_id=self._next_gpu_id,
                node_id=node.node_id,
                local_gpu_id=local_id,
                gpu_type=node.gpu_type,
            )
            self.gpus[gpu.gpu_id] = gpu
            new_ids.append(gpu.gpu_id)
            self._next_gpu_id += 1
        return new_ids

    def remove_node(self, node_id: int) -> List[int]:
        """Remove a node (e.g. on failure); returns ids of jobs that were running on it."""
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        evicted_jobs = []
        for gpu_id in [g.gpu_id for g in self.gpus.values() if g.node_id == node_id]:
            gpu = self.gpus.pop(gpu_id)
            if gpu.job_id is not None and gpu.job_id not in evicted_jobs:
                evicted_jobs.append(gpu.job_id)
        del self.nodes[node_id]
        return evicted_jobs

    def mark_node_failed(self, node_id: int) -> List[int]:
        """Mark a node failed without removing it; returns jobs running on it."""
        node = self.node(node_id)
        node.failed = True
        affected = sorted(
            {g.job_id for g in self.gpus.values() if g.node_id == node_id and g.job_id is not None}
        )
        return affected

    def node(self, node_id: int) -> Node:
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Queries used by scheduling and placement policies
    # ------------------------------------------------------------------

    @property
    def total_gpus(self) -> int:
        return len(self.gpus)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def active_nodes(self) -> List[Node]:
        """Nodes that have not been marked failed."""
        return [n for n in self.nodes.values() if not n.failed]

    def free_gpus(self, gpu_type: Optional[str] = None) -> List[GPU]:
        """All unassigned GPUs on healthy nodes, optionally filtered by type."""
        out = []
        for gpu in self.gpus.values():
            if not gpu.is_free:
                continue
            if self.nodes[gpu.node_id].failed:
                continue
            if gpu_type is not None and gpu.gpu_type.name != gpu_type.lower():
                continue
            out.append(gpu)
        return sorted(out, key=lambda g: g.gpu_id)

    def num_free_gpus(self, gpu_type: Optional[str] = None) -> int:
        return len(self.free_gpus(gpu_type))

    def gpus_on_node(self, node_id: int) -> List[GPU]:
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        return sorted(
            (g for g in self.gpus.values() if g.node_id == node_id),
            key=lambda g: g.local_gpu_id,
        )

    def free_gpus_on_node(self, node_id: int) -> List[GPU]:
        return [g for g in self.gpus_on_node(node_id) if g.is_free]

    def gpus_for_job(self, job_id: int) -> List[GPU]:
        return sorted(
            (g for g in self.gpus.values() if g.job_id == job_id),
            key=lambda g: g.gpu_id,
        )

    def nodes_for_job(self, job_id: int) -> List[int]:
        """Distinct node ids hosting a job, sorted; empty if the job is not placed."""
        return sorted({g.node_id for g in self.gpus_for_job(job_id)})

    def job_is_consolidated(self, job_id: int) -> bool:
        """True when all of a job's GPUs are on a single node."""
        return len(self.nodes_for_job(job_id)) <= 1

    def gpu(self, gpu_id: int) -> GPU:
        if gpu_id not in self.gpus:
            raise AllocationError(f"unknown GPU id {gpu_id}")
        return self.gpus[gpu_id]

    # ------------------------------------------------------------------
    # Assignment bookkeeping
    # ------------------------------------------------------------------

    def assign(self, job_id: int, gpu_ids: Sequence[int]) -> None:
        """Assign the given GPUs to a job.

        All GPUs must currently be free; a partial assignment is rolled back on
        error so the cluster state never ends up half-updated.
        """
        taken: List[int] = []
        try:
            for gpu_id in gpu_ids:
                gpu = self.gpu(gpu_id)
                if not gpu.is_free:
                    raise AllocationError(
                        f"GPU {gpu_id} is already assigned to job {gpu.job_id}, "
                        f"cannot assign to job {job_id}"
                    )
                gpu.job_id = job_id
                taken.append(gpu_id)
        except AllocationError:
            for gpu_id in taken:
                self.gpus[gpu_id].job_id = None
            raise

    def release_job(self, job_id: int) -> List[int]:
        """Free every GPU (and auxiliary resources) held by a job; returns freed GPU ids."""
        freed = []
        for gpu in self.gpus_for_job(job_id):
            gpu.job_id = None
            freed.append(gpu.gpu_id)
        for node in self.nodes.values():
            node.release_aux(job_id)
        return freed

    def utilization(self) -> float:
        """Fraction of GPUs currently assigned to some job."""
        if not self.gpus:
            return 0.0
        busy = sum(1 for g in self.gpus.values() if not g.is_free)
        return busy / len(self.gpus)

    # ------------------------------------------------------------------
    # Tabular view (the Blox GPU dataframe)
    # ------------------------------------------------------------------

    def gpu_table(self) -> List[Dict[str, object]]:
        """Return the per-GPU table as a list of dicts (one row per GPU)."""
        rows = []
        for gpu in sorted(self.gpus.values(), key=lambda g: g.gpu_id):
            rows.append(
                {
                    "node_id": gpu.node_id,
                    "gpu_id": gpu.gpu_id,
                    "local_gpu_id": gpu.local_gpu_id,
                    "gpu_type": gpu.gpu_type.name,
                    "state": gpu.state,
                    "job_id": gpu.job_id,
                }
            )
        return rows

    def snapshot(self) -> "ClusterState":
        """Deep copy used by shadow simulations (synthesizer)."""
        clone = ClusterState()
        for node in self.nodes.values():
            new_node = Node(
                node_id=node.node_id,
                num_gpus=node.num_gpus,
                gpu_type_name=node.gpu_type_name,
                cpu_cores=node.cpu_cores,
                mem_gb=node.mem_gb,
                network_bw_gbps=node.network_bw_gbps,
                topology=node.topology,
                failed=node.failed,
            )
            new_node.cpu_allocated = node.cpu_allocated
            new_node.mem_allocated = node.mem_allocated
            new_node._cpu_by_job = dict(node._cpu_by_job)
            new_node._mem_by_job = dict(node._mem_by_job)
            clone.nodes[new_node.node_id] = new_node
        for gpu in self.gpus.values():
            clone.gpus[gpu.gpu_id] = GPU(
                gpu_id=gpu.gpu_id,
                node_id=gpu.node_id,
                local_gpu_id=gpu.local_gpu_id,
                gpu_type=gpu.gpu_type,
                job_id=gpu.job_id,
            )
        clone._next_gpu_id = self._next_gpu_id
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ClusterState(nodes={self.num_nodes}, gpus={self.total_gpus}, "
            f"free={self.num_free_gpus()})"
        )
