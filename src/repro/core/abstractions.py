"""The seven Blox abstractions as Python base classes.

Blox decomposes a DL scheduler into (Figure 1 of the paper):

1. **Job admission policy** -- gatekeeper for newly arriving jobs.
2. **Cluster management** -- node add/remove, failure detection.
3. **Job scheduling policy** -- prioritises runnable jobs each round.
4. **Job placement policy** -- maps prioritised jobs to concrete GPUs.
5. **Job launch mechanism** -- starts jobs on their assigned workers.
6. **Job preemption and restart** -- checkpoints and stops jobs losing GPUs.
7. **Metric collection** -- aggregates job- and cluster-level metrics.

Every abstraction receives the two shared data structures
(:class:`~repro.core.job_state.JobState` and
:class:`~repro.core.cluster_state.ClusterState`) plus abstraction-specific
inputs, matching Table 6 of the paper.  Concrete instances live in
:mod:`repro.policies`; the simulation and deployment runtimes call them through
these interfaces, which is what makes policies reusable across both paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.core.job_state import JobState, JobStateObserver

__all__ = [
    "AdmissionPolicy",
    "ClusterManager",
    "JobLauncher",
    "JobStateObserver",
    "MetricCollector",
    "PlacementDecision",
    "PlacementPolicy",
    "PreemptionMechanism",
    "ScheduleEntry",
    "SchedulingPolicy",
    "TerminationPolicy",
]


@dataclass(frozen=True)
class ScheduleEntry:
    """One row of the priority list produced by a scheduling policy.

    ``gpu_demand`` is the number of GPUs the policy wants to give the job this
    round.  For gang-scheduled policies this equals the job's request; elastic
    policies (Optimus, Pollux) may ask for more or fewer GPUs.
    ``gpu_type`` optionally pins the job to a GPU type (Gavel).
    """

    job_id: int
    gpu_demand: int
    gpu_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.gpu_demand < 0:
            raise ValueError(f"gpu_demand must be >= 0, got {self.gpu_demand}")


@dataclass
class PlacementDecision:
    """Output of a placement policy for one round.

    ``to_launch`` maps job id -> concrete GPU ids the job should run on during
    the coming round (this includes jobs that keep running on the same GPUs).
    ``to_suspend`` lists jobs running in the previous round that must be
    preempted (because they were not selected, or their placement changed).
    """

    to_launch: Dict[int, List[int]] = field(default_factory=dict)
    to_suspend: List[int] = field(default_factory=list)

    def launched_job_ids(self) -> List[int]:
        return sorted(self.to_launch)


class AdmissionPolicy:
    """Decides which newly submitted jobs are allowed to enter the schedulable pool.

    ``accept`` is called once per round with the jobs that arrived since the
    previous round; it may hold jobs back internally (admission queue) and
    release them in a later round, which is how the threshold policies used in
    the composition case study (§5.1) work.
    """

    name = "admission"

    #: Whether the simulator may skip this policy's per-round calls during
    #: event-free stretches (see :class:`repro.simulator.engine.Simulator`).
    #: Policies whose behaviour depends on being invoked every round must set
    #: this to ``False``.
    supports_fast_forward = True

    #: Whether ``accept([])`` with an empty pending queue is a guaranteed
    #: no-op, so the call can be skipped while the admission pipeline is
    #: quiescent.  Subclasses with per-round side effects must set ``False``.
    steady_state_safe = True

    def accept(
        self,
        new_jobs: Sequence[Job],
        cluster_state: ClusterState,
        job_state: JobState,
    ) -> List[Job]:
        raise NotImplementedError

    def pending_jobs(self) -> List[Job]:
        """Jobs currently held back by the policy (empty for accept-all)."""
        return []


class SchedulingPolicy:
    """Orders runnable jobs by priority and decides their GPU demand for the round."""

    name = "scheduling"

    #: Whether the simulator may skip this policy's ``schedule`` calls while
    #: the cluster is idle (no active jobs).  Policies with per-call internal
    #: clocks (e.g. the synthesizer's evaluation counter) must set ``False``.
    supports_fast_forward = True

    #: Whether, when every active job is RUNNING with exactly its requested
    #: gang and nothing else can change, this policy is guaranteed to re-emit
    #: the same demands (so rescheduling is a no-op and the round can be
    #: skipped).  Conservatively ``False``; audited stateless gang policies
    #: (FIFO, SRTF, LAS) opt in.
    steady_state_safe = False

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        raise NotImplementedError

    def next_policy_event_time(
        self,
        job_state: JobState,
        cluster_state: ClusterState,
        now: float,
    ) -> Optional[float]:
        """Earliest future time at which this policy's decision may change.

        The contract: assuming no *external* event occurs in the meantime --
        no arrival, completion, admission release or cluster membership change
        -- the policy guarantees that every ``schedule()`` call at a time
        strictly before the returned value produces exactly the list it
        produced this round.  The simulator uses this (together with the
        observation that applying an unchanged schedule to unchanged state is
        a no-op) to fast-forward elastic and discretised policies through
        event-free stretches; see
        :meth:`repro.simulator.engine.Simulator._fast_forward`.

        Returning ``now`` (the default) declares "my decision may change any
        round", which disables decision-stable skipping for this policy.
        ``None`` means "never, absent external events" (policies whose
        decision is a pure function of the job set, statuses, profiles and
        allocations -- FIFO, Pollux).  Discretised policies return their next
        internal event: Tiresias' queue-demotion crossings and
        starvation-promotion deadlines are computable in closed form from
        attained service and the thresholds.
        """
        return now


class PlacementPolicy:
    """Maps the priority list to concrete GPUs and decides which jobs to suspend."""

    name = "placement"

    #: See :attr:`SchedulingPolicy.supports_fast_forward`.
    supports_fast_forward = True

    #: Whether a steady-state round (all jobs kept) is a guaranteed no-op for
    #: this policy.  ``BasePlacementPolicy`` sets this to ``True``.
    steady_state_safe = False

    def place(
        self,
        schedule: Sequence[ScheduleEntry],
        cluster_state: ClusterState,
        job_state: JobState,
    ) -> PlacementDecision:
        raise NotImplementedError


class ClusterManager:
    """Tracks cluster membership: node arrivals, failures and removals."""

    name = "cluster-management"

    def update(self, cluster_state: ClusterState, current_time: float) -> List[int]:
        """Apply membership changes; returns job ids that must be rescheduled."""
        return []

    def next_event_time(self, current_time: float) -> Optional[float]:
        """Earliest future time at which :meth:`update` may change anything.

        ``None`` means "no scheduled events ever" (the default manager never
        changes membership).  The simulator uses this to fast-forward through
        event-free stretches.  Subclasses that override :meth:`update` without
        overriding this method get event skipping disabled automatically (the
        simulator cannot predict their events); override it -- returning
        ``current_time`` disables skipping explicitly, a concrete event time
        re-enables it -- to opt back in.
        """
        return None

    def drain_applied(self) -> List[Tuple[float, object, Tuple[int, ...]]]:
        """Events applied since the last drain, for the ``cluster`` trace kind.

        Returns ``(applied time, event, evicted job ids)`` triples; managers
        without an event stream (this default) report nothing.  The engine
        drains once per round right after :meth:`update`, so emission is
        read-only and schedule-neutral; wrapper managers must delegate to
        their inner manager or the timeline's firings disappear from traces.
        """
        return []


class MetricCollector:
    """Aggregates job- and cluster-level metrics at the end of every round."""

    name = "metric-collection"

    def collect(
        self,
        job_state: JobState,
        cluster_state: ClusterState,
        current_time: float,
    ) -> None:
        return None


class JobLauncher:
    """Starts (or resumes) a job on its assigned GPUs.

    In simulation this only updates job state and charges a launch overhead; the
    deployment runtime instead instructs the per-node WorkerManager.
    """

    name = "job-launch"

    def launch(
        self,
        job: Job,
        gpu_ids: Sequence[int],
        cluster_state: ClusterState,
        current_time: float,
    ) -> None:
        raise NotImplementedError


class PreemptionMechanism:
    """Checkpoints and stops a job that loses its allocation this round."""

    name = "job-preemption"

    def preempt(self, job: Job, cluster_state: ClusterState, current_time: float) -> None:
        raise NotImplementedError


class TerminationPolicy:
    """Decides when a job is done.

    The default behaviour (epoch-based) finishes a job when it has executed the
    work the user asked for; the loss-based policy of §5.3 terminates earlier
    once the job's loss has converged.
    """

    name = "termination"

    def work_target(self, job: Job) -> float:
        """Seconds of (requested-allocation) work after which the job is complete."""
        raise NotImplementedError

    def is_complete(self, job: Job) -> bool:
        return job.work_done >= self.work_target(job) - 1e-9
