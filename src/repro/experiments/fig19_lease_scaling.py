"""Figure 19: lease-renewal scalability -- central vs optimistic protocol.

The paper's scalability experiment grants one single-GPU job per GPU and
measures the critical-path latency of one round of lease traffic as the
cluster grows.  Central renewal serialises a check/renew pair per leased GPU
on the scheduler, so its latency grows linearly with cluster size; optimistic
renewal only touches revoked jobs (one scheduler-issued revoke each, peers
reached worker-to-worker), so its latency depends on the revocation count
alone and stays flat as the cluster scales.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.experiments.harness import ExperimentTable
from repro.runtime.lease import build_lease_setup
from repro.runtime.rpc import RpcCostModel

DEFAULT_SIZES = (4, 8, 16, 32, 64, 128)
DEFAULT_REVOCATIONS = (0, 2, 8)


def measure_lease_round(
    num_nodes: int,
    protocol: str,
    revocations: int,
    gpus_per_node: int = 4,
    cost_model: RpcCostModel = RpcCostModel(),
) -> float:
    """Critical-path latency (ms) of one renewal round with ``revocations`` revokes.

    A fresh Fig. 19 setup (one single-GPU job per GPU) is built per
    measurement because a renewal round mutates lease state.  Revoked jobs
    are spread one per node so worker-side handling never serialises on a
    single node -- the scheduler side is what the figure compares.
    """
    manager, _workers, _channel = build_lease_setup(
        num_nodes, gpus_per_node=gpus_per_node, cost_model=cost_model, protocol=protocol
    )
    if revocations > num_nodes * gpus_per_node:
        raise ValueError("cannot revoke more jobs than were granted")
    # Round-robin across nodes: job ids are laid out gpus_per_node per node,
    # so node i % num_nodes contributes its (i // num_nodes)-th job.
    revoked = [
        (i % num_nodes) * gpus_per_node + i // num_nodes for i in range(revocations)
    ]
    return manager.renewal_round(revoked)


def run_fig19(
    sizes: Sequence[int] = DEFAULT_SIZES,
    revocations: Sequence[int] = DEFAULT_REVOCATIONS,
    gpus_per_node: int = 4,
) -> ExperimentTable:
    """Lease-round latency across cluster sizes for both protocols."""
    table = ExperimentTable(
        name="fig19-lease-scaling",
        description=(
            "Critical-path latency (ms) of one lease-renewal round: central "
            "renewal grows with leased GPUs; optimistic renewal depends only "
            "on the number of revocations."
        ),
    )
    for num_nodes in sizes:
        for protocol in ("central", "optimistic"):
            for revoked in revocations:
                latency = measure_lease_round(
                    num_nodes, protocol, revoked, gpus_per_node=gpus_per_node
                )
                table.add_row(
                    protocol=protocol,
                    num_nodes=num_nodes,
                    num_gpus=num_nodes * gpus_per_node,
                    revocations=revoked,
                    latency_ms=latency,
                )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig19_lease_scaling",
        description="Reproduce the lease-renewal scalability comparison (Fig. 19).",
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument(
        "--revocations", type=int, nargs="+", default=list(DEFAULT_REVOCATIONS)
    )
    args = parser.parse_args(argv)
    print(run_fig19(sizes=args.sizes, revocations=args.revocations).to_text())
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
