"""Figures 12 and 13: composing FIFO admission control with LAS scheduling.

At high load, LAS keeps responsiveness low but repeatedly preempts admitted
jobs, inflating average JCT.  Composing a threshold admission policy in front
of LAS (admit new jobs only while the admitted GPU demand is below N times the
cluster size) trades some responsiveness for a better JCT.  Figure 12 runs the
Philly trace at 8 jobs/hour; Figure 13 repeats the experiment with an extra
spike of 16 short jobs during one hour of every day.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.policies.admission.accept_all import AcceptAll
from repro.policies.admission.threshold import ThresholdAdmission
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.las import LasScheduling
from repro.workloads.bursty import add_daily_spike
from repro.workloads.philly import generate_philly_trace

DEFAULT_THRESHOLDS = (None, 1.5, 1.2, 1.0)  # None means Accept-All


def _admission_factory(threshold: Optional[float]):
    if threshold is None:
        return AcceptAll
    return lambda: ThresholdAdmission(threshold_factor=threshold)


def _label(threshold: Optional[float]) -> str:
    return "accept-all" if threshold is None else f"accept-{threshold:g}x"


def run_fig12_13(
    thresholds: Sequence[Optional[float]] = DEFAULT_THRESHOLDS,
    jobs_per_hour: float = 8.0,
    num_jobs: int = 400,
    tracked_window: tuple = (80, 250),
    num_nodes: int = 32,
    seed: int = 17,
    round_duration: float = 300.0,
    with_spikes: bool = True,
    spike_jobs: int = 16,
) -> ExperimentTable:
    """Average JCT and responsiveness of LAS under different admission thresholds."""
    table = ExperimentTable(
        name="fig12-13-admission-composition",
        description=(
            "Average JCT and responsiveness (hours) when composing FIFO admission control "
            "with LAS scheduling, on the plain Philly trace (Fig. 12) and with daily spikes "
            "of short jobs (Fig. 13)."
        ),
    )
    base_trace = generate_philly_trace(
        num_jobs=num_jobs,
        jobs_per_hour=jobs_per_hour,
        seed=seed,
        tracked_window=tracked_window,
        median_duration_hours=2.5,
        duration_sigma=1.8,
    )
    # Track the same steady-state jobs in both workloads: spike jobs change the
    # arrival order, so index-based windows no longer select the right jobs.
    tracked_ids = base_trace.tracked_ids()
    workloads = {"philly": base_trace}
    if with_spikes:
        workloads["philly+spikes"] = add_daily_spike(
            base_trace, jobs_per_spike=spike_jobs, seed=seed
        )

    for workload_name, trace in workloads.items():
        for threshold in thresholds:
            spec = PolicySpec(
                label=f"las/{_label(threshold)}",
                scheduling=LasScheduling,
                placement=ConsolidatedPlacement,
                admission=_admission_factory(threshold),
            )
            result = run_policy(
                trace,
                spec,
                num_nodes=num_nodes,
                round_duration=round_duration,
                tracked_job_ids=tracked_ids,
            )
            table.add_row(
                workload=workload_name,
                admission=_label(threshold),
                avg_jct_hours=result.avg_jct() / 3600.0,
                avg_responsiveness_hours=result.avg_responsiveness() / 3600.0,
            )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_fig12_13().to_text())
