"""Figure 10: placement policies on a V100/10 Gbps cluster.

Tiresias' skew heuristic consolidates only high-skew jobs; on the P100 cluster
with 100 Gbps networking it was designed for, fragmenting the other jobs is
nearly free.  On V100 nodes with 10 Gbps links (more compute, less network)
fragmenting *any* distributed job hurts, so a blanket consolidated placement
wins at higher loads.  This experiment sweeps load on the Philly trace and
compares the two placement policies under the same (Tiresias) scheduling
policy, optionally on both hardware generations.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.placement.tiresias_placement import TiresiasPlacement
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.workloads.philly import generate_philly_trace

DEFAULT_LOADS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)


def run_fig10(
    loads_jobs_per_hour: Sequence[float] = DEFAULT_LOADS,
    num_jobs: int = 400,
    tracked_window: tuple = (80, 220),
    num_nodes: int = 32,
    gpu_type: str = "v100",
    network_bw_gbps: float = 10.0,
    seed: int = 11,
    round_duration: float = 300.0,
) -> ExperimentTable:
    """Average JCT of the Tiresias placement policy vs consolidate-everything."""
    table = ExperimentTable(
        name="fig10-placement-hardware",
        description=(
            "Average JCT (hours) of the Tiresias skew-heuristic placement vs consolidated "
            f"placement on a {gpu_type.upper()}/{network_bw_gbps:g} Gbps cluster as load varies."
        ),
        metadata={"gpu_type": gpu_type, "network_bw_gbps": network_bw_gbps},
    )
    placements = {
        "tiresias-placement": TiresiasPlacement,
        "consolidated": ConsolidatedPlacement,
    }
    for load in loads_jobs_per_hour:
        trace = generate_philly_trace(
            num_jobs=num_jobs, jobs_per_hour=load, seed=seed, tracked_window=tracked_window
        )
        for name, placement_factory in placements.items():
            result = run_policy(
                trace,
                PolicySpec(
                    label=name, scheduling=TiresiasScheduling, placement=placement_factory
                ),
                num_nodes=num_nodes,
                gpu_type=gpu_type,
                network_bw_gbps=network_bw_gbps,
                round_duration=round_duration,
            )
            fragmented = sum(
                1
                for job in result.tracked_jobs()
                if job.metrics.get("was_fragmented", False)
            )
            table.add_row(
                placement=name,
                jobs_per_hour=load,
                avg_jct_hours=result.avg_jct() / 3600.0,
                avg_responsiveness_hours=result.avg_responsiveness() / 3600.0,
                fragmented_jobs=fragmented,
            )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_fig10().to_text())
