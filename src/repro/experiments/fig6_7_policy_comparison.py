"""Figures 6 and 7: comparing FIFO, Tiresias and Optimus under varying load.

The paper sweeps the Philly-trace arrival rate from 1 to 9 jobs/hour on a
128-GPU cluster (consolidated placement for every policy) and reports average
JCT (Fig. 6) and average responsiveness (Fig. 7).  The qualitative findings it
highlights -- Optimus wins on JCT at low load; at high load Tiresias' JCT
exceeds FIFO's while its responsiveness stays low; FIFO's responsiveness is by
far the worst at high load -- are what the matching benchmark asserts.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling
from repro.policies.scheduling.optimus import OptimusScheduling
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.workloads.philly import generate_philly_trace

DEFAULT_LOADS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0)

#: Heavy-tailed duration parameters used for this sweep: long jobs carry enough
#: of the total work for the preemption-vs-ordering trade-off between FIFO and
#: LAS-style policies to be visible at high load (see DESIGN.md).
TRACE_KWARGS = {"median_duration_hours": 2.5, "duration_sigma": 1.8}


def default_policies() -> Dict[str, PolicySpec]:
    return {
        "fifo": PolicySpec(
            label="fifo", scheduling=FifoScheduling, placement=ConsolidatedPlacement
        ),
        "tiresias": PolicySpec(
            label="tiresias", scheduling=TiresiasScheduling, placement=ConsolidatedPlacement
        ),
        "optimus": PolicySpec(
            label="optimus", scheduling=OptimusScheduling, placement=ConsolidatedPlacement
        ),
    }


def run_fig6_7(
    loads_jobs_per_hour: Sequence[float] = DEFAULT_LOADS,
    num_jobs: int = 600,
    tracked_window: tuple = (100, 250),
    num_nodes: int = 32,
    seed: int = 7,
    round_duration: float = 300.0,
    policies: Dict[str, PolicySpec] = None,
) -> ExperimentTable:
    """Average JCT and responsiveness per (policy, load) pair."""
    table = ExperimentTable(
        name="fig6-7-policy-comparison",
        description=(
            "Average JCT and responsiveness (hours) for FIFO, Tiresias and Optimus on the "
            "Philly-like trace as the arrival rate varies (128-GPU cluster by default)."
        ),
    )
    policies = policies or default_policies()
    for load in loads_jobs_per_hour:
        trace = generate_philly_trace(
            num_jobs=num_jobs,
            jobs_per_hour=load,
            seed=seed,
            tracked_window=tracked_window,
            **TRACE_KWARGS,
        )
        for name, spec in policies.items():
            result = run_policy(trace, spec, num_nodes=num_nodes, round_duration=round_duration)
            table.add_row(
                policy=name,
                jobs_per_hour=load,
                avg_jct_hours=result.avg_jct() / 3600.0,
                avg_responsiveness_hours=result.avg_responsiveness() / 3600.0,
                avg_preemptions=sum(j.num_preemptions for j in result.tracked_jobs())
                / max(1, len(result.tracked_jobs())),
            )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_fig6_7().to_text())
