"""Figure 3: reproducing Pollux -- average JCT vs. scheduling interval.

The paper reruns the Pollux OSDI '21 experiment (their §5.3.2) in Blox and
compares against the Pollux artifact: average JCT on the Pollux trace as the
scheduling round length varies over 1/2/4/8 minutes, on a 64-GPU cluster.  The
two implementations agree within a few per cent.  Here the "author
implementation" is the independent reference simulator in
:mod:`repro.baselines.pollux_reference`.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.pollux_reference import simulate_pollux_reference
from repro.baselines.reference import average_jct
from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.pollux import PolluxScheduling
from repro.workloads.pollux_trace import generate_pollux_trace

DEFAULT_INTERVALS_MINUTES = (1.0, 2.0, 4.0, 8.0)


def run_fig3(
    intervals_minutes: Sequence[float] = DEFAULT_INTERVALS_MINUTES,
    num_jobs: int = 160,
    jobs_per_hour: float = 20.0,
    num_nodes: int = 16,
    seed: int = 0,
) -> ExperimentTable:
    """Average JCT of Pollux-in-Blox vs the reference Pollux for each interval."""
    table = ExperimentTable(
        name="fig3-pollux-repro",
        description=(
            "Average JCT (hours) of the Blox Pollux implementation vs an independent "
            "reference implementation while varying the scheduling interval."
        ),
    )
    trace = generate_pollux_trace(num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed)
    total_gpus = num_nodes * 4
    for minutes in intervals_minutes:
        round_duration = minutes * 60.0
        blox_result = run_policy(
            trace,
            PolicySpec(
                label="pollux-blox",
                scheduling=PolluxScheduling,
                placement=ConsolidatedPlacement,
            ),
            num_nodes=num_nodes,
            round_duration=round_duration,
        )
        reference_jobs = simulate_pollux_reference(
            trace.fresh_jobs(), total_gpus=total_gpus, round_duration=round_duration
        )
        blox_jct_h = blox_result.avg_jct() / 3600.0
        reference_jct_h = average_jct(reference_jobs) / 3600.0
        deviation = 0.0
        if reference_jct_h > 0:
            deviation = abs(blox_jct_h - reference_jct_h) / reference_jct_h
        table.add_row(
            interval_minutes=minutes,
            blox_avg_jct_hours=blox_jct_h,
            reference_avg_jct_hours=reference_jct_h,
            relative_deviation=deviation,
        )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_fig3().to_text())
