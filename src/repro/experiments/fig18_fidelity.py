"""Figure 18: simulation-vs-cluster fidelity of the shared scheduling loop.

The paper validates Blox's "same policy code in simulation and deployment"
claim by running identical workloads through the simulator and on a real
cluster and comparing JCT statistics.  Here the deployment path is the
in-process CentralScheduler (RPC launch/preempt, optimistic leases) driven by
the :class:`~repro.simulator.overheads.ClusterOverheadModel`, which adds the
profiled launch costs plus seeded run-to-run jitter -- the regime a real
cluster exhibits.  The experiment reports, per policy, average and p95 JCT
for both paths and their relative deviation, which should sit within a few
per cent (the paper reports <~5% average-JCT error).
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional, Sequence

from repro.cluster.builder import build_cluster
from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.metrics.summary import percentile
from repro.policies.placement.tiresias_placement import TiresiasPlacement
from repro.policies.scheduling.fifo import FifoScheduling
from repro.policies.scheduling.srtf import SrtfScheduling
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.runtime.central_scheduler import CentralScheduler
from repro.simulator.overheads import ClusterOverheadModel
from repro.workloads.philly import generate_philly_trace

POLICIES: Dict[str, PolicySpec] = {
    "fifo": PolicySpec(label="fifo", scheduling=FifoScheduling),
    "srtf": PolicySpec(label="srtf", scheduling=SrtfScheduling),
    "tiresias": PolicySpec(
        label="tiresias", scheduling=TiresiasScheduling, placement=TiresiasPlacement
    ),
}


def run_fig18(
    policies: Sequence[str] = ("fifo", "srtf", "tiresias"),
    num_jobs: int = 60,
    jobs_per_hour: float = 6.0,
    num_nodes: int = 8,
    seed: int = 0,
    jitter_seed: int = 1,
    round_duration: float = 300.0,
    lease_protocol: str = "optimistic",
) -> ExperimentTable:
    """Average/p95 JCT: plain simulation vs the deployment ("cluster") path."""
    table = ExperimentTable(
        name="fig18-fidelity",
        description=(
            "JCT statistics (hours) of the shared scheduling loop through plain "
            "simulation and through the RPC deployment path with cluster-style "
            "overheads and jitter; relative deviation per policy."
        ),
    )
    trace = generate_philly_trace(num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed)
    for name in policies:
        spec = POLICIES[name]
        sim = run_policy(
            trace,
            spec,
            num_nodes=num_nodes,
            round_duration=round_duration,
        )
        deployment = CentralScheduler(
            cluster_state=build_cluster(
                num_nodes=num_nodes, gpus_per_node=4, gpu_type="v100"
            ),
            jobs=trace.fresh_jobs(),
            scheduling_policy=spec.scheduling(),
            placement_policy=spec.placement() if spec.placement else None,
            round_duration=round_duration,
            lease_protocol=lease_protocol,
            overhead_model=ClusterOverheadModel(seed=jitter_seed),
            tracked_job_ids=trace.tracked_ids(),
        )
        cluster = deployment.run()
        sim_jcts, cluster_jcts = sim.jcts(), cluster.jcts()
        sim_avg = sim.avg_jct() / 3600.0
        cluster_avg = cluster.avg_jct() / 3600.0
        deviation = abs(cluster_avg - sim_avg) / sim_avg if sim_avg > 0 else 0.0
        table.add_row(
            policy=name,
            sim_avg_jct_hours=sim_avg,
            cluster_avg_jct_hours=cluster_avg,
            avg_jct_deviation=deviation,
            sim_p95_jct_hours=percentile(sim_jcts, 95.0) / 3600.0,
            cluster_p95_jct_hours=percentile(cluster_jcts, 95.0) / 3600.0,
            lease_rounds=len(deployment.lease_latencies_ms()),
        )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig18_fidelity",
        description="Reproduce the simulation-vs-cluster fidelity comparison (Fig. 18).",
    )
    parser.add_argument("--num-jobs", type=int, default=60)
    parser.add_argument("--num-nodes", type=int, default=8)
    parser.add_argument(
        "--policy", action="append", choices=sorted(POLICIES), default=None
    )
    args = parser.parse_args(argv)
    policies: Optional[Sequence[str]] = args.policy or ("fifo", "srtf", "tiresias")
    print(
        run_fig18(
            policies=policies, num_jobs=args.num_jobs, num_nodes=args.num_nodes
        ).to_text()
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
