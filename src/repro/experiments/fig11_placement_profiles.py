"""Figure 11: skew-heuristic placement vs profile-based placement (Tiresias+).

The workload mix evolves so that 5, 6, 7 and finally all 8 of the Table-2
models benefit from consolidation, but the Tiresias skew heuristic only
identifies the first five.  "Tiresias+" consults profiled placement
preferences instead, so it keeps consolidating the right jobs as the mix
shifts and its advantage over the heuristic grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.policies.placement.profile_placement import ProfilePlacement
from repro.policies.placement.tiresias_placement import TiresiasPlacement
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.workloads.philly import generate_philly_trace

DEFAULT_SENSITIVE_COUNTS = (5, 6, 7, 8)


def run_fig11(
    sensitive_counts: Sequence[int] = DEFAULT_SENSITIVE_COUNTS,
    jobs_per_hour: float = 8.0,
    num_jobs: int = 400,
    tracked_window: tuple = (80, 220),
    num_nodes: int = 32,
    network_bw_gbps: float = 10.0,
    seed: int = 13,
    round_duration: float = 300.0,
) -> ExperimentTable:
    """Average JCT of Tiresias vs Tiresias+ as placement-sensitive workloads increase."""
    table = ExperimentTable(
        name="fig11-placement-profiles",
        description=(
            "Average JCT (hours) of the Tiresias skew heuristic vs profile-based Tiresias+ as "
            "the number of placement-sensitive workloads grows from 5/8 to 8/8."
        ),
    )
    placements = {"tiresias": TiresiasPlacement, "tiresias+": ProfilePlacement}
    for count in sensitive_counts:
        trace = generate_philly_trace(
            num_jobs=num_jobs,
            jobs_per_hour=jobs_per_hour,
            seed=seed,
            tracked_window=tracked_window,
            placement_sensitive_count=count,
        )
        for name, placement_factory in placements.items():
            result = run_policy(
                trace,
                PolicySpec(
                    label=name, scheduling=TiresiasScheduling, placement=placement_factory
                ),
                num_nodes=num_nodes,
                network_bw_gbps=network_bw_gbps,
                round_duration=round_duration,
            )
            table.add_row(
                placement=name,
                placement_sensitive_models=f"{count}/8",
                avg_jct_hours=result.avg_jct() / 3600.0,
            )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_fig11().to_text())
