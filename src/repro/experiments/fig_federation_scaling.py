"""Federation scaling: simulation throughput vs shard count, 1 -> 8 shards.

The horizontal-scaling headline of the federation layer (``docs/federation.md``):
the 64-node benchmark cluster is split into 1..8 equal shards, each running
its own FIFO + consolidated scheduling loop, with a router distributing the
seeded Philly workload across them.  Total GPU capacity and offered load are
constant across the sweep, so the series isolates what sharding buys
(smaller per-round scheduling/placement state, independently fast-forwarding
shards -- higher aggregate rounds/s) and what it costs (loss of global
placement freedom -- makespan/JCT inflation), and how much of that cost a
predictive router recovers over the static baseline.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.bench import workload
from repro.experiments.harness import ExperimentTable
from repro.federation.engine import FederationEngine, build_uniform_shards
from repro.federation.router import make_router, router_names
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
DEFAULT_ROUTERS = ("round-robin", "queue-delay")


def run_federation_point(
    router: str,
    num_shards: int,
    total_nodes: int,
    smoke: bool = False,
):
    """One sweep point: a fresh federation of ``num_shards`` equal shards."""
    trace = workload.bench_trace(smoke=smoke)
    shards = build_uniform_shards(
        num_shards=num_shards,
        nodes_per_shard=total_nodes // num_shards,
        scheduling_factory=FifoScheduling,
        placement_factory=ConsolidatedPlacement,
        gpus_per_node=workload.GPUS_PER_NODE,
        round_duration=workload.ROUND_DURATION,
    )
    engine = FederationEngine(
        shards,
        make_router(router),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    )
    return engine.run()


def run_federation_scaling(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    routers: Sequence[str] = DEFAULT_ROUTERS,
    smoke: bool = False,
) -> ExperimentTable:
    """Throughput/quality series across shard counts, one row per (router, N).

    ``shard_counts`` is swept in ascending order and ``throughput_scaling``
    is normalised to the smallest count (the closest row to a 1-shard
    baseline), so the column keeps its meaning regardless of the order the
    caller passes counts in.
    """
    shard_counts = sorted(set(shard_counts))
    total_nodes = 16 if smoke else 64
    table = ExperimentTable(
        name="fig-federation-scaling",
        description=(
            f"Sharded federation on the {total_nodes * workload.GPUS_PER_NODE}-GPU "
            "Philly benchmark workload: aggregate rounds/s and schedule quality "
            "vs shard count, per router (total capacity held constant)."
        ),
        metadata={"total_nodes": total_nodes, "smoke": smoke},
    )
    for router in routers:
        baseline_rps = None
        for count in shard_counts:
            if total_nodes % count:
                raise ValueError(
                    f"shard count {count} does not divide {total_nodes} nodes"
                )
            result = run_federation_point(router, count, total_nodes, smoke=smoke)
            stats = result.pooled_stats()
            rps = (
                result.total_rounds() / result.wall_time_s
                if result.wall_time_s > 0
                else float("inf")
            )
            if baseline_rps is None:
                baseline_rps = rps
            table.add_row(
                router=router,
                num_shards=count,
                rounds_per_sec=round(rps, 1),
                throughput_scaling=round(rps / baseline_rps, 2),
                makespan_h=round(stats.makespan / 3600.0, 2),
                avg_jct_h=round(stats.avg_jct / 3600.0, 2),
                p99_jct_h=round(stats.p99_jct / 3600.0, 2),
                finished=stats.count,
            )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig_federation_scaling",
        description="Federation throughput scaling, 1 -> 8 shards at constant capacity.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration (16 nodes, 60 jobs) for CI",
    )
    parser.add_argument(
        "--shards",
        type=int,
        action="append",
        help="shard count to sweep; repeatable (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--router",
        action="append",
        choices=router_names(),
        help="router(s) to sweep; repeatable (default: round-robin, queue-delay)",
    )
    args = parser.parse_args(argv)
    shard_counts = tuple(args.shards) if args.shards else DEFAULT_SHARD_COUNTS
    if args.smoke:
        shard_counts = tuple(c for c in shard_counts if c <= 4) or (1, 2, 4)
    routers = tuple(args.router) if args.router else DEFAULT_ROUTERS
    table = run_federation_scaling(shard_counts, routers, smoke=args.smoke)
    print(table.to_text())
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
