"""Federation scaling: simulation throughput vs shard count and worker count.

The horizontal-scaling headline of the federation layer (``docs/federation.md``):
the 64-node benchmark cluster is split into 1..8 equal shards, each running
its own FIFO + consolidated scheduling loop, with a router distributing the
seeded Philly workload across them.  Total GPU capacity and offered load are
constant across the sweep, so the series isolates what sharding buys
(smaller per-round scheduling/placement state, independently fast-forwarding
shards -- higher aggregate rounds/s) and what it costs (loss of global
placement freedom -- makespan/JCT inflation), and how much of that cost a
predictive router recovers over the static baseline.

``--workers`` adds the cores axis: the same sweep executed on the
multiprocess :class:`~repro.federation.parallel.ParallelFederationEngine`
with the given worker count(s) (``0`` = the in-process serial engine), so
one table shows how wall clock scales with processes at fixed shards --
results are bit-identical across the workers axis by construction, only the
timing columns move.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.bench import workload
from repro.experiments.harness import ExperimentTable
from repro.federation.engine import FederationEngine, UniformShardFactory
from repro.federation.parallel import ParallelFederationEngine
from repro.federation.router import make_router, router_names
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
DEFAULT_ROUTERS = ("round-robin", "queue-delay")
#: Default workers axis: serial engine only (the historical sweep).
DEFAULT_WORKERS = (0,)


def run_federation_point(
    router: str,
    num_shards: int,
    total_nodes: int,
    smoke: bool = False,
    workers: int = 0,
):
    """One sweep point: a fresh federation of ``num_shards`` equal shards.

    ``workers=0`` runs the in-process serial engine; ``workers>=1`` the
    multiprocess engine with that many worker processes (``1`` degenerates to
    the serial path by design).
    """
    trace = workload.bench_trace(smoke=smoke)
    factory = UniformShardFactory(
        nodes_per_shard=total_nodes // num_shards,
        scheduling_factory=FifoScheduling,
        placement_factory=ConsolidatedPlacement,
        gpus_per_node=workload.GPUS_PER_NODE,
        round_duration=workload.ROUND_DURATION,
    )
    if workers >= 1:
        engine = ParallelFederationEngine(
            factory=factory,
            num_shards=num_shards,
            router=make_router(router),
            jobs=trace.fresh_jobs(),
            tracked_job_ids=trace.tracked_ids(),
            workers=min(workers, num_shards),
        )
        return engine.run()
    engine = FederationEngine(
        factory.build_all(num_shards),
        make_router(router),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    )
    return engine.run()


def run_federation_scaling(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    routers: Sequence[str] = DEFAULT_ROUTERS,
    smoke: bool = False,
    workers: Sequence[int] = DEFAULT_WORKERS,
) -> ExperimentTable:
    """Throughput/quality series, one row per (router, shards, workers).

    ``shard_counts`` is swept in ascending order and ``throughput_scaling``
    is normalised per router to the first (serial, smallest-count) row, so
    the column reads as speedup over the closest thing to a 1-shard serial
    baseline regardless of the order the caller passes counts in.
    """
    shard_counts = sorted(set(shard_counts))
    workers = sorted(set(workers))
    total_nodes = 16 if smoke else 64
    table = ExperimentTable(
        name="fig-federation-scaling",
        description=(
            f"Sharded federation on the {total_nodes * workload.GPUS_PER_NODE}-GPU "
            "Philly benchmark workload: aggregate rounds/s and schedule quality "
            "vs shard count and worker processes (total capacity held constant; "
            "workers=0 is the in-process serial engine)."
        ),
        metadata={"total_nodes": total_nodes, "smoke": smoke, "workers": list(workers)},
    )
    for router in routers:
        baseline_rps = None
        for count in shard_counts:
            if total_nodes % count:
                raise ValueError(
                    f"shard count {count} does not divide {total_nodes} nodes"
                )
            for worker_count in workers:
                result = run_federation_point(
                    router, count, total_nodes, smoke=smoke, workers=worker_count
                )
                stats = result.pooled_stats()
                rps = (
                    result.total_rounds() / result.wall_time_s
                    if result.wall_time_s > 0
                    else float("inf")
                )
                if baseline_rps is None:
                    baseline_rps = rps
                table.add_row(
                    router=router,
                    num_shards=count,
                    workers=result.workers,
                    rounds_per_sec=round(rps, 1),
                    throughput_scaling=round(rps / baseline_rps, 2),
                    wall_s=round(result.wall_time_s, 3),
                    routing_s=round(result.routing_time_s, 3),
                    advance_s=round(result.advance_time_s, 3),
                    makespan_h=round(stats.makespan / 3600.0, 2),
                    avg_jct_h=round(stats.avg_jct / 3600.0, 2),
                    p99_jct_h=round(stats.p99_jct / 3600.0, 2),
                    finished=stats.count,
                )
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig_federation_scaling",
        description=(
            "Federation throughput scaling, 1 -> 8 shards at constant "
            "capacity, optionally across worker-process counts."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration (16 nodes, 60 jobs) for CI",
    )
    parser.add_argument(
        "--shards",
        type=int,
        action="append",
        help="shard count to sweep; repeatable (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--router",
        action="append",
        choices=router_names(),
        help="router(s) to sweep; repeatable (default: round-robin, queue-delay)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        action="append",
        help=(
            "worker-process count to sweep; repeatable; 0 = in-process serial "
            "engine (default: 0 only)"
        ),
    )
    args = parser.parse_args(argv)
    shard_counts = tuple(args.shards) if args.shards else DEFAULT_SHARD_COUNTS
    if args.smoke:
        shard_counts = tuple(c for c in shard_counts if c <= 4) or (1, 2, 4)
    routers = tuple(args.router) if args.router else DEFAULT_ROUTERS
    workers = tuple(args.workers) if args.workers else DEFAULT_WORKERS
    table = run_federation_scaling(shard_counts, routers, smoke=args.smoke, workers=workers)
    print(table.to_text())
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
