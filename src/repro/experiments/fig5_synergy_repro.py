"""Figure 5: reproducing Synergy -- Proportional vs Synergy-Tune JCT CDFs.

The paper reproduces Figure 9(b) of the Synergy OSDI '22 paper: the CDF of job
completion times under Synergy's Proportional and Tune policies on the Philly
trace, and shows Blox's implementation matches the original.  This runner
produces both policies' JCT distributions from the Blox-style implementation
and from the independent reference simulator.
"""

from __future__ import annotations

from repro.baselines.reference import jct_list
from repro.baselines.synergy_reference import simulate_synergy_reference
from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.metrics.summary import average, percentile
from repro.policies.placement.synergy_placement import SynergyPlacement
from repro.policies.scheduling.synergy import SynergyScheduling
from repro.workloads.philly import generate_philly_trace


def run_fig5(
    num_jobs: int = 200,
    jobs_per_hour: float = 6.0,
    num_nodes: int = 32,
    seed: int = 0,
    round_duration: float = 300.0,
) -> ExperimentTable:
    """Average and median JCT of Proportional vs Tune, Blox vs reference."""
    table = ExperimentTable(
        name="fig5-synergy-repro",
        description=(
            "JCT statistics (hours) for Synergy Proportional vs Synergy-Tune, comparing the "
            "Blox implementation against an independent reference implementation."
        ),
    )
    trace = generate_philly_trace(num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed)
    for mode in ("proportional", "tune"):
        blox_result = run_policy(
            trace,
            PolicySpec(
                label=f"synergy-{mode}",
                scheduling=SynergyScheduling,
                placement=lambda mode=mode: SynergyPlacement(mode=mode),
            ),
            num_nodes=num_nodes,
            round_duration=round_duration,
        )
        reference_jobs = simulate_synergy_reference(
            trace.fresh_jobs(),
            total_gpus=num_nodes * 4,
            mode=mode,
            round_duration=round_duration,
        )
        blox_jcts = blox_result.jcts()
        reference_jcts = jct_list(reference_jobs)
        table.metadata[f"blox_jcts_{mode}"] = sorted(blox_jcts)
        table.metadata[f"reference_jcts_{mode}"] = reference_jcts
        table.add_row(
            mode=mode,
            implementation="blox",
            avg_jct_hours=average(blox_jcts) / 3600.0,
            median_jct_hours=percentile(blox_jcts, 50) / 3600.0,
        )
        table.add_row(
            mode=mode,
            implementation="reference",
            avg_jct_hours=average(reference_jcts) / 3600.0,
            median_jct_hours=percentile(reference_jcts, 50) / 3600.0,
        )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_fig5().to_text())
