"""Figures 8 and 9: Pollux vs FIFO vs LAS on the Pollux trace under varying load.

The paper sweeps the arrival rate from 1 to 40 jobs/hour on 64 GPUs using the
Pollux trace (short jobs, so contention needs a higher rate to appear).  The
findings: at low/medium load Pollux's elastic allocations give it the best JCT
with responsiveness on par with the others; past ~20 jobs/hour Pollux's
no-preemption design makes both its JCT and responsiveness degrade towards
FIFO, while LAS keeps responsiveness low by preempting long jobs.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling
from repro.policies.scheduling.las import LasScheduling
from repro.policies.scheduling.pollux import PolluxScheduling
from repro.workloads.pollux_trace import generate_pollux_trace

DEFAULT_LOADS = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0)


def default_policies() -> Dict[str, PolicySpec]:
    return {
        "fifo": PolicySpec(
            label="fifo", scheduling=FifoScheduling, placement=ConsolidatedPlacement
        ),
        "las": PolicySpec(
            label="las", scheduling=LasScheduling, placement=ConsolidatedPlacement
        ),
        "pollux": PolicySpec(
            label="pollux", scheduling=PolluxScheduling, placement=ConsolidatedPlacement
        ),
    }


def run_fig8_9(
    loads_jobs_per_hour: Sequence[float] = DEFAULT_LOADS,
    num_jobs: int = 320,
    tracked_window: tuple = (60, 220),
    num_nodes: int = 16,
    seed: int = 3,
    round_duration: float = 300.0,
    policies: Dict[str, PolicySpec] = None,
) -> ExperimentTable:
    """Average JCT and responsiveness per (policy, load) pair on the Pollux trace."""
    table = ExperimentTable(
        name="fig8-9-pollux-load",
        description=(
            "Average JCT and responsiveness (hours) for Pollux, FIFO and LAS on the Pollux-like "
            "trace while varying load on a 64-GPU cluster."
        ),
    )
    policies = policies or default_policies()
    for load in loads_jobs_per_hour:
        trace = generate_pollux_trace(
            num_jobs=num_jobs, jobs_per_hour=load, seed=seed, tracked_window=tracked_window
        )
        for name, spec in policies.items():
            result = run_policy(trace, spec, num_nodes=num_nodes, round_duration=round_duration)
            table.add_row(
                policy=name,
                jobs_per_hour=load,
                avg_jct_hours=result.avg_jct() / 3600.0,
                avg_responsiveness_hours=result.avg_responsiveness() / 3600.0,
            )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_fig8_9().to_text())
