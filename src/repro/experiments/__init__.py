"""Experiment runners: one module per table/figure of the Blox paper.

Every runner is a plain function returning an
:class:`repro.experiments.harness.ExperimentTable`; the benchmark under
``benchmarks/`` with the matching name calls it (with a scaled-down
configuration) and asserts the qualitative result the paper reports, while the
module's ``main`` block prints the full-scale table.
"""

from repro.experiments.harness import ExperimentTable, run_policy, PolicySpec

__all__ = ["ExperimentTable", "run_policy", "PolicySpec"]
