"""Shared plumbing for the per-figure experiment runners.

The runners all follow the same pattern: build a trace, build a cluster, run
one simulation per policy/parameter combination, and report a small table of
rows (the series the corresponding figure plots).  :func:`run_policy` performs
one such simulation; :class:`ExperimentTable` is the common result container
with a text rendering used by the examples and the ``__main__`` blocks.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.abstractions import (
    AdmissionPolicy,
    ClusterManager,
    MetricCollector,
    PlacementPolicy,
    SchedulingPolicy,
    TerminationPolicy,
)
from repro.core.cluster_state import ClusterState
from repro.cluster.builder import build_cluster
from repro.simulator.engine import SimulationResult, Simulator
from repro.simulator.overheads import OverheadModel
from repro.workloads.trace import Trace


@dataclass
class PolicySpec:
    """Factories for the policy modules one simulation composes.

    Factories (rather than instances) are used because policies carry internal
    state (admission queues, Tiresias' starvation clock) that must not leak
    between runs.
    """

    label: str
    scheduling: Callable[[], SchedulingPolicy]
    placement: Optional[Callable[[], PlacementPolicy]] = None
    admission: Optional[Callable[[], AdmissionPolicy]] = None
    termination: Optional[Callable[[], TerminationPolicy]] = None


@dataclass
class ExperimentTable:
    """Rows of one reproduced table/figure plus free-form metadata."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.rows]

    def rows_where(self, **criteria: object) -> List[Dict[str, object]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def to_text(self) -> str:
        """Render the table as aligned plain text (used by examples and __main__)."""
        lines = [f"== {self.name} ==", self.description]
        if not self.rows:
            lines.append("(no rows)")
            return "\n".join(lines)
        columns = list(self.rows[0].keys())
        widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows)) for c in columns}
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def run_policy(
    trace: Trace,
    spec: PolicySpec,
    num_nodes: int,
    gpus_per_node: int = 4,
    gpu_type: str = "v100",
    network_bw_gbps: float = 10.0,
    round_duration: float = 300.0,
    overhead_model: Optional[OverheadModel] = None,
    metric_collectors: Sequence[MetricCollector] = (),
    cluster: Optional[ClusterState] = None,
    tracked_job_ids: Optional[Sequence[int]] = None,
    max_rounds: int = 200_000,
    cluster_manager: Optional[ClusterManager] = None,
    fast_forward: bool = True,
    engine: str = "rounds",
) -> SimulationResult:
    """Run one simulation of ``trace`` under ``spec`` on a fresh cluster.

    ``tracked_job_ids`` overrides the trace's own tracked window; experiments
    that augment a trace (e.g. spike injection) use it to keep reporting the
    original steady-state jobs.  ``cluster_manager`` injects scheduled
    membership dynamics (e.g. a scenario timeline manager); like policy
    state, managers are stateful, so hand each run a fresh instance.
    """
    if cluster is None:
        cluster = build_cluster(
            num_nodes=num_nodes,
            gpus_per_node=gpus_per_node,
            gpu_type=gpu_type,
            network_bw_gbps=network_bw_gbps,
        )
    simulator = Simulator(
        cluster_state=cluster,
        jobs=trace.fresh_jobs(),
        scheduling_policy=spec.scheduling(),
        placement_policy=spec.placement() if spec.placement else None,
        admission_policy=spec.admission() if spec.admission else None,
        termination_policy=spec.termination() if spec.termination else None,
        round_duration=round_duration,
        overhead_model=overhead_model,
        metric_collectors=metric_collectors,
        tracked_job_ids=list(tracked_job_ids) if tracked_job_ids is not None else trace.tracked_ids(),
        max_rounds=max_rounds,
        cluster_manager=cluster_manager,
        fast_forward=fast_forward,
        engine=engine,
    )
    return simulator.run()


# ----------------------------------------------------------------------
# Multi-process sweep runner
# ----------------------------------------------------------------------


@dataclass
class SweepTask:
    """One simulation of a sweep: a trace, a policy spec and run_policy kwargs.

    For the sweep to run across processes the task must be picklable, which in
    practice means ``spec`` must be built from module-level factories (classes
    or named functions), not lambdas or closures; tasks that fail to pickle
    make the whole sweep fall back to serial execution.
    """

    label: str
    trace: Trace
    spec: PolicySpec
    run_kwargs: Dict[str, object] = field(default_factory=dict)


def _execute_sweep_task(task: SweepTask) -> Tuple[str, SimulationResult]:
    return task.label, run_policy(task.trace, task.spec, **task.run_kwargs)


def run_sweep(
    tasks: Sequence[SweepTask],
    processes: Optional[int] = None,
) -> List[Tuple[str, SimulationResult]]:
    """Run a sweep of independent simulations, in parallel across processes.

    Each task is one ``run_policy`` invocation (policy/parameter combination of
    a load sweep such as the paper's Fig. 8-9).  Results are returned as
    ``(label, result)`` pairs in task order.  ``processes`` defaults to one
    worker per task, capped at the CPU count; pass ``1`` (or supply tasks that
    cannot be pickled) to run serially in-process.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if processes is None:
        processes = min(len(tasks), os.cpu_count() or 1)
    if processes > 1 and len(tasks) > 1:
        # Probe picklability up front so a submission failure is cleanly
        # distinguished from errors raised *inside* worker simulations (which
        # must propagate, not trigger a silent serial rerun).  The extra
        # serialization pass is bounded by the pool's own shipping cost.
        try:
            for task in tasks:
                pickle.dumps(task)
        except Exception as exc:
            # Unpicklable tasks (lambda factories, closures) cannot be shipped
            # to workers; running serially is correct because simulations are
            # pure, but say so -- a silently serial "parallel" sweep reads as a
            # performance regression otherwise.
            warnings.warn(
                f"sweep tasks could not be sent to worker processes ({exc!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            with ProcessPoolExecutor(max_workers=processes) as executor:
                return list(executor.map(_execute_sweep_task, tasks))
    return [_execute_sweep_task(task) for task in tasks]
