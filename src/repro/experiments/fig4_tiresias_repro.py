"""Figure 4: reproducing Tiresias -- JCT CDF of Blox-Tiresias vs the reference.

The paper compares the CDF of JCTs produced by the Tiresias implementation in
Blox with the Tiresias open-source simulator on the Tiresias trace.  Here the
independent reference implementation stands in for the open-source simulator;
the experiment reports both CDFs plus quantile-level differences.
"""

from __future__ import annotations

from repro.baselines.reference import jct_list
from repro.baselines.tiresias_reference import simulate_tiresias_reference
from repro.experiments.harness import ExperimentTable, PolicySpec, run_policy
from repro.metrics.summary import percentile
from repro.policies.placement.tiresias_placement import TiresiasPlacement
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.workloads.tiresias_trace import generate_tiresias_trace

QUANTILES = (25.0, 50.0, 75.0, 90.0)


def run_fig4(
    num_jobs: int = 60,
    jobs_per_hour: float = 6.0,
    num_nodes: int = 16,
    seed: int = 0,
    round_duration: float = 300.0,
) -> ExperimentTable:
    """Quantiles of the JCT distribution: Blox Tiresias vs reference Tiresias."""
    table = ExperimentTable(
        name="fig4-tiresias-repro",
        description=(
            "JCT distribution quantiles (hours) of Blox's Tiresias vs an independent "
            "discrete-LAS reference simulator on a Tiresias-style trace."
        ),
    )
    trace = generate_tiresias_trace(num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed)
    blox_result = run_policy(
        trace,
        PolicySpec(
            label="tiresias-blox",
            scheduling=TiresiasScheduling,
            placement=TiresiasPlacement,
        ),
        num_nodes=num_nodes,
        round_duration=round_duration,
    )
    reference_jobs = simulate_tiresias_reference(
        trace.fresh_jobs(), total_gpus=num_nodes * 4, round_duration=round_duration
    )
    blox_jcts = blox_result.jcts()
    reference_jcts = jct_list(reference_jobs)
    table.metadata["blox_jcts"] = sorted(blox_jcts)
    table.metadata["reference_jcts"] = reference_jcts
    for q in QUANTILES:
        blox_q = percentile(blox_jcts, q) / 3600.0
        ref_q = percentile(reference_jcts, q) / 3600.0
        deviation = abs(blox_q - ref_q) / ref_q if ref_q > 0 else 0.0
        table.add_row(
            quantile=q,
            blox_jct_hours=blox_q,
            reference_jct_hours=ref_q,
            relative_deviation=deviation,
        )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_fig4().to_text())
