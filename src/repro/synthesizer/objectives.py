"""Objectives the automatic scheduler synthesizer can optimise.

The synthesizer runs shadow simulations of every policy combination and picks
the one that minimises a user-selected metric (§5.2 optimises average JCT;
Appendix A minimises average JCT plus average responsiveness simultaneously).
Objectives score a finished shadow simulation; lower is better.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.metrics.summary import average


class Objective:
    """Scores the outcome of a (shadow) simulation; lower scores are better."""

    name = "objective"

    def score(self, jobs: Sequence[Job], horizon_end: float) -> float:
        raise NotImplementedError

    @staticmethod
    def _jct_like(job: Job, horizon_end: float) -> float:
        """JCT for finished jobs; elapsed-so-far for unfinished ones.

        Counting unfinished jobs at their elapsed age keeps the objective from
        rewarding policies that simply starve long jobs past the shadow horizon.
        """
        if job.completion_time is not None:
            return job.completion_time - job.arrival_time
        return max(0.0, horizon_end - job.arrival_time)


class AverageJct(Objective):
    """Minimise average job completion time."""

    name = "avg-jct"

    def score(self, jobs: Sequence[Job], horizon_end: float) -> float:
        return average(self._jct_like(j, horizon_end) for j in jobs)


class AverageResponsiveness(Objective):
    """Minimise the average time until a job first receives GPUs."""

    name = "avg-responsiveness"

    def score(self, jobs: Sequence[Job], horizon_end: float) -> float:
        values = []
        for job in jobs:
            if job.first_schedule_time is not None:
                values.append(job.first_schedule_time - job.arrival_time)
            else:
                values.append(max(0.0, horizon_end - job.arrival_time))
        return average(values)


class CombinedObjective(Objective):
    """Weighted sum of several objectives (Appendix A uses JCT + responsiveness)."""

    name = "combined"

    def __init__(self, objectives: Sequence[Objective], weights: Sequence[float] = ()) -> None:
        if not objectives:
            raise ConfigurationError("CombinedObjective needs at least one objective")
        self.objectives = list(objectives)
        if weights:
            if len(weights) != len(objectives):
                raise ConfigurationError("weights must match objectives in length")
            self.weights = list(weights)
        else:
            self.weights = [1.0] * len(objectives)
        self.name = "+".join(o.name for o in self.objectives)

    def score(self, jobs: Sequence[Job], horizon_end: float) -> float:
        return sum(
            weight * objective.score(jobs, horizon_end)
            for weight, objective in zip(self.weights, self.objectives)
        )
