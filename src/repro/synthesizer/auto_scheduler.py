"""Automatic scheduler synthesizer (Blox §5.2).

Different scheduling/admission combinations win under different arrival
patterns, and no single static choice is best across a day of cluster
operation.  The synthesizer exploits Blox's modularity: every ``evaluate_every``
rounds it forks the live ``JobState``/``ClusterState`` into shadow simulations,
one per combination in its policy grid, runs each forward over a short horizon
with the jobs currently on the cluster, scores them with the operator's
objective, and switches the live scheduler to the winning combination.

The synthesizer itself implements the scheduling-policy and admission-policy
interfaces, so it drops into the ordinary scheduling loop unchanged -- the
composition trick the paper highlights.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.abstractions import (
    AdmissionPolicy,
    PlacementPolicy,
    ScheduleEntry,
    SchedulingPolicy,
)
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.core.mechanisms import SimulatedLauncher, SimulatedPreemption
from repro.simulator.execution import ExecutionModel
from repro.simulator.overheads import OverheadModel
from repro.synthesizer.objectives import AverageJct, Objective


#: A factory returns a *fresh* policy instance; shadow simulations and the live
#: loop must never share mutable policy state.
PolicyFactory = Callable[[], SchedulingPolicy]
AdmissionFactory = Callable[[], AdmissionPolicy]


@dataclass(frozen=True)
class PolicyCombination:
    """One cell of the synthesizer's search grid."""

    scheduling_name: str
    admission_name: str
    scheduling_factory: PolicyFactory
    admission_factory: AdmissionFactory

    @property
    def label(self) -> str:
        return f"{self.scheduling_name}/{self.admission_name}"


class _ShadowSimulator:
    """Runs one policy combination forward from a snapshot of the live state."""

    def __init__(
        self,
        combination: PolicyCombination,
        placement_factory: Callable[[], PlacementPolicy],
        round_duration: float,
        horizon_rounds: int,
    ) -> None:
        self.combination = combination
        self.placement_factory = placement_factory
        self.round_duration = round_duration
        self.horizon_rounds = horizon_rounds

    def run(
        self,
        job_state: JobState,
        cluster_state: ClusterState,
        start_time: float,
    ) -> Tuple[List[Job], float]:
        """Simulate ``horizon_rounds`` rounds; returns (jobs, horizon_end_time)."""
        jobs = job_state.snapshot()
        cluster = cluster_state.snapshot()
        scheduling = self.combination.scheduling_factory()
        admission = self.combination.admission_factory()
        placement = self.placement_factory()
        overheads = OverheadModel()
        execution = ExecutionModel(overhead_model=overheads)
        launcher = SimulatedLauncher(overheads)
        preemptor = SimulatedPreemption(overheads)

        time = start_time
        for round_index in range(self.horizon_rounds):
            if round_index > 0:
                for job in jobs.running_jobs():
                    execution.advance(job, cluster, time - self.round_duration, self.round_duration)
            for job in jobs.finished_jobs():
                if cluster.gpus_for_job(job.job_id):
                    cluster.release_job(job.job_id)
                    job.allocated_gpus = []
            if not jobs.active_jobs() and not jobs.waiting_admission_jobs():
                break
            jobs.current_time = time
            # The shadow run only considers jobs already on the cluster (no new
            # arrivals), mirroring the paper's description of the synthesizer.
            accepted = admission.accept(jobs.waiting_admission_jobs(), cluster, jobs)
            jobs.add_new_jobs(accepted, time)
            schedule = scheduling.schedule(jobs, cluster)
            decision = placement.place(schedule, cluster, jobs)
            for job_id in decision.to_suspend:
                preemptor.preempt(jobs.get(job_id), cluster, time)
            for job_id, gpu_ids in sorted(decision.to_launch.items()):
                job = jobs.get(job_id)
                if job.is_finished:
                    continue
                if job.status == JobStatus.RUNNING and sorted(gpu_ids) == sorted(job.allocated_gpus):
                    continue
                if job.status == JobStatus.RUNNING:
                    preemptor.preempt(job, cluster, time)
                launcher.launch(job, gpu_ids, cluster, time)
            time += self.round_duration
        return jobs.all_jobs(), time


class AutoSchedulerSynthesizer(SchedulingPolicy, AdmissionPolicy):
    """Switches between policy combinations at runtime based on shadow simulations."""

    name = "auto-synthesizer"

    #: The evaluation counter advances once per ``schedule`` call, so skipping
    #: rounds would shift when policy switches happen; the simulator must run
    #: every round when the synthesizer is in the loop.
    supports_fast_forward = False
    steady_state_safe = False

    def __init__(
        self,
        combinations: Sequence[PolicyCombination],
        placement_factory: Callable[[], PlacementPolicy] = None,
        objective: Optional[Objective] = None,
        evaluate_every: int = 10,
        horizon_rounds: int = 48,
        round_duration: float = 300.0,
    ) -> None:
        from repro.policies.placement.consolidated import ConsolidatedPlacement

        if not combinations:
            raise ConfigurationError("the synthesizer needs at least one policy combination")
        if evaluate_every < 1 or horizon_rounds < 1:
            raise ConfigurationError("evaluate_every and horizon_rounds must be >= 1")
        self.combinations = list(combinations)
        self.placement_factory = placement_factory or ConsolidatedPlacement
        self.objective = objective or AverageJct()
        self.evaluate_every = evaluate_every
        self.horizon_rounds = horizon_rounds
        self.round_duration = round_duration

        self._round_counter = 0
        self._current = self.combinations[0]
        self._current_scheduling = self._current.scheduling_factory()
        self._current_admission = self._current.admission_factory()
        self._carryover: List[Job] = []
        #: (round_index, combination_label) history, used to reproduce Fig. 15/21.
        self.choice_log: List[Tuple[int, str]] = [(0, self._current.label)]

    # ------------------------------------------------------------------

    @classmethod
    def from_grid(
        cls,
        scheduling_factories: Sequence[Tuple[str, PolicyFactory]],
        admission_factories: Sequence[Tuple[str, AdmissionFactory]],
        **kwargs,
    ) -> "AutoSchedulerSynthesizer":
        """Build the full cross-product grid of scheduling x admission policies."""
        combinations = [
            PolicyCombination(
                scheduling_name=s_name,
                admission_name=a_name,
                scheduling_factory=s_factory,
                admission_factory=a_factory,
            )
            for (s_name, s_factory), (a_name, a_factory) in itertools.product(
                scheduling_factories, admission_factories
            )
        ]
        return cls(combinations, **kwargs)

    @property
    def current_name(self) -> str:
        """Label of the combination currently driving the live cluster."""
        return self._current.label

    @property
    def current_combination(self) -> PolicyCombination:
        return self._current

    # ------------------------------------------------------------------
    # Policy switching
    # ------------------------------------------------------------------

    def _evaluate_combinations(
        self, job_state: JobState, cluster_state: ClusterState
    ) -> PolicyCombination:
        start_time = getattr(job_state, "current_time", 0.0)
        best = self._current
        best_score = float("inf")
        for combination in self.combinations:
            shadow = _ShadowSimulator(
                combination,
                self.placement_factory,
                self.round_duration,
                self.horizon_rounds,
            )
            jobs, horizon_end = shadow.run(job_state, cluster_state, start_time)
            score = self.objective.score(jobs, horizon_end)
            if score < best_score - 1e-9:
                best_score = score
                best = combination
        return best

    def _maybe_switch(self, job_state: JobState, cluster_state: ClusterState) -> None:
        if self._round_counter % self.evaluate_every != 0:
            return
        if not job_state.active_jobs() and not job_state.waiting_admission_jobs():
            return
        best = self._evaluate_combinations(job_state, cluster_state)
        if best.label != self._current.label:
            # Jobs queued inside the outgoing admission policy must not be lost
            # on a switch; they are re-submitted to the incoming policy.
            self._carryover.extend(self._current_admission.pending_jobs())
            self._current = best
            self._current_scheduling = best.scheduling_factory()
            self._current_admission = best.admission_factory()
        self.choice_log.append((self._round_counter, self._current.label))

    # ------------------------------------------------------------------
    # AdmissionPolicy / SchedulingPolicy interfaces (delegation)
    # ------------------------------------------------------------------

    def accept(self, new_jobs, cluster_state, job_state):
        jobs = list(self._carryover) + list(new_jobs)
        self._carryover = []
        return self._current_admission.accept(jobs, cluster_state, job_state)

    def pending_jobs(self):
        return self._current_admission.pending_jobs()

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        self._maybe_switch(job_state, cluster_state)
        self._round_counter += 1
        return self._current_scheduling.schedule(job_state, cluster_state)
