"""The automatic scheduler synthesizer (Blox §5.2 and Appendix A)."""

from repro.synthesizer.objectives import Objective, AverageJct, AverageResponsiveness, CombinedObjective
from repro.synthesizer.auto_scheduler import AutoSchedulerSynthesizer, PolicyCombination

__all__ = [
    "Objective",
    "AverageJct",
    "AverageResponsiveness",
    "CombinedObjective",
    "AutoSchedulerSynthesizer",
    "PolicyCombination",
]
