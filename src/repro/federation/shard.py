"""One federation shard: an independent cluster + policy stack, pausable.

A shard is a full Blox scheduling loop -- its own
:class:`~repro.core.cluster_state.ClusterState`, policy composition and
(optionally) scenario timeline -- that the federation engine can *pause* at
routing events and *resume* after submitting routed gangs.  Everything about
the loop (full rounds, light rounds, steady strides, the gang drain chain,
``check_invariants``) is inherited unchanged from
:class:`~repro.simulator.engine.Simulator`; the shard adds exactly three
things:

* it starts with an **empty workload** and receives jobs via :meth:`submit`
  (``BloxManager.submit_job``), so from the shard's point of view a routed
  gang is indistinguishable from a trace job that was there from the start;
* a :class:`BoundedClusterManager` wraps the shard's cluster manager and
  additionally bounds ``next_event_time`` by the federation's next routing
  event, so per-shard event-skipping fast-forward stays active *between*
  routing events and stops, exactly as for churn events, one round short of
  each one;
* while ``accepting`` is set, the shard's finish conditions
  (``_tracked_all_finished`` / ``_stalled``) are suppressed -- a shard that
  drained its current jobs merely idles (cheap light rounds) until the next
  routing event, because more gangs may still be routed to it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.abstractions import (
    AdmissionPolicy,
    ClusterManager,
    PlacementPolicy,
    SchedulingPolicy,
)
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import SimulationError
from repro.core.job import Job
from repro.federation.router import ShardViewSummary, summarize_shard
from repro.simulator.engine import SimulationResult, Simulator

__all__ = ["BoundedClusterManager", "ShardSimulator"]


class BoundedClusterManager(ClusterManager):
    """Wraps a shard's cluster manager with a routing-event bound.

    ``update`` delegates to the inner manager (a scenario
    :class:`~repro.scenarios.timeline.TimelineClusterManager`, or the inert
    default); ``next_event_time`` returns the earlier of the inner manager's
    next event and the federation's next routing event (``bound``).  The
    bound is what keeps a shard's fast-forward *sound* under routing: the
    shard cannot see the global arrival stream, so without the bound it would
    skip straight past the round in which a routed gang must be admitted.
    Advertising the routing event as a cluster event makes every skip path
    (classic light rounds, steady strides, the drain chain) stop one round
    short of it for free, with no changes to the engine.
    """

    name = "federation-bounded"

    def __init__(self, inner: Optional[ClusterManager] = None) -> None:
        self.inner = inner if inner is not None else ClusterManager()
        #: Next routing event time, maintained by the federation engine
        #: (``None`` while draining, after all gangs are routed).
        self.bound: Optional[float] = None
        # Mirror the engine's migration check: an inner manager that overrides
        # update() without next_event_time() has unpredictable per-round
        # effects.  This wrapper overrides both, which would mask the check,
        # so the shard consults this flag and disables fast-forward itself.
        inner_cls = type(self.inner)
        self.inner_predictable = not (
            inner_cls.update is not ClusterManager.update
            and inner_cls.next_event_time is ClusterManager.next_event_time
        )

    def update(self, cluster_state: ClusterState, current_time: float) -> List[int]:
        return self.inner.update(cluster_state, current_time)

    def drain_applied(self):
        # Delegate so shard-scenario timeline firings reach the shard's
        # trace stream (the bound is routing metadata, not a cluster event).
        return self.inner.drain_applied()

    def next_event_time(self, current_time: float) -> Optional[float]:
        inner_next = self.inner.next_event_time(current_time)
        if self.bound is None:
            return inner_next
        if inner_next is None:
            return self.bound
        return min(inner_next, self.bound)


class ShardSimulator(Simulator):
    """A pausable :class:`Simulator` that receives its workload via routing."""

    def __init__(
        self,
        shard_id: int,
        cluster_state: ClusterState,
        scheduling_policy: SchedulingPolicy,
        placement_policy: Optional[PlacementPolicy] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
        cluster_manager: Optional[ClusterManager] = None,
        **kwargs,
    ) -> None:
        bounded = BoundedClusterManager(cluster_manager)
        super().__init__(
            cluster_state=cluster_state,
            jobs=(),
            scheduling_policy=scheduling_policy,
            placement_policy=placement_policy,
            admission_policy=admission_policy,
            cluster_manager=bounded,
            tracked_job_ids=[],
            allow_empty_workload=True,
            **kwargs,
        )
        self.shard_id = shard_id
        self.bounded_manager = bounded
        if not bounded.inner_predictable:
            # The wrapper overrides both ClusterManager hooks, so the base
            # class could not see that the *inner* manager's events are
            # unpredictable; apply its auto-disable rule here.
            self.fast_forward = False
        #: While True the shard may still receive routed gangs: finish
        #: conditions are suppressed and ``run_until`` merely pauses.
        self.accepting = True

    # ------------------------------------------------------------------
    # Finish conditions are deferred while the shard still accepts gangs
    # ------------------------------------------------------------------

    def _tracked_all_finished(self) -> bool:
        if self.accepting:
            return False
        return super()._tracked_all_finished()

    def _stalled(self) -> bool:
        if self.accepting:
            return False
        return super()._stalled()

    # ------------------------------------------------------------------
    # Federation driver API
    # ------------------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Route a gang to this shard (must be called while paused)."""
        if not self.accepting:
            raise SimulationError(
                f"shard {self.shard_id} is draining; cannot route job {job.job_id}"
            )
        self.manager.submit_job(job)
        self.jobs.append(job)
        self.tracked_job_ids.append(job.job_id)

    def view_summary(self) -> ShardViewSummary:
        """Routing digest of this shard at its current pause point.

        Serial and parallel federation engines both feed routers exactly this
        -- the serial engine reads it in-process, a parallel worker sends it
        back over the pipe -- so routing inputs are bit-identical in both
        modes.  At a pause the arrival queue is always empty (the preceding
        arrival round popped every previously routed gang), so the queue terms
        start at zero and the engine layers same-round gangs on via
        :meth:`ShardViewSummary.with_queued`.
        """
        return summarize_shard(
            shard_id=self.shard_id,
            cluster_state=self.cluster_state,
            job_state=self.job_state,
            current_time=self.manager.current_time,
            queued_jobs=tuple(self.manager.queued_jobs()),
        )

    def run_until(self, stop_time: float) -> None:
        """Advance the shard's loop, pausing before the round at ``stop_time``.

        The pause lands at the top of the first round whose start time is
        ``>= stop_time`` -- i.e. exactly before the round in which a gang
        arriving at ``stop_time`` would be popped from the wait queue -- so a
        subsequent :meth:`submit` is indistinguishable from the gang having
        been in the trace all along.  The routing bound feeds
        ``next_event_time`` so fast-forward skips the gap but never the
        boundary round.
        """
        self.bounded_manager.bound = stop_time
        finished = self._advance_loop(stop_time)
        if finished:
            # accepting suppresses every finish condition, and a paused loop
            # returns False; anything else is a driver bug.
            raise SimulationError(
                f"shard {self.shard_id} finished while still accepting gangs"
            )
        if self.manager.round_number >= self.max_rounds:
            raise SimulationError(
                f"shard {self.shard_id} exhausted its round budget "
                f"({self.max_rounds}) before reaching time {stop_time}"
            )

    def finish(self) -> SimulationResult:
        """Stop accepting gangs and run the shard to completion."""
        self.accepting = False
        self.bounded_manager.bound = None
        if not self._advance_loop(None):
            raise SimulationError(
                f"shard {self.shard_id} did not finish within {self.max_rounds} "
                "rounds; the routed workload is likely too large for the shard"
            )
        # Worker-process shards (factory trace_dir) must not rely on
        # interpreter exit to flush their trace files.
        self.flush_telemetry()
        return self.build_result()
