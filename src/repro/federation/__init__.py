"""Multi-cluster federation: sharded scheduling loops behind a router.

The horizontal-scaling layer of the reproduction (see ``docs/federation.md``):
N independent shards -- each a full cluster + policy stack, optionally with
its own scenario timeline -- coordinated by a pluggable
:class:`~repro.federation.router.FederationRouter` that assigns each incoming
gang to a shard.  Shards run either in-process (serial lockstep,
:class:`FederationEngine`) or as worker processes behind a message-passing
protocol (:class:`ParallelFederationEngine`) with bit-identical results.
Per-shard event-skipping fast-forward stays active between routing events,
and every per-shard schedule is parity-checked against per-round stepping and
serial-vs-parallel execution (``python -m repro.bench --federation``).

Worker failures are classified by a small taxonomy (defined here, at the
package root, so :mod:`repro.federation.parallel` can raise them without an
import cycle): :class:`RetryableWorkerError` for failures a supervisor may
recover from by respawn + checkpoint replay (crash, hang, lost pipe), and
:class:`FatalWorkerError` for deterministic failures where a retry would just
reproduce the problem (a worker-side exception, restart budget exhausted, the
whole federation dead).  Both subclass
:class:`~repro.core.exceptions.SimulationError`, so unsupervised callers keep
seeing the error type they always did.  See ``docs/robustness.md``.
"""

from repro.core.exceptions import SimulationError


class FederationWorkerError(SimulationError):
    """A federation shard worker misbehaved; message carries shard ids,
    worker pid and the last-known protocol phase."""


class RetryableWorkerError(FederationWorkerError):
    """The worker crashed, hung or lost its pipe -- state is gone but the
    failure is environmental: a supervisor can respawn the worker and replay
    its shards from the last checkpoint."""


class FatalWorkerError(FederationWorkerError):
    """Recovery is pointless or exhausted: a deterministic worker-side
    exception (replay would reproduce it), an exceeded restart budget, or no
    surviving shard to degrade onto."""


from repro.federation.engine import (
    FederationEngine,
    FederationResult,
    LocalShardBackend,
    ScenarioManagerFactory,
    ShardBackend,
    UniformShardFactory,
    build_uniform_shards,
    drive_federation,
)
from repro.federation.parallel import (
    FederationStreamResult,
    ParallelFederationEngine,
    ShardFinishStats,
    SupervisorConfig,
    WorkerKillPlan,
    WorkerPoolBackend,
    default_worker_count,
)
from repro.federation.router import (
    ROUTER_FACTORIES,
    FederationRouter,
    GpuTypeAffinityRouter,
    LeastLoadedRouter,
    QueueDelayRouter,
    RoundRobinRouter,
    ShardViewSummary,
    make_router,
    router_names,
    summarize_shard,
)
from repro.federation.shard import BoundedClusterManager, ShardSimulator

__all__ = [
    "BoundedClusterManager",
    "FatalWorkerError",
    "FederationEngine",
    "FederationResult",
    "FederationRouter",
    "FederationStreamResult",
    "FederationWorkerError",
    "GpuTypeAffinityRouter",
    "LeastLoadedRouter",
    "LocalShardBackend",
    "ParallelFederationEngine",
    "QueueDelayRouter",
    "ROUTER_FACTORIES",
    "RetryableWorkerError",
    "RoundRobinRouter",
    "ScenarioManagerFactory",
    "ShardBackend",
    "ShardFinishStats",
    "ShardSimulator",
    "ShardViewSummary",
    "SupervisorConfig",
    "UniformShardFactory",
    "WorkerKillPlan",
    "WorkerPoolBackend",
    "build_uniform_shards",
    "default_worker_count",
    "drive_federation",
    "make_router",
    "router_names",
    "summarize_shard",
]
