"""Multi-cluster federation: sharded scheduling loops behind a router.

The horizontal-scaling layer of the reproduction (see ``docs/federation.md``):
N independent shards -- each a full cluster + policy stack, optionally with
its own scenario timeline -- coordinated by a pluggable
:class:`~repro.federation.router.FederationRouter` that assigns each incoming
gang to a shard.  Per-shard event-skipping fast-forward stays active between
routing events, and every per-shard schedule is parity-checked against
per-round stepping (``python -m repro.bench --federation``).
"""

from repro.federation.engine import (
    FederationEngine,
    FederationResult,
    build_uniform_shards,
)
from repro.federation.router import (
    ROUTER_FACTORIES,
    FederationRouter,
    GpuTypeAffinityRouter,
    LeastLoadedRouter,
    QueueDelayRouter,
    RoundRobinRouter,
    ShardView,
    make_router,
    router_names,
)
from repro.federation.shard import BoundedClusterManager, ShardSimulator

__all__ = [
    "BoundedClusterManager",
    "FederationEngine",
    "FederationResult",
    "FederationRouter",
    "GpuTypeAffinityRouter",
    "LeastLoadedRouter",
    "QueueDelayRouter",
    "ROUTER_FACTORIES",
    "RoundRobinRouter",
    "ShardSimulator",
    "ShardView",
    "build_uniform_shards",
    "make_router",
    "router_names",
]
