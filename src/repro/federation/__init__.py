"""Multi-cluster federation: sharded scheduling loops behind a router.

The horizontal-scaling layer of the reproduction (see ``docs/federation.md``):
N independent shards -- each a full cluster + policy stack, optionally with
its own scenario timeline -- coordinated by a pluggable
:class:`~repro.federation.router.FederationRouter` that assigns each incoming
gang to a shard.  Shards run either in-process (serial lockstep,
:class:`FederationEngine`) or as worker processes behind a message-passing
protocol (:class:`ParallelFederationEngine`) with bit-identical results.
Per-shard event-skipping fast-forward stays active between routing events,
and every per-shard schedule is parity-checked against per-round stepping and
serial-vs-parallel execution (``python -m repro.bench --federation``).
"""

from repro.federation.engine import (
    FederationEngine,
    FederationResult,
    LocalShardBackend,
    ScenarioManagerFactory,
    ShardBackend,
    UniformShardFactory,
    build_uniform_shards,
    drive_federation,
)
from repro.federation.parallel import (
    FederationStreamResult,
    ParallelFederationEngine,
    ShardFinishStats,
    WorkerPoolBackend,
    default_worker_count,
)
from repro.federation.router import (
    ROUTER_FACTORIES,
    FederationRouter,
    GpuTypeAffinityRouter,
    LeastLoadedRouter,
    QueueDelayRouter,
    RoundRobinRouter,
    ShardViewSummary,
    make_router,
    router_names,
    summarize_shard,
)
from repro.federation.shard import BoundedClusterManager, ShardSimulator

__all__ = [
    "BoundedClusterManager",
    "FederationEngine",
    "FederationResult",
    "FederationRouter",
    "FederationStreamResult",
    "GpuTypeAffinityRouter",
    "LeastLoadedRouter",
    "LocalShardBackend",
    "ParallelFederationEngine",
    "QueueDelayRouter",
    "ROUTER_FACTORIES",
    "RoundRobinRouter",
    "ScenarioManagerFactory",
    "ShardBackend",
    "ShardFinishStats",
    "ShardSimulator",
    "ShardViewSummary",
    "UniformShardFactory",
    "WorkerPoolBackend",
    "build_uniform_shards",
    "default_worker_count",
    "drive_federation",
    "make_router",
    "router_names",
    "summarize_shard",
]
