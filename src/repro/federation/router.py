"""Pluggable routing policies for the multi-cluster federation layer.

A :class:`FederationRouter` is the admission-side counterpart of a scheduling
policy one level up: where a scheduling policy orders jobs *within* a cluster,
a router decides which shard (independent cluster + policy stack) an incoming
gang enters at all.  Routers see a compact :class:`ShardViewSummary` per shard
-- a picklable digest of the shard's cluster and job state as of the last
completed round, including the gangs already routed to it but not yet admitted
-- and return a shard index.

The summary (rather than the live ``ClusterState``/``JobState`` objects) is
the federation's *message type*: in parallel mode each shard lives in a worker
process and only the summary crosses the pipe, and in serial mode the engine
builds the identical summary from the live shard -- so routing reads exactly
the same facts in both modes, which is what makes serial and parallel runs
bit-identical.

Determinism contract: routing is a pure function of the job and the shard
summaries (round-robin additionally keeps an internal cursor, which is still
deterministic), with explicit shard-id tie-breaks.  No router draws
randomness, so a federation run is replayable and the fast-forward parity
checks extend across the routing layer.

The four stock routers cover the design space the Block paper (predictive
load balancing across scheduler instances) motivates:

* :class:`RoundRobinRouter` -- the static baseline;
* :class:`LeastLoadedRouter` -- greedy on current capacity utilisation;
* :class:`GpuTypeAffinityRouter` -- locality first (shards owning the job's
  requested GPU generation), then least-loaded;
* :class:`QueueDelayRouter` -- predictive: routes to the shard whose
  estimated queue backlog plus the job's own service demand clears first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.cluster_state import ClusterState, gpu_type_key
from repro.core.job import Job
from repro.core.job_state import JobState

__all__ = [
    "ShardViewSummary",
    "summarize_shard",
    "FederationRouter",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "GpuTypeAffinityRouter",
    "QueueDelayRouter",
    "ROUTER_FACTORIES",
    "router_names",
    "make_router",
]


@dataclass(frozen=True)
class ShardViewSummary:
    """Compact, picklable digest of one shard's state for routing decisions.

    This is everything any stock router consults, reduced to plain numbers so
    the summary can cross a process boundary (parallel federation workers
    reply to ``advance`` commands with one of these).  All GPU-type keys are
    normalised with :func:`~repro.core.cluster_state.gpu_type_key`.

    The queue-facing fields (``pending_gpu_demand``, ``outstanding_gpu_seconds``,
    ``queued_jobs``) include gangs already routed to the shard but still in
    its arrival queue -- without them, two gangs arriving in the same round
    would both see the shard as empty and pile onto it.  Between two routing
    decisions at the same pause point only those fields can change, and only
    on the shard that received the previous gang; :meth:`with_queued` applies
    exactly that delta, so the engine refreshes one summary per decision
    instead of re-materialising every shard's view.
    """

    shard_id: int
    current_time: float
    #: All GPUs the shard owns, failed nodes included (the engine's
    #: feasibility filter: a gang larger than this can never be placed).
    total_gpus: int
    #: Compute-weighted capacity of GPUs on healthy nodes (0.0 = dead shard).
    healthy_capacity: float
    #: Fraction of the healthy capacity currently in use.
    capacity_utilization: float
    #: Free GPUs on healthy nodes, per normalised GPU type.
    free_gpus_by_type: Dict[str, int] = field(default_factory=dict)
    #: GPU types present on at least one healthy node.
    owned_gpu_types: FrozenSet[str] = frozenset()
    #: GPUs wanted by admitted-but-idle jobs plus routed-but-unadmitted gangs.
    pending_gpu_demand: int = 0
    #: Remaining committed work in GPU-seconds (active jobs + queued gangs):
    #: the fluid-model backlog a new arrival queues behind.
    outstanding_gpu_seconds: float = 0.0
    #: Gangs routed to the shard but still in its arrival queue.
    queued_jobs: int = 0

    def free_gpus(self, gpu_type=None) -> int:
        """Free healthy GPUs, optionally restricted to one (normalised) type."""
        if gpu_type is None:
            return sum(self.free_gpus_by_type.values())
        return self.free_gpus_by_type.get(gpu_type_key(gpu_type), 0)

    def owns_gpu_type(self, gpu_type) -> bool:
        return gpu_type_key(gpu_type) in self.owned_gpu_types

    def with_queued(self, job: Job) -> "ShardViewSummary":
        """The summary after routing ``job`` to this shard (pure update).

        Appends the gang's demand terms in routing order, exactly as a fresh
        :func:`summarize_shard` over the grown queue would -- the serial and
        parallel engines both use this for same-round refreshes, so the
        floating-point accumulation order (and hence every downstream routing
        decision) is identical in both modes.
        """
        return replace(
            self,
            pending_gpu_demand=self.pending_gpu_demand + job.num_gpus,
            outstanding_gpu_seconds=self.outstanding_gpu_seconds
            + job.remaining_work * job.num_gpus,
            queued_jobs=self.queued_jobs + 1,
        )


def summarize_shard(
    shard_id: int,
    cluster_state: ClusterState,
    job_state: JobState,
    current_time: float,
    queued_jobs: Sequence[Job] = (),
) -> ShardViewSummary:
    """Digest live shard state into a :class:`ShardViewSummary`.

    Deterministic accumulation order: active jobs in job-id order (the
    registry's sorted view), then queued gangs in queue order -- matching the
    order :meth:`ShardViewSummary.with_queued` extends the sums in.
    """
    free_by_type: Dict[str, int] = {}
    owned: List[str] = []
    for node in cluster_state.active_nodes():
        key = gpu_type_key(node.gpu_type)
        if key not in free_by_type:
            free_by_type[key] = cluster_state.num_free_gpus(key)
            owned.append(key)
    pending = 0
    outstanding = 0.0
    for job in job_state.active_jobs():
        if not job.is_running:
            pending += job.num_gpus
        outstanding += job.remaining_work * job.num_gpus
    for job in queued_jobs:
        pending += job.num_gpus
        outstanding += job.remaining_work * job.num_gpus
    return ShardViewSummary(
        shard_id=shard_id,
        current_time=current_time,
        total_gpus=cluster_state.total_gpus,
        healthy_capacity=cluster_state.healthy_capacity(),
        capacity_utilization=cluster_state.capacity_utilization(),
        free_gpus_by_type=free_by_type,
        owned_gpu_types=frozenset(owned),
        pending_gpu_demand=pending,
        outstanding_gpu_seconds=outstanding,
        queued_jobs=len(queued_jobs),
    )


class FederationRouter:
    """Decides which shard an incoming gang is admitted to.

    ``route`` receives the summaries of the shards the gang can *feasibly*
    run on (the engine pre-filters shards whose total GPU count is below the
    gang size -- routing there would starve the job forever) and must return
    the ``shard_id`` of one of them.
    """

    name = "router"

    def route(self, job: Job, shards: Sequence[ShardViewSummary]) -> int:
        """Return the ``shard_id`` of the summary chosen for ``job``."""
        raise NotImplementedError


class RoundRobinRouter(FederationRouter):
    """Cycle through the feasible shards, one gang each.

    The cursor advances once per routed gang regardless of how many shards
    were feasible for it, so small gangs keep rotating over the full
    federation while oversized gangs cycle over the subset that fits them.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def route(self, job: Job, shards: Sequence[ShardViewSummary]) -> int:
        del job
        view = shards[self._cursor % len(shards)]
        self._cursor += 1
        return view.shard_id


def _load_key(view: ShardViewSummary) -> Tuple[float, float, int]:
    """Least-loaded ordering: utilisation, then pending demand, then id.

    Primary key is the compute-weighted capacity utilisation (failed nodes
    don't count as schedulable headroom).  Early in a run every shard is at
    0% utilisation, so pending demand relative to capacity breaks ties before
    the deterministic shard-id fallback.  A shard with *zero* healthy
    capacity (every node failed or scaled in) ranks as maximally loaded --
    ``capacity_utilization`` reports such a shard as 0.0, and treating that
    as "idle" would funnel every arrival into a dead shard for the duration
    of its outage.
    """
    if view.healthy_capacity <= 0:
        return (math.inf, math.inf, view.shard_id)
    pending = view.pending_gpu_demand / view.healthy_capacity
    return (view.capacity_utilization, pending, view.shard_id)


class LeastLoadedRouter(FederationRouter):
    """Greedy: route to the shard with the lowest capacity utilisation."""

    name = "least-loaded"

    def route(self, job: Job, shards: Sequence[ShardViewSummary]) -> int:
        del job
        return min(shards, key=_load_key).shard_id


class GpuTypeAffinityRouter(FederationRouter):
    """Locality first: prefer shards that own the job's requested GPU type.

    Candidate order: shards with a *free* GPU of the requested type, then
    shards owning the type at all (on a healthy node), then every shard.
    Within each tier the least-loaded ordering decides.  Jobs whose type no
    shard owns degrade gracefully to pure least-loaded routing.
    """

    name = "gpu-affinity"

    def route(self, job: Job, shards: Sequence[ShardViewSummary]) -> int:
        wanted = gpu_type_key(job.gpu_type)
        with_free = [v for v in shards if v.free_gpus_by_type.get(wanted, 0) > 0]
        if with_free:
            return min(with_free, key=_load_key).shard_id
        with_type = [v for v in shards if wanted in v.owned_gpu_types]
        if with_type:
            return min(with_type, key=_load_key).shard_id
        return min(shards, key=_load_key).shard_id


class QueueDelayRouter(FederationRouter):
    """Predictive router in the spirit of Block's load balancer.

    Scores each shard with a fluid-model *predicted clearing time* for the
    incoming gang::

        score(shard) = (backlog_gpu_seconds + job.num_gpus * job.duration)
                       / healthy_capacity

    i.e. the time a work-conserving shard needs to drain everything already
    committed to it plus the new gang, given its compute-weighted capacity.
    Unlike instantaneous utilisation this looks *forward*: a shard running
    one near-finished job beats a shard at equal utilisation running jobs
    with hours of remaining work, and heterogeneous shards are normalised by
    their actual capacity.  Shards with zero healthy capacity score infinite
    and are only chosen when every shard is down (deterministic id
    tie-break).
    """

    name = "queue-delay"

    def route(self, job: Job, shards: Sequence[ShardViewSummary]) -> int:
        def score(view: ShardViewSummary) -> Tuple[float, int]:
            if view.healthy_capacity <= 0:
                return (math.inf, view.shard_id)
            demand = job.num_gpus * job.duration
            return (
                (view.outstanding_gpu_seconds + demand) / view.healthy_capacity,
                view.shard_id,
            )

        return min(shards, key=score).shard_id


#: Router registry: name -> zero-argument factory (routers are stateful, so
#: every federation run must get a fresh instance, like policies).
ROUTER_FACTORIES = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    GpuTypeAffinityRouter.name: GpuTypeAffinityRouter,
    QueueDelayRouter.name: QueueDelayRouter,
}


def router_names() -> List[str]:
    return sorted(ROUTER_FACTORIES)


def make_router(name: str) -> FederationRouter:
    """Instantiate a stock router by registry name."""
    if name not in ROUTER_FACTORIES:
        from repro.core.exceptions import ConfigurationError

        known = ", ".join(router_names())
        raise ConfigurationError(f"unknown router {name!r}; known: {known}")
    return ROUTER_FACTORIES[name]()
