"""Pluggable routing policies for the multi-cluster federation layer.

A :class:`FederationRouter` is the admission-side counterpart of a scheduling
policy one level up: where a scheduling policy orders jobs *within* a cluster,
a router decides which shard (independent cluster + policy stack) an incoming
gang enters at all.  Routers see a read-only :class:`ShardView` per shard --
the shard's cluster and job state as of the last completed round, plus the
gangs already routed to it but not yet admitted -- and return a shard index.

Determinism contract: routing is a pure function of the job and the shard
views (round-robin additionally keeps an internal cursor, which is still
deterministic), with explicit shard-id tie-breaks.  No router draws
randomness, so a federation run is replayable and the fast-forward parity
checks extend across the routing layer.

The four stock routers cover the design space the Block paper (predictive
load balancing across scheduler instances) motivates:

* :class:`RoundRobinRouter` -- the static baseline;
* :class:`LeastLoadedRouter` -- greedy on current capacity utilisation;
* :class:`GpuTypeAffinityRouter` -- locality first (shards owning the job's
  requested GPU generation), then least-loaded;
* :class:`QueueDelayRouter` -- predictive: routes to the shard whose
  estimated queue backlog plus the job's own service demand clears first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.cluster_state import ClusterState, gpu_type_key
from repro.core.job import Job
from repro.core.job_state import JobState

__all__ = [
    "ShardView",
    "FederationRouter",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "GpuTypeAffinityRouter",
    "QueueDelayRouter",
    "ROUTER_FACTORIES",
    "router_names",
    "make_router",
]


@dataclass(frozen=True)
class ShardView:
    """Read-only facts a router may consult about one shard.

    ``cluster_state``/``job_state`` are the shard's *live* objects (copying
    them per decision would dwarf the routing cost); routers must treat them
    as immutable.  ``queued_jobs`` are gangs already routed to the shard but
    still in its arrival queue -- without them, two gangs arriving in the
    same round would both see the shard as empty and pile onto it.
    """

    shard_id: int
    cluster_state: ClusterState
    job_state: JobState
    current_time: float
    queued_jobs: Tuple[Job, ...] = ()

    # ------------------------------------------------------------------
    # Derived load metrics shared by the stock routers
    # ------------------------------------------------------------------

    def pending_gpu_demand(self) -> int:
        """GPUs wanted by jobs that are admitted-but-idle or still queued."""
        job_state = self.job_state
        demand = sum(
            job.num_gpus for job in job_state.active_jobs() if not job.is_running
        )
        demand += sum(job.num_gpus for job in self.queued_jobs)
        return demand

    def outstanding_gpu_seconds(self) -> float:
        """Remaining compute demand committed to this shard, in GPU-seconds.

        Sums ``remaining_work * num_gpus`` over every active job plus every
        routed-but-unadmitted gang: the fluid-model backlog a new arrival
        queues behind.
        """
        total = 0.0
        for job in self.job_state.active_jobs():
            total += job.remaining_work * job.num_gpus
        for job in self.queued_jobs:
            total += job.remaining_work * job.num_gpus
        return total


class FederationRouter:
    """Decides which shard an incoming gang is admitted to.

    ``route`` receives the views of the shards the gang can *feasibly* run
    on (the engine pre-filters shards whose total GPU count is below the
    gang size -- routing there would starve the job forever) and must return
    the ``shard_id`` of one of them.
    """

    name = "router"

    def route(self, job: Job, shards: Sequence[ShardView]) -> int:
        """Return the ``shard_id`` of the view chosen for ``job``."""
        raise NotImplementedError


class RoundRobinRouter(FederationRouter):
    """Cycle through the feasible shards, one gang each.

    The cursor advances once per routed gang regardless of how many shards
    were feasible for it, so small gangs keep rotating over the full
    federation while oversized gangs cycle over the subset that fits them.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def route(self, job: Job, shards: Sequence[ShardView]) -> int:
        del job
        view = shards[self._cursor % len(shards)]
        self._cursor += 1
        return view.shard_id


def _load_key(view: ShardView) -> Tuple[float, float, int]:
    """Least-loaded ordering: utilisation, then pending demand, then id.

    Primary key is the O(1) compute-weighted :meth:`ClusterState.capacity_utilization`
    (failed nodes don't count as schedulable headroom).  Early in a run every
    shard is at 0% utilisation, so pending demand relative to capacity breaks
    ties before the deterministic shard-id fallback.  A shard with *zero*
    healthy capacity (every node failed or scaled in) ranks as maximally
    loaded -- ``capacity_utilization`` reports such a shard as 0.0, and
    treating that as "idle" would funnel every arrival into a dead shard for
    the duration of its outage.
    """
    cluster = view.cluster_state
    capacity = cluster.healthy_capacity()
    if capacity <= 0:
        return (math.inf, math.inf, view.shard_id)
    pending = view.pending_gpu_demand() / capacity
    return (cluster.capacity_utilization(), pending, view.shard_id)


class LeastLoadedRouter(FederationRouter):
    """Greedy: route to the shard with the lowest capacity utilisation."""

    name = "least-loaded"

    def route(self, job: Job, shards: Sequence[ShardView]) -> int:
        del job
        return min(shards, key=_load_key).shard_id


class GpuTypeAffinityRouter(FederationRouter):
    """Locality first: prefer shards that own the job's requested GPU type.

    Candidate order: shards with a *free* GPU of the requested type, then
    shards owning the type at all (on a healthy node), then every shard.
    Within each tier the least-loaded ordering decides.  Jobs whose type no
    shard owns degrade gracefully to pure least-loaded routing.
    """

    name = "gpu-affinity"

    def route(self, job: Job, shards: Sequence[ShardView]) -> int:
        wanted = gpu_type_key(job.gpu_type)

        def owns_type(view: ShardView) -> bool:
            return any(
                gpu_type_key(node.gpu_type) == wanted
                for node in view.cluster_state.active_nodes()
            )

        with_free = [v for v in shards if v.cluster_state.num_free_gpus(wanted) > 0]
        if with_free:
            return min(with_free, key=_load_key).shard_id
        with_type = [v for v in shards if owns_type(v)]
        if with_type:
            return min(with_type, key=_load_key).shard_id
        return min(shards, key=_load_key).shard_id


class QueueDelayRouter(FederationRouter):
    """Predictive router in the spirit of Block's load balancer.

    Scores each shard with a fluid-model *predicted clearing time* for the
    incoming gang::

        score(shard) = (backlog_gpu_seconds + job.num_gpus * job.duration)
                       / healthy_capacity

    i.e. the time a work-conserving shard needs to drain everything already
    committed to it plus the new gang, given its compute-weighted capacity.
    Unlike instantaneous utilisation this looks *forward*: a shard running
    one near-finished job beats a shard at equal utilisation running jobs
    with hours of remaining work, and heterogeneous shards are normalised by
    their actual capacity.  Shards with zero healthy capacity score infinite
    and are only chosen when every shard is down (deterministic id
    tie-break).
    """

    name = "queue-delay"

    def route(self, job: Job, shards: Sequence[ShardView]) -> int:
        def score(view: ShardView) -> Tuple[float, int]:
            capacity = view.cluster_state.healthy_capacity()
            if capacity <= 0:
                return (math.inf, view.shard_id)
            backlog = view.outstanding_gpu_seconds()
            demand = job.num_gpus * job.duration
            return ((backlog + demand) / capacity, view.shard_id)

        return min(shards, key=score).shard_id


#: Router registry: name -> zero-argument factory (routers are stateful, so
#: every federation run must get a fresh instance, like policies).
ROUTER_FACTORIES = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    GpuTypeAffinityRouter.name: GpuTypeAffinityRouter,
    QueueDelayRouter.name: QueueDelayRouter,
}


def router_names() -> List[str]:
    return sorted(ROUTER_FACTORIES)


def make_router(name: str) -> FederationRouter:
    """Instantiate a stock router by registry name."""
    if name not in ROUTER_FACTORIES:
        from repro.core.exceptions import ConfigurationError

        known = ", ".join(router_names())
        raise ConfigurationError(f"unknown router {name!r}; known: {known}")
    return ROUTER_FACTORIES[name]()
