"""Truly parallel federation: shard worker processes behind pipes.

:class:`ParallelFederationEngine` runs the exact routing loop of the serial
:class:`~repro.federation.engine.FederationEngine` -- same
:func:`~repro.federation.engine.drive_federation`, same routers, same global
``(arrival_time, job_id)`` order -- but executes the shards in worker
processes, so an N-shard federation uses up to N cores instead of one.

Protocol
--------

Each worker owns one or more :class:`~repro.federation.shard.ShardSimulator`
instances (shard ``i`` lives on worker ``i % workers``) built *in the worker*
from a picklable :class:`~repro.federation.engine.UniformShardFactory` -- live
simulators never cross the pipe on the hot path (they *do* cross it as opaque
checkpoint blobs under supervision, which is safe since the PR 6 picklability
contract plus registry ``bind_epoch`` healing made whole-simulator round-trips
bit-exact).  Over its duplex pipe a worker answers:

* ``("advance", stop_time)`` -> ``("ok", [ShardViewSummary, ...])`` -- run
  every owned shard to the pause point before ``stop_time`` and report their
  routing summaries, in owned-shard order;
* ``("submit", shard_id, job)`` -- queue a routed gang; fire-and-forget, the
  pipe's FIFO ordering guarantees it is applied before the next ``advance``;
* ``("finish",)`` -> ``("ok", [SimulationResult, ...])`` -- drain the owned
  shards to completion and ship back their full results;
* ``("finish_stats",)`` -> ``("ok", [ShardFinishStats, ...])`` -- same drain,
  but reduce each result to compact statistics *inside the worker* (streaming
  runs: the parent never holds a full shard result);
* ``("checkpoint",)`` -> ``("ok", [bytes, ...])`` -- pickle every owned shard
  and ship the blobs (supervision only);
* ``("restore", [blob_or_None, ...])`` -> ``("ok", None)`` -- rebuild owned
  shards from checkpoint blobs (``None`` means "build fresh from the
  factory": the shard never reached a checkpoint);
* ``("hang", seconds)`` -- sleep without replying (test hook: a worker whose
  main loop is stuck but whose heartbeat thread keeps beating, the case only
  a bounded collect timeout can detect);
* ``("close",)`` -- exit.

Any worker-side exception is shipped back as ``("error", traceback)`` and
re-raised in the parent as a :class:`~repro.federation.FatalWorkerError`; a
worker that dies without replying (crash, ``os._exit``, OOM-kill) or goes
silent is detected by polling with liveness checks and raised as a
:class:`~repro.federation.RetryableWorkerError` -- which, under supervision,
is caught and recovered instead.

Supervision
-----------

Pass a :class:`SupervisorConfig` to enable the recovery layer (see
``docs/robustness.md``).  The parent then keeps, per shard, the last
checkpoint blob plus a *command log* of everything sent since that checkpoint
(advances, and submits as pickled-at-send job bytes).  Workers emit
heartbeats from a side thread.  When a worker crashes, hangs past
``collect_timeout_s``, or goes silent past ``heartbeat_timeout_s``, the
supervisor respawns it with exponential backoff, restores its shards from
their checkpoints, replays the command log, and re-sends the in-flight
command.  Because shards are deterministic functions of their command
history, the recovered run is **bit-identical to a fault-free run** -- the
chaos leg of ``python -m repro.bench --chaos`` gates on exactly this.

When the restart budget is exhausted, ``on_unrecoverable`` picks the policy:
``"raise"`` aborts with :class:`~repro.federation.FatalWorkerError`;
``"degrade"`` marks the worker's shards dead -- their un-checkpointed
(queued-but-unrouted) jobs become *orphans* that
:func:`~repro.federation.engine.drive_federation` deterministically re-routes
to surviving shards, while jobs already inside the dead shards' checkpoints
are reported lost via :class:`~repro.metrics.summary.FaultStats`.

Determinism
-----------

Bit-identical to the serial engine by construction: routing consumes only
``ShardViewSummary`` messages, which workers compute with the same
:meth:`~repro.federation.shard.ShardSimulator.view_summary` the serial
backend calls in-process, and same-round refreshes happen parent-side via
``with_queued`` in both engines.  Shards never observe anything but their own
submitted gangs and clock bounds, so their schedules -- and hence the round
logs, job timings and results -- match the serial run exactly.
``python -m repro.bench --federation`` gates on this parity, and
``--chaos`` gates on it surviving worker kills.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job
from repro.federation import FatalWorkerError, RetryableWorkerError
from repro.federation.engine import (
    FederationEngine,
    FederationResult,
    ShardBackend,
    UniformShardFactory,
    drive_federation,
)
from repro.federation.router import FederationRouter, ShardViewSummary
from repro.metrics.summary import FaultStats, SummaryStats, jct_summary
from repro.simulator.engine import SimulationResult
from repro.telemetry.events import EVENT_SUPERVISOR
from repro.telemetry.recorder import TraceRecorder

__all__ = [
    "ParallelFederationEngine",
    "SupervisorConfig",
    "WorkerKillPlan",
    "WorkerPoolBackend",
    "ShardFinishStats",
    "FederationStreamResult",
    "default_worker_count",
]

#: Seconds between liveness checks while waiting on a worker reply.
_POLL_INTERVAL_S = 0.2

#: Sentinel distinguishing "use the backend default" from an explicit None
#: (= unbounded) in ``_recv``.
_DEFAULT_TIMEOUT = object()


def default_worker_count(num_shards: int) -> int:
    """Workers to use when unspecified: one per shard, capped at usable cores."""
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:
        usable = os.cpu_count() or 1
    return max(1, min(num_shards, usable))


@dataclass(frozen=True)
class SupervisorConfig:
    """Recovery policy of a supervised :class:`WorkerPoolBackend`.

    Defaults are tuned for simulation workloads: cheap frequent checkpoints
    (shards pickle in milliseconds), short backoff (respawning a worker is
    fork + restore, not a container pull).  All knobs are documented in
    ``docs/robustness.md``.
    """

    #: Checkpoint every N successful advances (arrival boundaries); 0
    #: disables periodic checkpoints (recovery then replays from the start,
    #: still bit-exact but O(run) instead of O(interval)).
    checkpoint_interval: int = 8
    #: Seconds between worker heartbeats (side thread; beats even while the
    #: main loop computes an advance).
    heartbeat_interval_s: float = 0.5
    #: Declare a worker silent after this many seconds without *any* message;
    #: ``None`` disables the silence detector (collect timeouts still apply).
    heartbeat_timeout_s: Optional[float] = 10.0
    #: Respawn attempts per incident before the worker is unrecoverable.
    #: The counter resets after every successful advance, so the budget
    #: bounds consecutive failures, not lifetime failures.
    max_restarts: int = 2
    #: Exponential backoff before respawn attempt k: ``base * 2**(k-1)``,
    #: capped at ``backoff_max_s``.
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    #: What to do when the restart budget is exhausted: ``"raise"`` aborts
    #: the run, ``"degrade"`` marks the shards dead and re-routes their
    #: orphaned jobs to survivors.
    on_unrecoverable: str = "raise"

    def __post_init__(self) -> None:
        if self.on_unrecoverable not in ("raise", "degrade"):
            raise ConfigurationError(
                "on_unrecoverable must be 'raise' or 'degrade', got "
                f"{self.on_unrecoverable!r}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )


@dataclass(frozen=True)
class WorkerKillPlan:
    """Deterministic SIGKILL injection for chaos tests and the chaos bench.

    Each entry ``(advance_index, worker_index)`` kills that worker at the
    given 0-based advance call -- ``when="before"`` ahead of the broadcast
    (the submit window is in flight), ``when="after"`` between broadcast and
    collect (the advance itself is in flight).  Recovery parity must hold for
    either timing, which is exactly what makes the checkpoint/replay design
    trustworthy: the *result* may not depend on when the kill lands.
    """

    kills: Tuple[Tuple[int, int], ...]
    when: str = "before"

    def __post_init__(self) -> None:
        if self.when not in ("before", "after"):
            raise ConfigurationError(
                f"kill plan 'when' must be 'before' or 'after', got {self.when!r}"
            )


@dataclass(frozen=True)
class ShardFinishStats:
    """Compact in-worker reduction of one shard's finished run.

    The streaming finish payload: everything the parent reports without
    holding the shard's jobs or round log (a 64-shard, 100k-job run would
    otherwise ship every job object back through the pipes it just avoided
    keeping).
    """

    shard_id: int
    rounds: int
    jobs: int
    finished_jobs: int
    eviction_count: int
    preemption_count: int
    stats: SummaryStats
    wall_time_s: float


def _finish_stats(shard_id: int, result: SimulationResult) -> ShardFinishStats:
    return ShardFinishStats(
        shard_id=shard_id,
        rounds=result.rounds,
        jobs=len(result.jobs),
        finished_jobs=sum(1 for j in result.jobs if j.completion_time is not None),
        eviction_count=result.eviction_count,
        preemption_count=sum(j.num_preemptions for j in result.jobs),
        stats=jct_summary(result.jobs),
        wall_time_s=result.wall_time_s,
    )


def _worker_main(
    conn,
    factory: UniformShardFactory,
    shard_ids: Sequence[int],
    build: bool = True,
    heartbeat_interval_s: Optional[float] = None,
) -> None:
    """Worker process entry point: build owned shards, answer the protocol.

    ``build=False`` is the respawn path: the supervisor restores state via
    ``("restore", blobs)`` right after the handshake, so building shards here
    would be wasted work thrown away a message later.
    """
    send_lock = threading.Lock()

    def send(message) -> None:
        # The heartbeat thread and the main loop share the pipe; Connection
        # writes are not atomic across threads, so serialise them.
        with send_lock:
            conn.send(message)

    if heartbeat_interval_s is not None:
        stop_beating = threading.Event()

        def beat() -> None:
            while not stop_beating.wait(heartbeat_interval_s):
                try:
                    send(("heartbeat", None))
                except Exception:
                    return

        threading.Thread(target=beat, daemon=True, name="shard-heartbeat").start()
    try:
        shards = (
            {shard_id: factory.build(shard_id) for shard_id in shard_ids}
            if build
            else {}
        )
        durations = [shards[s].manager.round_duration for s in shards]
        send(("ready", durations))
    except BaseException:
        try:
            send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "advance":
                stop_time = message[1]
                for shard_id in shard_ids:
                    shards[shard_id].run_until(stop_time)
                send(("ok", [shards[s].view_summary() for s in shard_ids]))
            elif command == "submit":
                _, shard_id, job = message
                if isinstance(job, (bytes, bytearray)):
                    # Replayed submit: the supervisor logs jobs as the bytes
                    # pickled at original send time, for bit-equality.
                    job = pickle.loads(job)
                shards[shard_id].submit(job)
            elif command == "checkpoint":
                send(("ok", [pickle.dumps(shards[s]) for s in shard_ids]))
            elif command == "restore":
                blobs = message[1]
                shards = {
                    shard_id: (
                        pickle.loads(blob)
                        if blob is not None
                        else factory.build(shard_id)
                    )
                    for shard_id, blob in zip(shard_ids, blobs)
                }
                send(("ok", None))
            elif command == "finish":
                send(("ok", [shards[s].finish() for s in shard_ids]))
            elif command == "finish_stats":
                send(
                    ("ok", [_finish_stats(s, shards[s].finish()) for s in shard_ids])
                )
            elif command == "hang":
                time.sleep(message[1])
            elif command == "close":
                return
            else:
                raise SimulationError(f"unknown federation worker command {command!r}")
    except EOFError:
        # Parent vanished; nothing to report to.
        return
    except BaseException:
        try:
            send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _dead_summary(shard_id: int, current_time: float) -> ShardViewSummary:
    """Routing view of a dead shard: zero capacity.

    ``total_gpus=0`` makes the driver's feasibility filter exclude the shard
    for every gang (no job needs zero GPUs), and the routers' load key
    already ranks ``healthy_capacity <= 0`` shards maximally loaded -- so a
    dead shard needs no special case anywhere downstream of this summary.
    """
    return ShardViewSummary(
        shard_id=shard_id,
        current_time=current_time,
        total_gpus=0,
        healthy_capacity=0.0,
        capacity_utilization=1.0,
    )


def _empty_result(shard_id: int, round_duration: float) -> SimulationResult:
    """Placeholder finish payload of a dead shard (degraded runs)."""
    return SimulationResult(
        jobs=[],
        tracked_job_ids=[],
        round_duration=round_duration,
        rounds=0,
        end_time=0.0,
        round_log=[],
    )


class WorkerPoolBackend(ShardBackend):
    """Shards distributed over worker processes, driven via duplex pipes.

    Implements the :class:`~repro.federation.engine.ShardBackend` contract,
    so :func:`~repro.federation.engine.drive_federation` runs on it unchanged.
    Shard ``i`` lives on worker ``i % workers``, which keeps any number of
    shards runnable on a fixed pool (the 64-shard demo on an 8-worker pool)
    and spreads the lockstep load evenly for uniform shards.

    With ``supervisor=None`` (the default) behavior is exactly the
    pre-supervision backend: no heartbeats, no checkpoints, no command log,
    and any worker failure raises.  ``collect_timeout_s`` bounds every reply
    wait independently of supervision (``None`` preserves the historical
    unbounded blocking collect).
    """

    def __init__(
        self,
        factory: UniformShardFactory,
        num_shards: int,
        workers: int,
        mp_context: Optional[str] = None,
        handshake_timeout_s: float = 120.0,
        collect_timeout_s: Optional[float] = None,
        supervisor: Optional[SupervisorConfig] = None,
        kill_plan: Optional[WorkerKillPlan] = None,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if collect_timeout_s is not None and collect_timeout_s <= 0:
            raise ConfigurationError(
                f"collect_timeout_s must be positive or None, got {collect_timeout_s}"
            )
        if supervisor is not None and factory.trace_dir is not None:
            # Checkpoints pickle whole shards; a shard tracing to an open
            # JSONL handle cannot cross that boundary, and replaying a
            # restored shard would re-emit duplicate trace records anyway.
            raise ConfigurationError(
                "supervised worker pools cannot use factory.trace_dir; "
                "record supervisor telemetry on the parent recorder instead"
            )
        self.num_shards = num_shards
        self.workers = min(workers, num_shards)
        self.collect_timeout_s = collect_timeout_s
        self._factory = factory
        self._supervisor = supervisor
        self._kill_plan = kill_plan
        self._handshake_timeout_s = handshake_timeout_s
        self._ctx = multiprocessing.get_context(mp_context)
        self._owned: List[List[int]] = [[] for _ in range(self.workers)]
        for shard_id in range(num_shards):
            self._owned[shard_id % self.workers].append(shard_id)
        self._conns: List[object] = [None] * self.workers
        self._procs: List[object] = [None] * self.workers
        self._phase: List[str] = ["spawn"] * self.workers
        self._last_beat: List[float] = [0.0] * self.workers
        self._restarts: List[int] = [0] * self.workers
        self._closed = False
        # Supervision state: per-shard checkpoint blobs (None = build fresh
        # from the factory), plus the global command log since the last
        # checkpoint.  Only populated when a supervisor is configured.
        self._checkpoints: List[Optional[bytes]] = [None] * num_shards
        self._log: List[tuple] = []
        self._advance_index = 0
        self._advances_since_checkpoint = 0
        self._submit_counts: List[int] = [0] * num_shards
        self._dead_workers: set = set()
        self._dead_shards: set = set()
        #: Orphans awaiting re-route: (job, shard it was originally routed to).
        self._orphans: List[Tuple[Job, int]] = []
        self._stat_restarts = 0
        self._stat_checkpoints = 0
        self._stat_replayed = 0
        self._stat_rerouted = 0
        self._stat_lost = 0
        # Parent-side telemetry: supervisor actions (restart / checkpoint /
        # degrade) with the running FaultStats counters, stamped with the
        # last advanced-to simulated time.
        self._recorder = recorder
        self._now = 0.0
        try:
            for worker_index in range(self.workers):
                self._spawn(worker_index, build=True)
            self.round_duration = self._handshake(handshake_timeout_s)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, worker_index: int, build: bool) -> None:
        heartbeat = (
            self._supervisor.heartbeat_interval_s
            if self._supervisor is not None
            else None
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._factory, self._owned[worker_index], build, heartbeat),
            name=f"federation-shard-worker-{worker_index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[worker_index] = parent_conn
        self._procs[worker_index] = proc
        self._last_beat[worker_index] = time.monotonic()
        self._phase[worker_index] = "handshake"

    def _reap(self, worker_index: int) -> None:
        """Tear down a failed worker's process and pipe (idempotent)."""
        proc = self._procs[worker_index]
        conn = self._conns[worker_index]
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def _describe(self, worker_index: int) -> str:
        """Identify a worker in error messages: shards, pid, last phase."""
        proc = self._procs[worker_index]
        pid = proc.pid if proc is not None else None
        return (
            f"federation worker {worker_index} (shards "
            f"{self._owned[worker_index]}, pid {pid}, "
            f"phase {self._phase[worker_index]!r})"
        )

    # ------------------------------------------------------------------
    # Pipe plumbing with crash detection
    # ------------------------------------------------------------------

    def _recv(self, worker_index: int, timeout_s=_DEFAULT_TIMEOUT):
        """Receive one reply, raising instead of hanging if the worker died.

        Heartbeat messages are drained (and refresh the liveness clock) but
        never returned.  Raises :class:`RetryableWorkerError` for death,
        silence, or a blown collect timeout, and :class:`FatalWorkerError`
        for a worker-shipped exception -- a deterministic failure that replay
        would only reproduce.
        """
        if timeout_s is _DEFAULT_TIMEOUT:
            timeout_s = self.collect_timeout_s
        conn = self._conns[worker_index]
        proc = self._procs[worker_index]
        cfg = self._supervisor
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            try:
                if conn.poll(_POLL_INTERVAL_S):
                    reply = conn.recv()
                    self._last_beat[worker_index] = time.monotonic()
                    if reply[0] == "heartbeat":
                        continue
                    break
            except (EOFError, OSError):
                raise RetryableWorkerError(
                    f"{self._describe(worker_index)} closed its pipe "
                    f"unexpectedly (exitcode {proc.exitcode})"
                )
            if not proc.is_alive():
                # One final drain: the worker may have replied (or shipped an
                # error) just before exiting.
                if conn.poll(0):
                    try:
                        reply = conn.recv()
                        if reply[0] != "heartbeat":
                            break
                    except (EOFError, OSError):
                        pass
                raise RetryableWorkerError(
                    f"{self._describe(worker_index)} died with exitcode "
                    f"{proc.exitcode} without replying"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise RetryableWorkerError(
                    f"{self._describe(worker_index)} did not reply within "
                    f"{timeout_s:.0f}s (collect timeout)"
                )
            if (
                cfg is not None
                and cfg.heartbeat_timeout_s is not None
                and time.monotonic() - self._last_beat[worker_index]
                > cfg.heartbeat_timeout_s
            ):
                raise RetryableWorkerError(
                    f"{self._describe(worker_index)} went silent (no heartbeat "
                    f"for {cfg.heartbeat_timeout_s:.0f}s)"
                )
        tag, payload = reply
        if tag == "error":
            raise FatalWorkerError(f"{self._describe(worker_index)} failed:\n{payload}")
        return tag, payload

    def _send(self, worker_index: int, message: tuple, phase: Optional[str] = None) -> None:
        self._phase[worker_index] = phase if phase is not None else message[0]
        try:
            self._conns[worker_index].send(message)
        except (BrokenPipeError, OSError):
            raise RetryableWorkerError(
                f"{self._describe(worker_index)} is gone (exitcode "
                f"{self._procs[worker_index].exitcode}); cannot send {message[0]!r}"
            )

    def _handshake(self, timeout_s: float) -> float:
        durations = set()
        for worker_index in range(self.workers):
            tag, payload = self._recv(worker_index, timeout_s)
            if tag != "ready":
                raise FatalWorkerError(
                    f"{self._describe(worker_index)} sent {tag!r} instead of "
                    "the ready handshake"
                )
            durations.update(payload)
            self._phase[worker_index] = "idle"
        if len(durations) != 1:
            raise ConfigurationError(
                "shards must share one round_duration for lockstep routing, "
                f"got {sorted(durations)}"
            )
        return durations.pop()

    # ------------------------------------------------------------------
    # Supervision: respawn, replay, degrade
    # ------------------------------------------------------------------

    def _worker_failure(
        self, worker_index: int, exc: RetryableWorkerError, resend: Optional[tuple]
    ) -> bool:
        """React to a retryable failure: recover (True) or degrade (False).

        Unsupervised backends re-raise -- the historical contract.  Under
        supervision, the worker is respawned with exponential backoff, its
        shards restored from their last checkpoints, the command log since
        those checkpoints replayed, and the in-flight command (``resend``)
        re-sent.  Replay is what buys bit-identical results: a shard is a
        deterministic function of its command history, and the log *is* that
        history.
        """
        if self._supervisor is None:
            raise exc
        cfg = self._supervisor
        self._reap(worker_index)
        while self._restarts[worker_index] < cfg.max_restarts:
            self._restarts[worker_index] += 1
            self._stat_restarts += 1
            delay = min(
                cfg.backoff_base_s * (2 ** (self._restarts[worker_index] - 1)),
                cfg.backoff_max_s,
            )
            if delay > 0:
                time.sleep(delay)
            try:
                self._respawn_and_replay(worker_index)
                if resend is not None:
                    self._send(worker_index, resend)
                self._emit_supervisor(
                    "restart",
                    worker=worker_index,
                    attempt=self._restarts[worker_index],
                )
                return True
            except RetryableWorkerError:
                self._reap(worker_index)
        if cfg.on_unrecoverable == "degrade":
            self._degrade(worker_index)
            self._emit_supervisor("degrade", worker=worker_index)
            return False
        raise FatalWorkerError(
            f"{self._describe(worker_index)} unrecoverable after "
            f"{cfg.max_restarts} restart attempts: {exc}"
        ) from exc

    def _respawn_and_replay(self, worker_index: int) -> None:
        self._spawn(worker_index, build=False)
        tag, _ = self._recv(worker_index, self._handshake_timeout_s)
        if tag != "ready":
            raise FatalWorkerError(
                f"{self._describe(worker_index)} sent {tag!r} instead of the "
                "ready handshake after respawn"
            )
        blobs = [self._checkpoints[s] for s in self._owned[worker_index]]
        self._send(worker_index, ("restore", blobs), phase="restore")
        self._recv(worker_index)
        owned = set(self._owned[worker_index])
        replayed = 0
        for entry in self._log:
            if entry[0] == "advance":
                self._send(
                    worker_index,
                    ("advance", entry[1]),
                    phase=f"replay-advance t={entry[1]}",
                )
                self._recv(worker_index)
                replayed += 1
            elif entry[0] == "submit" and entry[1] in owned:
                self._send(
                    worker_index,
                    ("submit", entry[1], entry[2]),
                    phase=f"replay-submit shard {entry[1]}",
                )
                replayed += 1
        self._stat_replayed += replayed
        self._phase[worker_index] = "idle"

    def _degrade(self, worker_index: int) -> None:
        """Mark a worker's shards dead; extract their re-routable orphans.

        The orphans are exactly the submit-log window: jobs routed to the
        shard after its last checkpoint, which no surviving state has seen --
        re-routing them is therefore safe (no double execution).  Jobs
        already inside the checkpoint are gone with the shard and counted as
        lost.
        """
        self._dead_workers.add(worker_index)
        self._reap(worker_index)
        self._phase[worker_index] = "dead"
        for shard_id in self._owned[worker_index]:
            if shard_id in self._dead_shards:
                continue
            self._dead_shards.add(shard_id)
            window = [e for e in self._log if e[0] == "submit" and e[1] == shard_id]
            for entry in window:
                self._orphans.append((pickle.loads(entry[2]), shard_id))
            self._stat_rerouted += len(window)
            self._stat_lost += self._submit_counts[shard_id] - len(window)
        if len(self._dead_shards) >= self.num_shards:
            raise FatalWorkerError(
                "every federation shard is dead; nothing left to degrade onto"
            )

    def _checkpoint(self) -> None:
        by_shard = self._gather(("checkpoint",))
        for shard_id, blob in by_shard.items():
            self._checkpoints[shard_id] = blob
        # The blobs capture everything the log would replay; truncating it
        # here is what keeps parent-side memory bounded on streaming runs.
        self._log.clear()
        self._advances_since_checkpoint = 0
        self._stat_checkpoints += 1
        self._emit_supervisor("checkpoint")

    def _emit_supervisor(self, op: str, **extra) -> None:
        """Stream a supervisor action plus the live FaultStats counters."""
        if self._recorder is None:
            return
        payload = {"op": op, "advance_index": self._advance_index}
        payload.update(extra)
        payload.update(self.fault_stats().as_dict())
        self._recorder.emit(EVENT_SUPERVISOR, self._now, payload)

    def _inject_kills(self, when: str) -> None:
        plan = self._kill_plan
        if plan is None or plan.when != when:
            return
        for advance_index, worker_index in plan.kills:
            if advance_index != self._advance_index:
                continue
            if worker_index >= self.workers or worker_index in self._dead_workers:
                continue
            proc = self._procs[worker_index]
            if proc is not None and proc.pid is not None and proc.is_alive():
                os.kill(proc.pid, signal.SIGKILL)

    # ------------------------------------------------------------------
    # Broadcast/collect
    # ------------------------------------------------------------------

    def _gather(self, command: tuple, after_send=None) -> Dict[int, object]:
        """Broadcast ``command``, collect replies, keyed by shard id.

        The broadcast goes out to every live worker *before* any reply is
        awaited -- this is the parallelism: all workers advance their shards
        simultaneously while the parent blocks on the slowest one.  Failures
        on either leg route through :meth:`_worker_failure`; a shard with no
        reply (degraded mid-gather) is simply absent from the mapping.
        """
        for worker_index in range(self.workers):
            if worker_index in self._dead_workers:
                continue
            try:
                self._send(worker_index, command)
            except RetryableWorkerError as exc:
                self._worker_failure(worker_index, exc, resend=command)
        if after_send is not None:
            after_send()
        by_shard: Dict[int, object] = {}
        for worker_index in range(self.workers):
            if worker_index in self._dead_workers:
                continue
            payload = self._collect(worker_index, command)
            if payload is None:
                continue
            for shard_id, item in zip(self._owned[worker_index], payload):
                by_shard[shard_id] = item
            self._phase[worker_index] = "idle"
        return by_shard

    def _collect(self, worker_index: int, command: tuple):
        while True:
            try:
                _, payload = self._recv(worker_index)
                return payload
            except RetryableWorkerError as exc:
                if not self._worker_failure(worker_index, exc, resend=command):
                    return None

    # ------------------------------------------------------------------
    # ShardBackend contract
    # ------------------------------------------------------------------

    def advance(self, stop_time: float) -> List[ShardViewSummary]:
        self._inject_kills("before")
        by_shard = self._gather(
            ("advance", stop_time), after_send=lambda: self._inject_kills("after")
        )
        self._advance_index += 1
        if self._supervisor is not None:
            self._log.append(("advance", stop_time))
            self._advances_since_checkpoint += 1
            for worker_index in range(self.workers):
                if worker_index not in self._dead_workers:
                    self._restarts[worker_index] = 0
            interval = self._supervisor.checkpoint_interval
            if interval > 0 and self._advances_since_checkpoint >= interval:
                self._checkpoint()
        if not by_shard:
            raise FatalWorkerError(
                "every federation shard is dead; nothing left to advance"
            )
        now = next(iter(by_shard.values())).current_time
        self._now = now
        return [
            by_shard[shard_id] if shard_id in by_shard else _dead_summary(shard_id, now)
            for shard_id in range(self.num_shards)
        ]

    def submit(self, shard_id: int, job: Job) -> None:
        if shard_id in self._dead_shards:
            raise SimulationError(
                f"shard {shard_id} is dead; the router must not route to it"
            )
        worker_index = shard_id % self.workers
        message = ("submit", shard_id, job)
        try:
            self._send(worker_index, message, phase=f"submit shard {shard_id}")
        except RetryableWorkerError as exc:
            if not self._worker_failure(worker_index, exc, resend=message):
                # Degraded on the spot: the job never reached any shard, so
                # it goes straight to the orphan queue for re-routing.
                self._orphans.append((job, shard_id))
                self._stat_rerouted += 1
                return
        if self._supervisor is not None:
            self._log.append(("submit", shard_id, pickle.dumps(job)))
            self._submit_counts[shard_id] += 1

    def take_orphans(self) -> List[Tuple[Job, int]]:
        """Drain jobs stranded by dead shards, in deterministic route order."""
        orphans = sorted(
            self._orphans, key=lambda entry: (entry[0].arrival_time, entry[0].job_id)
        )
        self._orphans = []
        return orphans

    def dead_shard_ids(self) -> frozenset:
        return frozenset(self._dead_shards)

    def finish(self) -> List[SimulationResult]:
        by_shard = self._gather(("finish",))
        return [
            by_shard[shard_id]
            if shard_id in by_shard
            else _empty_result(shard_id, self.round_duration)
            for shard_id in range(self.num_shards)
        ]

    def finish_stats(self) -> List[ShardFinishStats]:
        """Streaming drain: per-shard statistics reduced inside the workers."""
        by_shard = self._gather(("finish_stats",))
        return [
            by_shard[shard_id]
            if shard_id in by_shard
            else _finish_stats(shard_id, _empty_result(shard_id, self.round_duration))
            for shard_id in range(self.num_shards)
        ]

    def fault_stats(self) -> FaultStats:
        """Recovery counters of this run (federation half of the record)."""
        return FaultStats(
            worker_restarts=self._stat_restarts,
            checkpoints=self._stat_checkpoints,
            replayed_commands=self._stat_replayed,
            dead_shards=len(self._dead_shards),
            rerouted_jobs=self._stat_rerouted,
            lost_jobs=self._stat_lost,
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker_index, conn in enumerate(self._conns):
            if conn is None or worker_index in self._dead_workers:
                continue
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            if conn is not None:
                conn.close()


@dataclass
class FederationStreamResult:
    """Result of a streaming (memory-bounded) parallel federation run.

    Unlike :class:`~repro.federation.engine.FederationResult` this never holds
    job objects or round logs: per-shard statistics are reduced inside the
    workers and only :class:`ShardFinishStats` crosses back.  Percentile
    metrics therefore exist per shard but not pooled (percentiles are not
    mergeable); the pooled numbers below are the exactly mergeable ones.
    """

    shard_stats: List[ShardFinishStats]
    jobs_per_shard: List[int]
    router_name: str
    round_duration: float
    total_jobs: int
    wall_time_s: float
    routing_time_s: float
    advance_time_s: float
    workers: int
    #: Parent-process peak RSS at the end of the run, in MiB (the streaming
    #: claim under test: independent of trace length).
    peak_rss_mib: float = 0.0
    #: Recovery counters when the run was supervised; None otherwise.
    fault_stats: Optional[FaultStats] = None

    @property
    def num_shards(self) -> int:
        return len(self.shard_stats)

    def total_rounds(self) -> int:
        return sum(s.rounds for s in self.shard_stats)

    def finished_jobs(self) -> int:
        return sum(s.finished_jobs for s in self.shard_stats)

    def avg_jct(self) -> float:
        """Exact pooled mean JCT (count-weighted merge of per-shard means)."""
        finished = self.finished_jobs()
        if finished == 0:
            return 0.0
        weighted = sum(s.stats.avg_jct * s.finished_jobs for s in self.shard_stats)
        return weighted / finished

    def makespan(self) -> float:
        """Upper bound on the pooled makespan: max over per-shard makespans."""
        if not self.shard_stats:
            return 0.0
        return max(s.stats.makespan for s in self.shard_stats)

    def as_dict(self) -> dict:
        return {
            "router": self.router_name,
            "num_shards": self.num_shards,
            "workers": self.workers,
            "total_jobs": self.total_jobs,
            "finished_jobs": self.finished_jobs(),
            "jobs_per_shard": list(self.jobs_per_shard),
            "total_rounds": self.total_rounds(),
            "avg_jct": self.avg_jct(),
            "makespan": self.makespan(),
            "wall_time_s": self.wall_time_s,
            "routing_time_s": self.routing_time_s,
            "advance_time_s": self.advance_time_s,
            "peak_rss_mib": self.peak_rss_mib,
            "fault_stats": (
                self.fault_stats.as_dict() if self.fault_stats is not None else None
            ),
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "rounds": s.rounds,
                    "jobs": s.jobs,
                    "finished_jobs": s.finished_jobs,
                    "eviction_count": s.eviction_count,
                    "preemption_count": s.preemption_count,
                    "wall_time_s": s.wall_time_s,
                    **{f"stats_{k}": v for k, v in s.stats.as_dict().items()},
                }
                for s in self.shard_stats
            ],
        }


def _peak_rss_mib() -> float:
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except Exception:
        return 0.0


class ParallelFederationEngine:
    """Drop-in parallel counterpart of :class:`FederationEngine`.

    Takes the shard *recipe* (a picklable
    :class:`~repro.federation.engine.UniformShardFactory`) rather than built
    shards, because the shards are constructed inside the workers.  With
    ``workers=1`` and no supervision, no processes are spawned at all: the
    engine builds the shards in-process and delegates to the serial engine,
    which the parallel path is bit-identical to by construction -- so
    ``workers`` is purely a throughput knob.  Supervision (``supervisor``) or
    fault injection (``kill_plan``) force the worker-pool path even for a
    single worker: there is nothing to supervise in-process.
    """

    def __init__(
        self,
        factory: UniformShardFactory,
        num_shards: int,
        router: FederationRouter,
        jobs: Iterable[Job],
        tracked_job_ids: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        collect_timeout_s: Optional[float] = None,
        supervisor: Optional[SupervisorConfig] = None,
        kill_plan: Optional[WorkerKillPlan] = None,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.recorder = recorder
        self.factory = factory
        self.num_shards = num_shards
        self.router = router
        self.workers = (
            default_worker_count(num_shards) if workers is None else workers
        )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        self.mp_context = mp_context
        self.collect_timeout_s = collect_timeout_s
        self.supervisor = supervisor
        self.kill_plan = kill_plan
        self._jobs = jobs
        self._tracked_job_ids = tracked_job_ids

    # ------------------------------------------------------------------

    def _make_backend(self) -> WorkerPoolBackend:
        return WorkerPoolBackend(
            self.factory,
            self.num_shards,
            self.workers,
            self.mp_context,
            collect_timeout_s=self.collect_timeout_s,
            supervisor=self.supervisor,
            kill_plan=self.kill_plan,
            recorder=self.recorder,
        )

    def run(self) -> FederationResult:
        """Route every gang, drain every shard, return the combined result.

        Returns the same :class:`FederationResult` as the serial engine --
        worker shard results cross back whole, so downstream summaries and
        parity checks treat both engines interchangeably.
        """
        arrivals = sorted(self._jobs, key=lambda j: (j.arrival_time, j.job_id))
        if not arrivals:
            raise ConfigurationError("cannot federate an empty workload")
        tracked = (
            [job.job_id for job in arrivals]
            if self._tracked_job_ids is None
            else list(self._tracked_job_ids)
        )
        if self.workers == 1 and self.supervisor is None and self.kill_plan is None:
            engine = FederationEngine(
                shards=self.factory.build_all(self.num_shards),
                router=self.router,
                jobs=arrivals,
                tracked_job_ids=tracked,
                recorder=self.recorder,
            )
            result = engine.run()
            result.workers = 1
            return result
        wall_start = time.perf_counter()
        backend = self._make_backend()
        try:
            stats = drive_federation(
                backend, self.router, arrivals, recorder=self.recorder
            )
            started = time.perf_counter()
            shard_results = backend.finish()
            advance_time = stats.advance_time_s + (time.perf_counter() - started)
        finally:
            backend.close()
        return FederationResult(
            shard_results=shard_results,
            assignments=stats.assignments or {},
            tracked_job_ids=tracked,
            router_name=self.router.name,
            round_duration=backend.round_duration,
            wall_time_s=time.perf_counter() - wall_start,
            routing_time_s=stats.routing_time_s,
            advance_time_s=advance_time,
            workers=backend.workers,
            fault_stats=backend.fault_stats(),
        )

    def run_stream(self) -> FederationStreamResult:
        """Memory-bounded run over a lazy, pre-sorted arrival stream.

        ``jobs`` may be a generator ordered by ``(arrival_time, job_id)``
        (enforced as the stream drains); the parent holds one lookahead job
        and per-shard counters, never the trace, and workers reduce their
        finished shards to :class:`ShardFinishStats` before replying -- this
        is what makes 64-shard, 100k-job runs fit a bounded parent process.
        Requires ``workers >= 2`` (a streaming run that fits one process has
        no reason not to use :meth:`run`).  Under supervision the checkpoint
        blobs add O(shard state) parent memory -- still independent of trace
        length, since the command log truncates at every checkpoint.
        """
        if self.workers < 2:
            raise ConfigurationError(
                "run_stream needs workers >= 2; use run() for in-process runs"
            )
        wall_start = time.perf_counter()
        backend = self._make_backend()
        try:
            stats = drive_federation(
                backend,
                self.router,
                self._jobs,
                record_assignments=False,
                recorder=self.recorder,
            )
            started = time.perf_counter()
            shard_stats = backend.finish_stats()
            advance_time = stats.advance_time_s + (time.perf_counter() - started)
        finally:
            backend.close()
        return FederationStreamResult(
            shard_stats=shard_stats,
            jobs_per_shard=stats.jobs_per_shard,
            router_name=self.router.name,
            round_duration=backend.round_duration,
            total_jobs=stats.total_jobs,
            wall_time_s=time.perf_counter() - wall_start,
            routing_time_s=stats.routing_time_s,
            advance_time_s=advance_time,
            workers=backend.workers,
            peak_rss_mib=_peak_rss_mib(),
            fault_stats=backend.fault_stats(),
        )
