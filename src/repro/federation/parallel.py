"""Truly parallel federation: shard worker processes behind pipes.

:class:`ParallelFederationEngine` runs the exact routing loop of the serial
:class:`~repro.federation.engine.FederationEngine` -- same
:func:`~repro.federation.engine.drive_federation`, same routers, same global
``(arrival_time, job_id)`` order -- but executes the shards in worker
processes, so an N-shard federation uses up to N cores instead of one.

Protocol
--------

Each worker owns one or more :class:`~repro.federation.shard.ShardSimulator`
instances (shard ``i`` lives on worker ``i % workers``) built *in the worker*
from a picklable :class:`~repro.federation.engine.UniformShardFactory` -- live
simulators never cross the pipe (their policy indexes re-bind by object
identity and would silently go stale after unpickling).  Over its duplex pipe
a worker answers:

* ``("advance", stop_time)`` -> ``("ok", [ShardViewSummary, ...])`` -- run
  every owned shard to the pause point before ``stop_time`` and report their
  routing summaries, in owned-shard order;
* ``("submit", shard_id, job)`` -- queue a routed gang; fire-and-forget, the
  pipe's FIFO ordering guarantees it is applied before the next ``advance``;
* ``("finish",)`` -> ``("ok", [SimulationResult, ...])`` -- drain the owned
  shards to completion and ship back their full results;
* ``("finish_stats",)`` -> ``("ok", [ShardFinishStats, ...])`` -- same drain,
  but reduce each result to compact statistics *inside the worker* (streaming
  runs: the parent never holds a full shard result);
* ``("close",)`` -- exit.

Any worker-side exception is shipped back as ``("error", traceback)`` and
re-raised in the parent as a :class:`~repro.core.exceptions.SimulationError`;
a worker that dies without replying (crash, ``os._exit``, OOM-kill) is
detected by polling with liveness checks, so the parent raises instead of
hanging on a silent pipe.

Determinism
-----------

Bit-identical to the serial engine by construction: routing consumes only
``ShardViewSummary`` messages, which workers compute with the same
:meth:`~repro.federation.shard.ShardSimulator.view_summary` the serial
backend calls in-process, and same-round refreshes happen parent-side via
``with_queued`` in both engines.  Shards never observe anything but their own
submitted gangs and clock bounds, so their schedules -- and hence the round
logs, job timings and results -- match the serial run exactly.
``python -m repro.bench --federation`` gates on this parity.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job
from repro.federation.engine import (
    FederationEngine,
    FederationResult,
    ShardBackend,
    UniformShardFactory,
    drive_federation,
)
from repro.federation.router import FederationRouter, ShardViewSummary
from repro.metrics.summary import SummaryStats, jct_summary
from repro.simulator.engine import SimulationResult

__all__ = [
    "ParallelFederationEngine",
    "WorkerPoolBackend",
    "ShardFinishStats",
    "FederationStreamResult",
    "default_worker_count",
]

#: Seconds between liveness checks while waiting on a worker reply.
_POLL_INTERVAL_S = 0.2


def default_worker_count(num_shards: int) -> int:
    """Workers to use when unspecified: one per shard, capped at usable cores."""
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:
        usable = os.cpu_count() or 1
    return max(1, min(num_shards, usable))


@dataclass(frozen=True)
class ShardFinishStats:
    """Compact in-worker reduction of one shard's finished run.

    The streaming finish payload: everything the parent reports without
    holding the shard's jobs or round log (a 64-shard, 100k-job run would
    otherwise ship every job object back through the pipes it just avoided
    keeping).
    """

    shard_id: int
    rounds: int
    jobs: int
    finished_jobs: int
    eviction_count: int
    preemption_count: int
    stats: SummaryStats
    wall_time_s: float


def _finish_stats(shard_id: int, result: SimulationResult) -> ShardFinishStats:
    return ShardFinishStats(
        shard_id=shard_id,
        rounds=result.rounds,
        jobs=len(result.jobs),
        finished_jobs=sum(1 for j in result.jobs if j.completion_time is not None),
        eviction_count=result.eviction_count,
        preemption_count=sum(j.num_preemptions for j in result.jobs),
        stats=jct_summary(result.jobs),
        wall_time_s=result.wall_time_s,
    )


def _worker_main(conn, factory: UniformShardFactory, shard_ids: Sequence[int]) -> None:
    """Worker process entry point: build owned shards, answer the protocol."""
    try:
        shards = {shard_id: factory.build(shard_id) for shard_id in shard_ids}
        conn.send(("ready", [shards[s].manager.round_duration for s in shard_ids]))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "advance":
                stop_time = message[1]
                for shard_id in shard_ids:
                    shards[shard_id].run_until(stop_time)
                conn.send(("ok", [shards[s].view_summary() for s in shard_ids]))
            elif command == "submit":
                _, shard_id, job = message
                shards[shard_id].submit(job)
            elif command == "finish":
                conn.send(("ok", [shards[s].finish() for s in shard_ids]))
            elif command == "finish_stats":
                conn.send(
                    ("ok", [_finish_stats(s, shards[s].finish()) for s in shard_ids])
                )
            elif command == "close":
                return
            else:
                raise SimulationError(f"unknown federation worker command {command!r}")
    except EOFError:
        # Parent vanished; nothing to report to.
        return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class WorkerPoolBackend(ShardBackend):
    """Shards distributed over worker processes, driven via duplex pipes.

    Implements the :class:`~repro.federation.engine.ShardBackend` contract,
    so :func:`~repro.federation.engine.drive_federation` runs on it unchanged.
    Shard ``i`` lives on worker ``i % workers``, which keeps any number of
    shards runnable on a fixed pool (the 64-shard demo on an 8-worker pool)
    and spreads the lockstep load evenly for uniform shards.
    """

    def __init__(
        self,
        factory: UniformShardFactory,
        num_shards: int,
        workers: int,
        mp_context: Optional[str] = None,
        handshake_timeout_s: float = 120.0,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.num_shards = num_shards
        self.workers = min(workers, num_shards)
        ctx = multiprocessing.get_context(mp_context)
        self._owned: List[List[int]] = [[] for _ in range(self.workers)]
        for shard_id in range(num_shards):
            self._owned[shard_id % self.workers].append(shard_id)
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for worker_index in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, factory, self._owned[worker_index]),
                    name=f"federation-shard-worker-{worker_index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            self.round_duration = self._handshake(handshake_timeout_s)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Pipe plumbing with crash detection
    # ------------------------------------------------------------------

    def _recv(self, worker_index: int, timeout_s: Optional[float] = None):
        """Receive one reply, raising instead of hanging if the worker died."""
        conn = self._conns[worker_index]
        proc = self._procs[worker_index]
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            try:
                if conn.poll(_POLL_INTERVAL_S):
                    reply = conn.recv()
                    break
            except (EOFError, OSError):
                raise SimulationError(
                    f"federation worker {worker_index} closed its pipe "
                    f"unexpectedly (exitcode {proc.exitcode})"
                )
            if not proc.is_alive():
                # One final drain: the worker may have replied (or shipped an
                # error) just before exiting.
                if conn.poll(0):
                    try:
                        reply = conn.recv()
                        break
                    except (EOFError, OSError):
                        pass
                raise SimulationError(
                    f"federation worker {worker_index} (shards "
                    f"{self._owned[worker_index]}) died with exitcode "
                    f"{proc.exitcode} without replying"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise SimulationError(
                    f"federation worker {worker_index} did not reply within "
                    f"{timeout_s:.0f}s"
                )
        tag, payload = reply
        if tag == "error":
            raise SimulationError(
                f"federation worker {worker_index} failed:\n{payload}"
            )
        return tag, payload

    def _send(self, worker_index: int, message: tuple) -> None:
        try:
            self._conns[worker_index].send(message)
        except (BrokenPipeError, OSError):
            raise SimulationError(
                f"federation worker {worker_index} is gone (exitcode "
                f"{self._procs[worker_index].exitcode}); cannot send {message[0]!r}"
            )

    def _handshake(self, timeout_s: float) -> float:
        durations = set()
        for worker_index in range(self.workers):
            tag, payload = self._recv(worker_index, timeout_s)
            if tag != "ready":
                raise SimulationError(
                    f"federation worker {worker_index} sent {tag!r} instead of "
                    "the ready handshake"
                )
            durations.update(payload)
        if len(durations) != 1:
            raise ConfigurationError(
                "shards must share one round_duration for lockstep routing, "
                f"got {sorted(durations)}"
            )
        return durations.pop()

    def _gather(self, command: tuple) -> List[object]:
        """Broadcast ``command``, collect replies, reassemble in shard order.

        The broadcast goes out to every worker *before* any reply is awaited
        -- this is the parallelism: all workers advance their shards
        simultaneously while the parent blocks on the slowest one.
        """
        for worker_index in range(self.workers):
            self._send(worker_index, command)
        by_shard: Dict[int, object] = {}
        for worker_index in range(self.workers):
            _, payload = self._recv(worker_index)
            for shard_id, item in zip(self._owned[worker_index], payload):
                by_shard[shard_id] = item
        return [by_shard[shard_id] for shard_id in range(self.num_shards)]

    # ------------------------------------------------------------------
    # ShardBackend contract
    # ------------------------------------------------------------------

    def advance(self, stop_time: float) -> List[ShardViewSummary]:
        return self._gather(("advance", stop_time))

    def submit(self, shard_id: int, job: Job) -> None:
        self._send(shard_id % self.workers, ("submit", shard_id, job))

    def finish(self) -> List[SimulationResult]:
        return self._gather(("finish",))

    def finish_stats(self) -> List[ShardFinishStats]:
        """Streaming drain: per-shard statistics reduced inside the workers."""
        return self._gather(("finish_stats",))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker_index, conn in enumerate(self._conns):
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()


@dataclass
class FederationStreamResult:
    """Result of a streaming (memory-bounded) parallel federation run.

    Unlike :class:`~repro.federation.engine.FederationResult` this never holds
    job objects or round logs: per-shard statistics are reduced inside the
    workers and only :class:`ShardFinishStats` crosses back.  Percentile
    metrics therefore exist per shard but not pooled (percentiles are not
    mergeable); the pooled numbers below are the exactly mergeable ones.
    """

    shard_stats: List[ShardFinishStats]
    jobs_per_shard: List[int]
    router_name: str
    round_duration: float
    total_jobs: int
    wall_time_s: float
    routing_time_s: float
    advance_time_s: float
    workers: int
    #: Parent-process peak RSS at the end of the run, in MiB (the streaming
    #: claim under test: independent of trace length).
    peak_rss_mib: float = 0.0

    @property
    def num_shards(self) -> int:
        return len(self.shard_stats)

    def total_rounds(self) -> int:
        return sum(s.rounds for s in self.shard_stats)

    def finished_jobs(self) -> int:
        return sum(s.finished_jobs for s in self.shard_stats)

    def avg_jct(self) -> float:
        """Exact pooled mean JCT (count-weighted merge of per-shard means)."""
        finished = self.finished_jobs()
        if finished == 0:
            return 0.0
        weighted = sum(s.stats.avg_jct * s.finished_jobs for s in self.shard_stats)
        return weighted / finished

    def makespan(self) -> float:
        """Upper bound on the pooled makespan: max over per-shard makespans."""
        if not self.shard_stats:
            return 0.0
        return max(s.stats.makespan for s in self.shard_stats)

    def as_dict(self) -> dict:
        return {
            "router": self.router_name,
            "num_shards": self.num_shards,
            "workers": self.workers,
            "total_jobs": self.total_jobs,
            "finished_jobs": self.finished_jobs(),
            "jobs_per_shard": list(self.jobs_per_shard),
            "total_rounds": self.total_rounds(),
            "avg_jct": self.avg_jct(),
            "makespan": self.makespan(),
            "wall_time_s": self.wall_time_s,
            "routing_time_s": self.routing_time_s,
            "advance_time_s": self.advance_time_s,
            "peak_rss_mib": self.peak_rss_mib,
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "rounds": s.rounds,
                    "jobs": s.jobs,
                    "finished_jobs": s.finished_jobs,
                    "eviction_count": s.eviction_count,
                    "preemption_count": s.preemption_count,
                    "wall_time_s": s.wall_time_s,
                    **{f"stats_{k}": v for k, v in s.stats.as_dict().items()},
                }
                for s in self.shard_stats
            ],
        }


def _peak_rss_mib() -> float:
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except Exception:
        return 0.0


class ParallelFederationEngine:
    """Drop-in parallel counterpart of :class:`FederationEngine`.

    Takes the shard *recipe* (a picklable
    :class:`~repro.federation.engine.UniformShardFactory`) rather than built
    shards, because the shards are constructed inside the workers.  With
    ``workers=1`` no processes are spawned at all: the engine builds the
    shards in-process and delegates to the serial engine, which the parallel
    path is bit-identical to by construction -- so ``workers`` is purely a
    throughput knob.
    """

    def __init__(
        self,
        factory: UniformShardFactory,
        num_shards: int,
        router: FederationRouter,
        jobs: Iterable[Job],
        tracked_job_ids: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.factory = factory
        self.num_shards = num_shards
        self.router = router
        self.workers = (
            default_worker_count(num_shards) if workers is None else workers
        )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        self.mp_context = mp_context
        self._jobs = jobs
        self._tracked_job_ids = tracked_job_ids

    # ------------------------------------------------------------------

    def run(self) -> FederationResult:
        """Route every gang, drain every shard, return the combined result.

        Returns the same :class:`FederationResult` as the serial engine --
        worker shard results cross back whole, so downstream summaries and
        parity checks treat both engines interchangeably.
        """
        arrivals = sorted(self._jobs, key=lambda j: (j.arrival_time, j.job_id))
        if not arrivals:
            raise ConfigurationError("cannot federate an empty workload")
        tracked = (
            [job.job_id for job in arrivals]
            if self._tracked_job_ids is None
            else list(self._tracked_job_ids)
        )
        if self.workers == 1:
            engine = FederationEngine(
                shards=self.factory.build_all(self.num_shards),
                router=self.router,
                jobs=arrivals,
                tracked_job_ids=tracked,
            )
            result = engine.run()
            result.workers = 1
            return result
        wall_start = time.perf_counter()
        backend = WorkerPoolBackend(
            self.factory, self.num_shards, self.workers, self.mp_context
        )
        try:
            stats = drive_federation(backend, self.router, arrivals)
            started = time.perf_counter()
            shard_results = backend.finish()
            advance_time = stats.advance_time_s + (time.perf_counter() - started)
        finally:
            backend.close()
        return FederationResult(
            shard_results=shard_results,
            assignments=stats.assignments or {},
            tracked_job_ids=tracked,
            router_name=self.router.name,
            round_duration=backend.round_duration,
            wall_time_s=time.perf_counter() - wall_start,
            routing_time_s=stats.routing_time_s,
            advance_time_s=advance_time,
            workers=backend.workers,
        )

    def run_stream(self) -> FederationStreamResult:
        """Memory-bounded run over a lazy, pre-sorted arrival stream.

        ``jobs`` may be a generator ordered by ``(arrival_time, job_id)``
        (enforced as the stream drains); the parent holds one lookahead job
        and per-shard counters, never the trace, and workers reduce their
        finished shards to :class:`ShardFinishStats` before replying -- this
        is what makes 64-shard, 100k-job runs fit a bounded parent process.
        Requires ``workers >= 2`` (a streaming run that fits one process has
        no reason not to use :meth:`run`).
        """
        if self.workers < 2:
            raise ConfigurationError(
                "run_stream needs workers >= 2; use run() for in-process runs"
            )
        wall_start = time.perf_counter()
        backend = WorkerPoolBackend(
            self.factory, self.num_shards, self.workers, self.mp_context
        )
        try:
            stats = drive_federation(
                backend, self.router, self._jobs, record_assignments=False
            )
            started = time.perf_counter()
            shard_stats = backend.finish_stats()
            advance_time = stats.advance_time_s + (time.perf_counter() - started)
        finally:
            backend.close()
        return FederationStreamResult(
            shard_stats=shard_stats,
            jobs_per_shard=stats.jobs_per_shard,
            router_name=self.router.name,
            round_duration=backend.round_duration,
            total_jobs=stats.total_jobs,
            wall_time_s=time.perf_counter() - wall_start,
            routing_time_s=stats.routing_time_s,
            advance_time_s=advance_time,
            workers=backend.workers,
            peak_rss_mib=_peak_rss_mib(),
        )
