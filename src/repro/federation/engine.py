"""The federation driver: N shards, one router, one global arrival stream.

:class:`FederationEngine` coordinates independent shard scheduling loops
(:class:`~repro.federation.shard.ShardSimulator`) around a single global job
stream.  The only cross-shard interaction is *routing*: at each arrival the
router picks a shard, the gang enters that shard's wait queue, and from then
on the shard schedules it with its own policy stack, clock and (optional)
scenario timeline, exactly as a standalone cluster would.

Execution model
---------------

Shards advance in lockstep between routing events.  The global clock is the
shared round grid (all shards must use the same ``round_duration`` and start
at time zero); for each pending arrival at time ``t`` the engine advances
every shard to the top of the first round at or after ``t`` -- each shard
fast-forwarding independently, bounded by its own scenario events *and* the
routing event (the :class:`~repro.federation.shard.BoundedClusterManager`
bound) -- then routes every gang whose arrival time has been reached, in
global ``(arrival_time, job_id)`` order.  Once the stream is exhausted the
shards drain independently to their own completion times.

The loop itself is written against a :class:`ShardBackend` -- ``advance``,
``submit``, ``finish`` -- with two implementations: the in-process
:class:`LocalShardBackend` here, and the multiprocess worker pool in
:mod:`repro.federation.parallel`.  Routing consumes only the
:class:`~repro.federation.router.ShardViewSummary` messages the backend
returns, and same-round refreshes go through
:meth:`~repro.federation.router.ShardViewSummary.with_queued` on the parent
side in both cases, so the two backends feed routers byte-for-byte identical
inputs.

Determinism and parity: shard states at every pause point are bit-identical
between fast-forward and per-round stepping (the simulator's parity
guarantee), routers are deterministic functions of those states, hence the
*routing decisions* -- and therefore every per-shard schedule -- are
identical too, serial or parallel.  ``python -m repro.bench --federation``
checks this for every router x shard-count cell, and additionally checks
serial == parallel for the worker-pool cells.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.builder import build_cluster
from repro.core.abstractions import ClusterManager
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job
from repro.federation.router import FederationRouter, ShardViewSummary
from repro.federation.shard import ShardSimulator
from repro.metrics.summary import (
    FaultStats,
    FederationSummary,
    FederationTiming,
    SummaryStats,
    federation_summary,
    jct_summary,
)
from repro.simulator.engine import SimulationResult
from repro.telemetry.events import (
    EVENT_FEDERATION,
    EVENT_ROUTE,
    EVENT_TIMING,
    TraceHeader,
)
from repro.telemetry.recorder import DEFAULT_FEDERATION_INTERVAL, TraceRecorder
from repro.telemetry.sinks import JsonlSink

__all__ = [
    "FederationEngine",
    "FederationResult",
    "ShardBackend",
    "LocalShardBackend",
    "UniformShardFactory",
    "ScenarioManagerFactory",
    "build_uniform_shards",
    "drive_federation",
    "DriveStats",
]


@dataclass
class FederationResult:
    """Everything a federation experiment needs after the run finished."""

    shard_results: List[SimulationResult]
    #: job id -> shard index, for every routed job.
    assignments: Dict[int, int]
    tracked_job_ids: List[int]
    router_name: str
    round_duration: float
    #: Wall-clock seconds of the whole federation run (shard execution plus
    #: routing); the per-shard ``wall_time_s`` fields sum to slightly less.
    wall_time_s: float = 0.0
    #: Wall-clock seconds the driver spent inside router decisions and gang
    #: submission (the serialised, parent-side section of the loop).
    routing_time_s: float = 0.0
    #: Wall-clock seconds spent advancing/draining shards (lockstep
    #: ``advance`` plus the final ``finish``); in parallel mode this is the
    #: parent's wait, bounded below by the slowest shard per step.
    advance_time_s: float = 0.0
    #: Worker processes that executed the shards; 0 means the in-process
    #: serial engine.
    workers: int = 0
    #: Fault-injection/recovery counters when the run was supervised
    #: (``docs/robustness.md``); ``None`` for unsupervised runs.
    fault_stats: Optional[FaultStats] = None

    @property
    def num_shards(self) -> int:
        return len(self.shard_results)

    def total_rounds(self) -> int:
        """Rounds executed across all shards (the federation's work unit)."""
        return sum(result.rounds for result in self.shard_results)

    def shard_busy_time_s(self) -> List[float]:
        """Per-shard simulator wall time: the straggler/balance profile.

        Each entry is the shard's own in-loop execution time.  In parallel
        mode ``max``/``sum`` of this bounds the achievable speedup (the
        lockstep barrier waits for the slowest shard at every routing event).
        """
        return [result.wall_time_s for result in self.shard_results]

    def jobs(self) -> List[Job]:
        """All jobs across shards, sorted by job id."""
        pooled = [job for result in self.shard_results for job in result.jobs]
        return sorted(pooled, key=lambda j: j.job_id)

    def jobs_per_shard(self) -> List[int]:
        counts = [0] * len(self.shard_results)
        for shard_index in self.assignments.values():
            counts[shard_index] += 1
        return counts

    def pooled_stats(self) -> SummaryStats:
        """Headline JCT statistics over the tracked jobs of every shard."""
        return jct_summary(self.jobs(), self.tracked_job_ids)

    def makespan(self) -> float:
        return self.pooled_stats().makespan

    def avg_jct(self) -> float:
        return self.pooled_stats().avg_jct

    def timing(self) -> FederationTiming:
        """Wall-time breakdown (routing vs advancing vs per-shard busy)."""
        return FederationTiming(
            wall_time_s=self.wall_time_s,
            routing_time_s=self.routing_time_s,
            advance_time_s=self.advance_time_s,
            shard_busy_time_s=tuple(self.shard_busy_time_s()),
            workers=self.workers,
        )

    def summary(self) -> FederationSummary:
        """Aggregate per-shard scenario summaries plus pooled statistics."""
        return federation_summary(
            shard_jobs=[result.jobs for result in self.shard_results],
            shard_round_logs=[result.round_log for result in self.shard_results],
            shard_eviction_counts=[result.eviction_count for result in self.shard_results],
            tracked_ids=self.tracked_job_ids,
            timing=self.timing(),
        )


# ----------------------------------------------------------------------
# Backend abstraction: how the drive loop talks to its shards
# ----------------------------------------------------------------------


class ShardBackend:
    """What the routing loop needs from a set of shards.

    Implementations: :class:`LocalShardBackend` (shards live in this process)
    and :class:`repro.federation.parallel.WorkerPoolBackend` (shards live in
    worker processes behind pipes).  The loop only ever sees
    :class:`~repro.federation.router.ShardViewSummary` values, never live
    shard state, which is what makes the two interchangeable bit-for-bit.
    """

    num_shards: int
    round_duration: float

    def advance(self, stop_time: float) -> List[ShardViewSummary]:
        """Advance every shard to the pause point before ``stop_time``.

        Returns one summary per shard, indexed by ``shard_id``.
        """
        raise NotImplementedError

    def submit(self, shard_id: int, job: Job) -> None:
        """Queue ``job`` on a paused shard (applied before its next advance)."""
        raise NotImplementedError

    def finish(self) -> List[SimulationResult]:
        """Drain every shard to completion and collect its result."""
        raise NotImplementedError

    def take_orphans(self) -> List[Tuple[Job, int]]:
        """Drain jobs stranded by shards that died since the last call.

        Each entry is ``(job, shard_id_it_was_routed_to)``, ordered by the
        global ``(arrival_time, job_id)`` routing order so re-routing is
        deterministic.  Backends without graceful degradation (the serial
        one, unsupervised pools) never strand jobs and return nothing.
        """
        return []

    def dead_shard_ids(self) -> frozenset:
        """Shards marked dead by graceful degradation (empty when healthy)."""
        return frozenset()

    def close(self) -> None:
        """Release backend resources (terminate workers); idempotent."""


class LocalShardBackend(ShardBackend):
    """The serial backend: shards advanced in-process, one after another."""

    def __init__(self, shards: Sequence[ShardSimulator]) -> None:
        self.shards = list(shards)
        self.num_shards = len(self.shards)
        self.round_duration = self.shards[0].manager.round_duration

    def advance(self, stop_time: float) -> List[ShardViewSummary]:
        for shard in self.shards:
            shard.run_until(stop_time)
        return [shard.view_summary() for shard in self.shards]

    def submit(self, shard_id: int, job: Job) -> None:
        self.shards[shard_id].submit(job)

    def finish(self) -> List[SimulationResult]:
        return [shard.finish() for shard in self.shards]


# ----------------------------------------------------------------------
# The shared drive loop (serial and parallel engines both run this)
# ----------------------------------------------------------------------


@dataclass
class DriveStats:
    """What :func:`drive_federation` measured while routing the stream."""

    #: job id -> shard index; ``None`` when assignment tracking was disabled
    #: (streaming runs keep only the per-shard counters below).
    assignments: Optional[Dict[int, int]]
    jobs_per_shard: List[int]
    routing_time_s: float
    advance_time_s: float
    total_jobs: int


def drive_federation(
    backend: ShardBackend,
    router: FederationRouter,
    arrivals: Iterable[Job],
    record_assignments: bool = True,
    recorder: Optional[TraceRecorder] = None,
) -> DriveStats:
    """Route a sorted arrival stream over a backend's shards.

    ``arrivals`` must be ordered by ``(arrival_time, job_id)`` -- the global
    deterministic routing order -- and may be a lazy iterator: the loop holds
    one lookahead job, so a streaming run's parent-side memory is bounded by
    the routing bookkeeping, not the trace (disable ``record_assignments`` to
    drop the only per-job state).

    Summaries are refreshed *incrementally*: ``backend.advance`` captures one
    summary per shard at each pause point, and between two routing decisions
    at the same pause only the shard that received the previous gang changed
    -- by exactly its queue terms -- so the loop applies
    :meth:`~repro.federation.router.ShardViewSummary.with_queued` to that one
    entry instead of re-materialising every shard's view per gang.

    Graceful degradation: when the backend marks a shard dead (supervised
    worker pool, ``on_unrecoverable="degrade"``), its summary reports zero
    capacity -- the feasibility filter below then excludes it for every gang
    with no special-casing -- and its stranded jobs come back through
    :meth:`ShardBackend.take_orphans`, which the loop re-routes over the
    survivors ahead of new arrivals, in the same deterministic
    ``(arrival_time, job_id)`` order the jobs were first routed in.
    """
    routing_time = 0.0
    advance_time = 0.0
    jobs_per_shard = [0] * backend.num_shards
    assignments: Optional[Dict[int, int]] = {} if record_assignments else None
    total_jobs = 0
    stream: Iterator[Job] = iter(arrivals)
    pending = next(stream, None)
    if pending is None:
        raise ConfigurationError("cannot federate an empty workload")
    last_key = (pending.arrival_time, pending.job_id)
    summaries: List[ShardViewSummary] = []

    def route_one(job: Job) -> None:
        # Feasibility: a gang larger than a shard's entire GPU pool can
        # never be placed there -- routing it would starve it (and the
        # shard's loop) forever, so such shards are not offered.  Dead
        # shards report zero GPUs and fall out of the same test; the
        # explicit dead-set check covers shards that died *after* the last
        # advance, whose summaries still look alive.
        dead = backend.dead_shard_ids()
        feasible = [
            s
            for s in summaries
            if s.total_gpus >= job.num_gpus and s.shard_id not in dead
        ]
        if not feasible:
            raise SimulationError(
                f"job {job.job_id} requests {job.num_gpus} GPUs, more "
                "than any surviving shard owns; no feasible routing exists"
            )
        choice = router.route(job, feasible)
        if choice not in {s.shard_id for s in feasible}:
            raise SimulationError(
                f"router {router.name!r} returned shard {choice} "
                f"for job {job.job_id}, which is not among the "
                f"feasible shards {sorted(s.shard_id for s in feasible)}"
            )
        backend.submit(choice, job)
        summaries[choice] = summaries[choice].with_queued(job)
        jobs_per_shard[choice] += 1
        if assignments is not None:
            assignments[job.job_id] = choice
        if recorder is not None:
            recorder.emit(
                EVENT_ROUTE,
                job.arrival_time,
                {
                    "job_id": job.job_id,
                    "shard": choice,
                    "num_gpus": job.num_gpus,
                },
            )

    def snapshot(now: float) -> None:
        # Deterministic per-shard state digest (no wall-clock fields):
        # queue depths and utilisation come from the same summaries the
        # router reads, so serial and parallel runs snapshot identically.
        recorder.emit(
            EVENT_FEDERATION,
            now,
            {
                "jobs_per_shard": list(jobs_per_shard),
                "queued": [s.queued_jobs for s in summaries],
                "utilization": [round(s.capacity_utilization, 6) for s in summaries],
                "routed_jobs": total_jobs,
            },
        )

    pauses = 0
    now = 0.0
    while pending is not None:
        started = time.perf_counter()
        summaries = list(backend.advance(pending.arrival_time))
        advance_time += time.perf_counter() - started
        # All shards share the round grid, so they pause on the same
        # boundary: the first round start at or after the arrival.
        now = summaries[0].current_time
        pauses += 1
        if recorder is not None and pauses % DEFAULT_FEDERATION_INTERVAL == 0:
            snapshot(now)
        started = time.perf_counter()
        # Jobs stranded by shards that died during that advance are
        # re-routed first: they arrived before anything still pending.
        for orphan, old_shard in backend.take_orphans():
            jobs_per_shard[old_shard] -= 1
            route_one(orphan)
        while pending is not None and pending.arrival_time <= now:
            job = pending
            key = (job.arrival_time, job.job_id)
            if key < last_key:
                raise ConfigurationError(
                    f"arrival stream is not sorted: job {job.job_id} at "
                    f"t={job.arrival_time} follows {last_key}; deterministic "
                    "routing requires global (arrival_time, job_id) order"
                )
            last_key = key
            route_one(job)
            total_jobs += 1
            pending = next(stream, None)
        routing_time += time.perf_counter() - started
    # A death during the last routing burst (or during an orphan re-submit)
    # can strand jobs after the arrival stream is exhausted; keep re-routing
    # until no orphans remain.  Submits still land before the backend's
    # ``finish`` drain (pipe FIFO), so re-routed gangs are scheduled normally.
    started = time.perf_counter()
    while True:
        orphans = backend.take_orphans()
        if not orphans:
            break
        for orphan, old_shard in orphans:
            jobs_per_shard[old_shard] -= 1
            route_one(orphan)
    routing_time += time.perf_counter() - started
    if recorder is not None:
        snapshot(now)
        # Wall-clock counters are telemetry, not schedule: the kind is in
        # NONDETERMINISTIC_KINDS and trace diff skips it by default.
        recorder.emit(
            EVENT_TIMING,
            now,
            {
                "routing_time_s": routing_time,
                "advance_time_s": advance_time,
                "routed_jobs": total_jobs,
            },
        )
    return DriveStats(
        assignments=assignments,
        jobs_per_shard=jobs_per_shard,
        routing_time_s=routing_time,
        advance_time_s=advance_time,
        total_jobs=total_jobs,
    )


class FederationEngine:
    """Runs a sharded federation of scheduling loops to completion."""

    def __init__(
        self,
        shards: Sequence[ShardSimulator],
        router: FederationRouter,
        jobs: Iterable[Job],
        tracked_job_ids: Optional[Sequence[int]] = None,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.recorder = recorder
        self.shards = list(shards)
        if not self.shards:
            raise ConfigurationError("a federation needs at least one shard")
        for index, shard in enumerate(self.shards):
            if shard.shard_id != index:
                raise ConfigurationError(
                    f"shard at position {index} has shard_id {shard.shard_id}; "
                    "shard ids must equal their position (routers return indexes)"
                )
        durations = {shard.manager.round_duration for shard in self.shards}
        if len(durations) != 1:
            raise ConfigurationError(
                f"shards must share one round_duration for lockstep routing, got {sorted(durations)}"
            )
        self.router = router
        self._arrivals = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        if not self._arrivals:
            raise ConfigurationError("cannot federate an empty workload")
        if tracked_job_ids is None:
            self.tracked_job_ids = [job.job_id for job in self._arrivals]
        else:
            self.tracked_job_ids = list(tracked_job_ids)

    def run(self) -> FederationResult:
        """Route every gang, drain every shard, return the combined result."""
        wall_start = time.perf_counter()
        backend = LocalShardBackend(self.shards)
        stats = drive_federation(
            backend, self.router, self._arrivals, recorder=self.recorder
        )
        started = time.perf_counter()
        shard_results = backend.finish()
        advance_time = stats.advance_time_s + (time.perf_counter() - started)
        return FederationResult(
            shard_results=shard_results,
            assignments=stats.assignments or {},
            tracked_job_ids=self.tracked_job_ids,
            router_name=self.router.name,
            round_duration=backend.round_duration,
            wall_time_s=time.perf_counter() - wall_start,
            routing_time_s=stats.routing_time_s,
            advance_time_s=advance_time,
            workers=0,
        )


# ----------------------------------------------------------------------
# Shard construction: picklable factories
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioManagerFactory:
    """Picklable per-shard cluster-manager factory backed by the registry.

    Calling it with a shard index compiles the named scenario with a
    shard-specific seed and returns a fresh
    :class:`~repro.scenarios.timeline.TimelineClusterManager` -- entirely from
    plain data (name + seeds), so the factory crosses a process boundary and
    each worker compiles its own timeline instead of shipping one.
    """

    scenario: str
    smoke: bool = False
    seed_base: int = 0

    def __call__(self, shard_id: int) -> ClusterManager:
        from repro.scenarios.registry import get_scenario

        spec = get_scenario(self.scenario, smoke=self.smoke)
        return spec.compile(seed=self.seed_base + shard_id).make_cluster_manager()


@dataclass(frozen=True)
class UniformShardFactory:
    """Recipe for building one federation's identical shards, picklable.

    This is how shards reach worker processes: live simulators must never be
    pickled (their policy indexes re-bind by object identity and would go
    permanently stale in the child), so the *recipe* crosses the pipe and each
    worker builds its own shards from it.  The picklability contract is
    therefore on the ingredients: every factory field must be a module-level
    callable or a picklable object (policy classes themselves qualify;
    closures and lambdas do not -- use :class:`ScenarioManagerFactory` for
    per-shard scenario timelines).
    """

    nodes_per_shard: int
    scheduling_factory: Callable
    placement_factory: Optional[Callable] = None
    admission_factory: Optional[Callable] = None
    gpus_per_node: int = 4
    gpu_type: str = "v100"
    network_bw_gbps: float = 10.0
    round_duration: float = 300.0
    fast_forward: bool = True
    cluster_manager_factory: Optional[Callable[[int], Optional[ClusterManager]]] = None
    max_rounds: int = 200_000
    #: Simulation engine for every built shard: the classic round loop
    #: (``"rounds"``) or the event-heap core (``"events"``); both produce
    #: bit-identical schedules, so the choice is a performance knob.
    engine: str = "rounds"
    #: Bound each shard's per-round log (None keeps everything, 0 disables);
    #: streaming runs set 0 so worker memory stays flat over millions of jobs.
    round_log_limit: Optional[int] = None
    #: When set, each built shard streams telemetry to
    #: ``<trace_dir>/shard-<id>.jsonl``.  The sink is opened *inside*
    #: ``build`` -- i.e. inside the worker process in parallel mode -- so
    #: fork and spawn contexts produce the same per-shard streams.
    trace_dir: Optional[str] = None

    def build(self, shard_id: int) -> ShardSimulator:
        """Build the single shard ``shard_id`` with fresh policy instances."""
        if self.nodes_per_shard < 1:
            raise ConfigurationError(
                f"nodes_per_shard must be >= 1, got {self.nodes_per_shard}"
            )
        manager = (
            self.cluster_manager_factory(shard_id)
            if self.cluster_manager_factory
            else None
        )
        recorder = None
        if self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
            sink = JsonlSink(
                os.path.join(self.trace_dir, f"shard-{shard_id}.jsonl")
            )
            sink.write_header(
                TraceHeader(metadata={"source": f"shard{shard_id}"})
            )
            recorder = TraceRecorder(sink, source=f"shard{shard_id}")
        return ShardSimulator(
            shard_id=shard_id,
            cluster_state=build_cluster(
                num_nodes=self.nodes_per_shard,
                gpus_per_node=self.gpus_per_node,
                gpu_type=self.gpu_type,
                network_bw_gbps=self.network_bw_gbps,
            ),
            scheduling_policy=self.scheduling_factory(),
            placement_policy=self.placement_factory() if self.placement_factory else None,
            admission_policy=self.admission_factory() if self.admission_factory else None,
            cluster_manager=manager,
            round_duration=self.round_duration,
            fast_forward=self.fast_forward,
            max_rounds=self.max_rounds,
            engine=self.engine,
            round_log_limit=self.round_log_limit,
            recorder=recorder,
        )

    def build_all(self, num_shards: int) -> List[ShardSimulator]:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        return [self.build(shard_id) for shard_id in range(num_shards)]


def build_uniform_shards(
    num_shards: int,
    nodes_per_shard: int,
    scheduling_factory: Callable,
    placement_factory: Optional[Callable] = None,
    admission_factory: Optional[Callable] = None,
    gpus_per_node: int = 4,
    gpu_type: str = "v100",
    network_bw_gbps: float = 10.0,
    round_duration: float = 300.0,
    fast_forward: bool = True,
    cluster_manager_factory: Optional[Callable[[int], Optional[ClusterManager]]] = None,
    max_rounds: int = 200_000,
    engine: str = "rounds",
) -> List[ShardSimulator]:
    """Build ``num_shards`` identical shards with fresh policy instances.

    Convenience wrapper over :class:`UniformShardFactory` for in-process use;
    parallel engines take the factory itself (it must cross the pipe).

    ``cluster_manager_factory`` receives the shard index and may return a
    per-shard manager (e.g. a fresh scenario
    :class:`~repro.scenarios.timeline.TimelineClusterManager`) or ``None``
    for static membership; managers are stateful, so the factory must build a
    new instance per shard.
    """
    factory = UniformShardFactory(
        nodes_per_shard=nodes_per_shard,
        scheduling_factory=scheduling_factory,
        placement_factory=placement_factory,
        admission_factory=admission_factory,
        gpus_per_node=gpus_per_node,
        gpu_type=gpu_type,
        network_bw_gbps=network_bw_gbps,
        round_duration=round_duration,
        fast_forward=fast_forward,
        cluster_manager_factory=cluster_manager_factory,
        max_rounds=max_rounds,
        engine=engine,
    )
    return factory.build_all(num_shards)
