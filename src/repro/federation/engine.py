"""The federation driver: N shards, one router, one global arrival stream.

:class:`FederationEngine` coordinates independent shard scheduling loops
(:class:`~repro.federation.shard.ShardSimulator`) around a single global job
stream.  The only cross-shard interaction is *routing*: at each arrival the
router picks a shard, the gang enters that shard's wait queue, and from then
on the shard schedules it with its own policy stack, clock and (optional)
scenario timeline, exactly as a standalone cluster would.

Execution model
---------------

Shards advance in lockstep between routing events.  The global clock is the
shared round grid (all shards must use the same ``round_duration`` and start
at time zero); for each pending arrival at time ``t`` the engine advances
every shard to the top of the first round at or after ``t`` -- each shard
fast-forwarding independently, bounded by its own scenario events *and* the
routing event (the :class:`~repro.federation.shard.BoundedClusterManager`
bound) -- then routes every gang whose arrival time has been reached, in
global ``(arrival_time, job_id)`` order.  Once the stream is exhausted the
shards drain independently to their own completion times.

Determinism and parity: shard states at every pause point are bit-identical
between fast-forward and per-round stepping (the simulator's parity
guarantee), routers are deterministic functions of those states, hence the
*routing decisions* -- and therefore every per-shard schedule -- are
identical too.  ``python -m repro.bench --federation`` checks this for every
router x shard-count cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.cluster.builder import build_cluster
from repro.core.abstractions import ClusterManager
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job
from repro.federation.router import FederationRouter, ShardView
from repro.federation.shard import ShardSimulator
from repro.metrics.summary import (
    FederationSummary,
    SummaryStats,
    federation_summary,
    jct_summary,
)
from repro.simulator.engine import SimulationResult

__all__ = ["FederationEngine", "FederationResult", "build_uniform_shards"]


@dataclass
class FederationResult:
    """Everything a federation experiment needs after the run finished."""

    shard_results: List[SimulationResult]
    #: job id -> shard index, for every routed job.
    assignments: Dict[int, int]
    tracked_job_ids: List[int]
    router_name: str
    round_duration: float
    #: Wall-clock seconds of the whole federation run (shard execution plus
    #: routing); the per-shard ``wall_time_s`` fields sum to slightly less.
    wall_time_s: float = 0.0

    @property
    def num_shards(self) -> int:
        return len(self.shard_results)

    def total_rounds(self) -> int:
        """Rounds executed across all shards (the federation's work unit)."""
        return sum(result.rounds for result in self.shard_results)

    def jobs(self) -> List[Job]:
        """All jobs across shards, sorted by job id."""
        pooled = [job for result in self.shard_results for job in result.jobs]
        return sorted(pooled, key=lambda j: j.job_id)

    def jobs_per_shard(self) -> List[int]:
        counts = [0] * len(self.shard_results)
        for shard_index in self.assignments.values():
            counts[shard_index] += 1
        return counts

    def pooled_stats(self) -> SummaryStats:
        """Headline JCT statistics over the tracked jobs of every shard."""
        return jct_summary(self.jobs(), self.tracked_job_ids)

    def makespan(self) -> float:
        return self.pooled_stats().makespan

    def avg_jct(self) -> float:
        return self.pooled_stats().avg_jct

    def summary(self) -> FederationSummary:
        """Aggregate per-shard scenario summaries plus pooled statistics."""
        return federation_summary(
            shard_jobs=[result.jobs for result in self.shard_results],
            shard_round_logs=[result.round_log for result in self.shard_results],
            shard_eviction_counts=[result.eviction_count for result in self.shard_results],
            tracked_ids=self.tracked_job_ids,
        )


class FederationEngine:
    """Runs a sharded federation of scheduling loops to completion."""

    def __init__(
        self,
        shards: Sequence[ShardSimulator],
        router: FederationRouter,
        jobs: Iterable[Job],
        tracked_job_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.shards = list(shards)
        if not self.shards:
            raise ConfigurationError("a federation needs at least one shard")
        for index, shard in enumerate(self.shards):
            if shard.shard_id != index:
                raise ConfigurationError(
                    f"shard at position {index} has shard_id {shard.shard_id}; "
                    "shard ids must equal their position (routers return indexes)"
                )
        durations = {shard.manager.round_duration for shard in self.shards}
        if len(durations) != 1:
            raise ConfigurationError(
                f"shards must share one round_duration for lockstep routing, got {sorted(durations)}"
            )
        self.router = router
        self._arrivals = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        if not self._arrivals:
            raise ConfigurationError("cannot federate an empty workload")
        if tracked_job_ids is None:
            self.tracked_job_ids = [job.job_id for job in self._arrivals]
        else:
            self.tracked_job_ids = list(tracked_job_ids)

    # ------------------------------------------------------------------

    def _views(self) -> List[ShardView]:
        return [
            ShardView(
                shard_id=shard.shard_id,
                cluster_state=shard.cluster_state,
                job_state=shard.job_state,
                current_time=shard.manager.current_time,
                queued_jobs=tuple(shard.manager.queued_jobs()),
            )
            for shard in self.shards
        ]

    def run(self) -> FederationResult:
        """Route every gang, drain every shard, return the combined result."""
        wall_start = time.perf_counter()
        arrivals = self._arrivals
        assignments: Dict[int, int] = {}
        index = 0
        while index < len(arrivals):
            next_arrival = arrivals[index].arrival_time
            for shard in self.shards:
                shard.run_until(next_arrival)
            # All shards share the round grid, so they pause on the same
            # boundary: the first round start at or after the arrival.
            now = self.shards[0].manager.current_time
            # Route every gang that round will pop, in global arrival order.
            # Views are rebuilt per decision so a second gang in the same
            # round sees the first one in the target shard's queue.
            while index < len(arrivals) and arrivals[index].arrival_time <= now:
                job = arrivals[index]
                index += 1
                # Feasibility: a gang larger than a shard's entire GPU pool
                # can never be placed there -- routing it would starve it (and
                # the shard's loop) forever, so such shards are not offered.
                views = [
                    view
                    for view in self._views()
                    if view.cluster_state.total_gpus >= job.num_gpus
                ]
                if not views:
                    raise SimulationError(
                        f"job {job.job_id} requests {job.num_gpus} GPUs, more "
                        "than any shard owns; no feasible routing exists"
                    )
                choice = self.router.route(job, views)
                if choice not in {view.shard_id for view in views}:
                    raise SimulationError(
                        f"router {self.router.name!r} returned shard {choice} "
                        f"for job {job.job_id}, which is not among the "
                        f"feasible shards {sorted(v.shard_id for v in views)}"
                    )
                self.shards[choice].submit(job)
                assignments[job.job_id] = choice
        shard_results = [shard.finish() for shard in self.shards]
        return FederationResult(
            shard_results=shard_results,
            assignments=assignments,
            tracked_job_ids=self.tracked_job_ids,
            router_name=self.router.name,
            round_duration=self.shards[0].manager.round_duration,
            wall_time_s=time.perf_counter() - wall_start,
        )


def build_uniform_shards(
    num_shards: int,
    nodes_per_shard: int,
    scheduling_factory: Callable,
    placement_factory: Optional[Callable] = None,
    admission_factory: Optional[Callable] = None,
    gpus_per_node: int = 4,
    gpu_type: str = "v100",
    network_bw_gbps: float = 10.0,
    round_duration: float = 300.0,
    fast_forward: bool = True,
    cluster_manager_factory: Optional[Callable[[int], Optional[ClusterManager]]] = None,
    max_rounds: int = 200_000,
) -> List[ShardSimulator]:
    """Build ``num_shards`` identical shards with fresh policy instances.

    ``cluster_manager_factory`` receives the shard index and may return a
    per-shard manager (e.g. a fresh scenario
    :class:`~repro.scenarios.timeline.TimelineClusterManager`) or ``None``
    for static membership; managers are stateful, so the factory must build a
    new instance per shard.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if nodes_per_shard < 1:
        raise ConfigurationError(f"nodes_per_shard must be >= 1, got {nodes_per_shard}")
    shards: List[ShardSimulator] = []
    for shard_id in range(num_shards):
        manager = cluster_manager_factory(shard_id) if cluster_manager_factory else None
        shards.append(
            ShardSimulator(
                shard_id=shard_id,
                cluster_state=build_cluster(
                    num_nodes=nodes_per_shard,
                    gpus_per_node=gpus_per_node,
                    gpu_type=gpu_type,
                    network_bw_gbps=network_bw_gbps,
                ),
                scheduling_policy=scheduling_factory(),
                placement_policy=placement_factory() if placement_factory else None,
                admission_policy=admission_factory() if admission_factory else None,
                cluster_manager=manager,
                round_duration=round_duration,
                fast_forward=fast_forward,
                max_rounds=max_rounds,
            )
        )
    return shards
