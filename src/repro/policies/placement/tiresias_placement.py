"""The Tiresias placement heuristic: consolidate only jobs with high tensor skew.

Tiresias observes that models whose parameter tensors are highly skewed in size
suffer most from network contention and therefore benefit from consolidation;
other jobs can be spread across servers to reduce fragmentation.  The heuristic
uses a skew threshold measured from the model; the paper's §4.3 shows that the
heuristic's accuracy (and hence the policy's benefit) depends on hardware and
on the workload mix, motivating the profile-based variant ``Tiresias+``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.policies.placement.base import AvailabilityView, BasePlacementPolicy


class TiresiasPlacement(BasePlacementPolicy):
    """Consolidate jobs whose model skew exceeds ``skew_threshold``; spread the rest."""

    name = "tiresias-placement"

    def __init__(self, skew_threshold: float = 0.5) -> None:
        if skew_threshold < 0:
            raise ConfigurationError("skew_threshold must be >= 0")
        self.skew_threshold = skew_threshold

    def wants_consolidation(self, job: Job) -> bool:
        """The skew-based heuristic's guess at whether the job is placement sensitive."""
        return job.skew > self.skew_threshold

    def select_gpus(
        self,
        job: Job,
        demand: int,
        view: AvailabilityView,
        cluster_state: ClusterState,
    ) -> Optional[List[int]]:
        if self.wants_consolidation(job):
            return self._take_consolidated(demand, view)
        return self._take_fragment_friendly(demand, view)
