"""Shared gang-placement machinery used by every placement policy.

The placement abstraction receives the priority list produced by the scheduling
policy and must answer two questions every round: which jobs run (given finite
GPUs) and exactly which GPUs they run on.  The answer also implies which
currently running jobs must be suspended.  :class:`BasePlacementPolicy`
implements this round logic once; concrete policies only override
:meth:`BasePlacementPolicy.select_gpus`, the part that differs between
first-free, consolidated, skew-based, profile-based and bandwidth-aware
placement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.node import GPU
from repro.core.abstractions import PlacementDecision, PlacementPolicy, ScheduleEntry
from repro.core.cluster_state import ClusterState
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState


class AvailabilityView:
    """Tracks which GPUs are available during one placement computation.

    The view starts from the GPUs that are currently free on healthy nodes plus
    the GPUs of jobs the policy has decided to suspend this round, and is
    consumed as the policy hands out allocations.

    Construction reads the cluster's per-node free-GPU index directly
    (:meth:`ClusterState.free_gpus_by_node`), so building the view costs
    O(free GPUs) instead of a full rescan of every GPU row, and :meth:`take`
    only touches the nodes it removes from.
    """

    def __init__(self, cluster_state: ClusterState, extra_gpu_ids: Sequence[int] = ()) -> None:
        self.cluster_state = cluster_state
        self._free_by_node: Dict[int, List[GPU]] = cluster_state.free_gpus_by_node()
        self._total = sum(len(g) for g in self._free_by_node.values())
        dirty = set()
        for gpu_id in dict.fromkeys(extra_gpu_ids):
            gpu = cluster_state.gpu(gpu_id)
            if cluster_state.node(gpu.node_id).failed:
                continue
            if gpu.is_free:
                continue  # already present via the free index
            self._free_by_node.setdefault(gpu.node_id, []).append(gpu)
            self._total += 1
            dirty.add(gpu.node_id)
        for node_id in sorted(dirty):
            self._free_by_node[node_id].sort(key=lambda g: g.local_gpu_id)

    def total_free(self) -> int:
        return self._total

    def node_ids(self) -> List[int]:
        return sorted(self._free_by_node)

    def free_on_node(self, node_id: int) -> List[GPU]:
        return list(self._free_by_node.get(node_id, []))

    def free_count(self, node_id: int) -> int:
        return len(self._free_by_node.get(node_id, []))

    def nodes_by_free_count(self, descending: bool = True) -> List[int]:
        """Node ids ordered by how many free GPUs they have (ties by node id)."""
        return sorted(
            self._free_by_node,
            key=lambda n: (-self.free_count(n) if descending else self.free_count(n), n),
        )

    def take(self, gpu_ids: Sequence[int]) -> None:
        """Remove GPUs from the view after they have been handed to a job.

        Only the nodes hosting the taken GPUs are touched, so the cost is
        O(taken + free on those nodes) rather than a rebuild of the whole
        view; GPUs on nodes with nothing free (the common case for lease
        renewals, whose GPUs are not in the view at all) cost one dict probe.
        """
        free_by_node = self._free_by_node
        if not free_by_node:
            return
        gpu_rows = self.cluster_state.gpus
        by_node: Dict[int, set] = {}
        for gpu_id in gpu_ids:
            node_id = gpu_rows[gpu_id].node_id
            if node_id in free_by_node:
                by_node.setdefault(node_id, set()).add(gpu_id)
        for node_id, taken in by_node.items():
            gpus = free_by_node[node_id]
            remaining = [g for g in gpus if g.gpu_id not in taken]
            self._total -= len(gpus) - len(remaining)
            if remaining:
                free_by_node[node_id] = remaining
            else:
                del free_by_node[node_id]


class BasePlacementPolicy(PlacementPolicy):
    """Round logic shared by all placement policies.

    The placement proceeds in three steps:

    1. *Selection*: walk the priority list and select jobs while GPUs remain
       (the scheduling policy controls ordering and may itself truncate the
       list, e.g. strict FIFO).
    2. *Suspension*: running jobs that were not selected, or whose GPU demand
       changed, are suspended; their GPUs become available.
    3. *Allocation*: selected jobs that are not already running with the right
       allocation receive concrete GPUs via :meth:`select_gpus`.
    """

    name = "base-placement"

    #: The shared round logic keeps a running job's allocation untouched
    #: whenever its demand is unchanged and capacity suffices, so the simulator
    #: may skip placement calls during steady-state rounds (see
    #: :class:`repro.simulator.engine.Simulator`).
    steady_state_safe = True

    def place(
        self,
        schedule: Sequence[ScheduleEntry],
        cluster_state: ClusterState,
        job_state: JobState,
    ) -> PlacementDecision:
        capacity = sum(
            node.num_gpus for node in cluster_state.nodes.values() if not node.failed
        )

        selected: Dict[int, int] = {}
        order: List[int] = []
        remaining = capacity
        for entry in schedule:
            if entry.gpu_demand <= 0:
                continue
            if entry.job_id in selected:
                continue
            if entry.gpu_demand <= remaining:
                selected[entry.job_id] = entry.gpu_demand
                order.append(entry.job_id)
                remaining -= entry.gpu_demand

        decision = PlacementDecision()
        kept: Dict[int, List[int]] = {}
        suspended_gpus: List[int] = []
        for job in job_state.running_jobs():
            demand = selected.get(job.job_id)
            if demand is not None and demand == len(job.allocated_gpus):
                kept[job.job_id] = list(job.allocated_gpus)
            else:
                decision.to_suspend.append(job.job_id)
                suspended_gpus.extend(job.allocated_gpus)

        view = AvailabilityView(cluster_state, extra_gpu_ids=suspended_gpus)
        # Kept jobs retain their GPUs; remove them from the availability view in
        # case they were (incorrectly) reported free.
        for gpu_ids in kept.values():
            view.take(gpu_ids)

        for job_id in order:
            if job_id in kept:
                decision.to_launch[job_id] = kept[job_id]
                continue
            job = job_state.get(job_id)
            demand = selected[job_id]
            if view.total_free() < demand:
                continue
            gpu_ids = self.select_gpus(job, demand, view, cluster_state)
            if gpu_ids is None or len(gpu_ids) != demand:
                continue
            view.take(gpu_ids)
            decision.to_launch[job_id] = sorted(gpu_ids)

        return decision

    # ------------------------------------------------------------------
    # Hook for subclasses
    # ------------------------------------------------------------------

    def select_gpus(
        self,
        job: Job,
        demand: int,
        view: AvailabilityView,
        cluster_state: ClusterState,
    ) -> Optional[List[int]]:
        """Pick ``demand`` GPU ids from the availability view for ``job``.

        Return ``None`` (or a short list) if no acceptable placement exists; the
        job then waits for the next round.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Reusable allocation strategies for subclasses
    # ------------------------------------------------------------------

    @staticmethod
    def _take_first_free(demand: int, view: AvailabilityView) -> Optional[List[int]]:
        """Take the lowest-numbered free GPUs regardless of node boundaries."""
        picked: List[int] = []
        for node_id in view.node_ids():
            for gpu in view.free_on_node(node_id):
                picked.append(gpu.gpu_id)
                if len(picked) == demand:
                    return picked
        return picked if len(picked) == demand else None

    @staticmethod
    def _take_consolidated(demand: int, view: AvailabilityView) -> Optional[List[int]]:
        """Pack the job on as few nodes as possible (best fit on a single node)."""
        # Best fit: the node with the fewest free GPUs that still fits the job.
        single_node_candidates = [
            node_id for node_id in view.node_ids() if view.free_count(node_id) >= demand
        ]
        if single_node_candidates:
            best = min(single_node_candidates, key=lambda n: (view.free_count(n), n))
            return [g.gpu_id for g in view.free_on_node(best)[:demand]]
        # Otherwise spread over the fewest nodes, preferring the emptiest ones.
        picked: List[int] = []
        for node_id in view.nodes_by_free_count(descending=True):
            for gpu in view.free_on_node(node_id):
                picked.append(gpu.gpu_id)
                if len(picked) == demand:
                    return picked
        return picked if len(picked) == demand else None

    @staticmethod
    def _take_fragment_friendly(demand: int, view: AvailabilityView) -> Optional[List[int]]:
        """Fill up the fullest nodes first, minimising future fragmentation.

        Used for jobs that do not care about consolidation: they can absorb the
        scattered single GPUs, leaving contiguous blocks for jobs that do care.
        """
        picked: List[int] = []
        for node_id in view.nodes_by_free_count(descending=False):
            for gpu in view.free_on_node(node_id):
                picked.append(gpu.gpu_id)
                if len(picked) == demand:
                    return picked
        return picked if len(picked) == demand else None
