"""Profile-based placement ("Tiresias+" in the paper).

Instead of guessing placement sensitivity from tensor skew, this policy reads
the ground-truth consolidation preference obtained by profiling the model on
the target hardware (the job's ``placement_sensitive`` flag).  Section 4.3
shows the gap between the skew heuristic and this profile-driven policy grows
as more of the workload becomes placement sensitive.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.policies.placement.base import AvailabilityView, BasePlacementPolicy


class ProfilePlacement(BasePlacementPolicy):
    """Consolidate exactly the jobs whose profiles say they benefit from it."""

    name = "tiresias-plus"

    def select_gpus(
        self,
        job: Job,
        demand: int,
        view: AvailabilityView,
        cluster_state: ClusterState,
    ) -> Optional[List[int]]:
        if job.placement_sensitive:
            return self._take_consolidated(demand, view)
        return self._take_fragment_friendly(demand, view)
