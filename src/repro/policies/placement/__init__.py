"""Job placement policies: mapping prioritised jobs to concrete GPUs."""

from repro.policies.placement.base import BasePlacementPolicy, AvailabilityView
from repro.policies.placement.first_free import FirstFreePlacement
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.placement.tiresias_placement import TiresiasPlacement
from repro.policies.placement.profile_placement import ProfilePlacement
from repro.policies.placement.synergy_placement import SynergyPlacement
from repro.policies.placement.intra_node import IntraNodeBandwidthPlacement

__all__ = [
    "BasePlacementPolicy",
    "AvailabilityView",
    "FirstFreePlacement",
    "ConsolidatedPlacement",
    "TiresiasPlacement",
    "ProfilePlacement",
    "SynergyPlacement",
    "IntraNodeBandwidthPlacement",
]
