"""Synergy's resource-sensitive placement.

Synergy schedules CPU cores and host memory alongside GPUs.  Two modes are
reproduced from the paper's Figure 5 experiment:

* ``proportional`` -- every job receives the GPU-proportional share of the
  node's CPUs and memory (a job using 1 of 4 GPUs gets a quarter of the CPUs),
  regardless of what the model actually needs.  CPU-hungry jobs are throttled.
* ``tune`` (Synergy-Tune) -- jobs are given their profiled CPU/memory demand
  whenever the node can supply it, with CPU-light jobs implicitly donating
  their unused share.

The requested per-GPU CPU/memory allocation is written into the job's metrics;
the launch mechanism reserves it on the nodes and derives the CPU throughput
factor consumed by the execution model.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.policies.placement.base import AvailabilityView, BasePlacementPolicy

PROPORTIONAL = "proportional"
TUNE = "tune"


class SynergyPlacement(BasePlacementPolicy):
    """Consolidated placement plus CPU/memory allocation in one of two modes."""

    def __init__(self, mode: str = TUNE) -> None:
        if mode not in (PROPORTIONAL, TUNE):
            raise ConfigurationError(f"mode must be '{PROPORTIONAL}' or '{TUNE}', got {mode!r}")
        self.mode = mode
        self.name = f"synergy-{mode}"

    def select_gpus(
        self,
        job: Job,
        demand: int,
        view: AvailabilityView,
        cluster_state: ClusterState,
    ) -> Optional[List[int]]:
        gpu_ids = self._take_consolidated(demand, view)
        if gpu_ids is None:
            return None
        self._record_aux_request(job, gpu_ids, cluster_state)
        return gpu_ids

    def _record_aux_request(self, job: Job, gpu_ids: List[int], cluster_state: ClusterState) -> None:
        """Record the per-GPU CPU/memory share the launcher should reserve."""
        first_node = cluster_state.gpu(gpu_ids[0]).node_id
        node = cluster_state.node(first_node)
        proportional_cpu = node.cpu_cores / node.num_gpus
        proportional_mem = node.mem_gb / node.num_gpus
        if self.mode == PROPORTIONAL:
            job.metrics["cpu_alloc_per_gpu"] = proportional_cpu
            job.metrics["mem_alloc_per_gpu"] = proportional_mem
        else:
            job.metrics["cpu_alloc_per_gpu"] = job.cpu_demand_per_gpu
            job.metrics["mem_alloc_per_gpu"] = job.mem_demand_per_gpu
