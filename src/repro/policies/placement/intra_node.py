"""Bandwidth-aware intra-node placement (Blox §5.3, Table 4).

Within a server, GPU pairs are connected by NVLink links of different widths;
on a p3.8xlarge the "diagonal" pairs enjoy roughly double the bandwidth of the
others.  For multi-GPU single-node jobs this policy picks the subset of free
GPUs that maximises the aggregate pairwise bandwidth; the baseline mode picks a
(seeded) random subset, matching the "Random" row of Table 4.  The observed
aggregate bandwidth is recorded on the job so experiments can average it.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.policies.placement.base import AvailabilityView, BasePlacementPolicy

BANDWIDTH_AWARE = "bandwidth-aware"
RANDOM = "random"


class IntraNodeBandwidthPlacement(BasePlacementPolicy):
    """Consolidated placement with explicit intra-node GPU selection."""

    def __init__(self, mode: str = BANDWIDTH_AWARE, seed: int = 0) -> None:
        if mode not in (BANDWIDTH_AWARE, RANDOM):
            raise ConfigurationError(
                f"mode must be '{BANDWIDTH_AWARE}' or '{RANDOM}', got {mode!r}"
            )
        self.mode = mode
        self.name = f"intra-node-{mode}"
        self._rng = random.Random(seed)

    def select_gpus(
        self,
        job: Job,
        demand: int,
        view: AvailabilityView,
        cluster_state: ClusterState,
    ) -> Optional[List[int]]:
        single_node_candidates = [
            node_id for node_id in view.node_ids() if view.free_count(node_id) >= demand
        ]
        if not single_node_candidates:
            # Fall back to plain consolidation across nodes; intra-node link
            # choice is irrelevant once the job spans servers.
            return self._take_consolidated(demand, view)

        node_id = min(single_node_candidates, key=lambda n: (view.free_count(n), n))
        node = cluster_state.node(node_id)
        free_gpus = view.free_on_node(node_id)
        free_local = [g.local_gpu_id for g in free_gpus]
        by_local = {g.local_gpu_id: g.gpu_id for g in free_gpus}

        if demand == 1:
            chosen_local = [free_local[0]]
        elif self.mode == BANDWIDTH_AWARE:
            chosen_local = node.topology.best_subset(free_local, demand)
        else:
            chosen_local = self._rng.sample(free_local, demand)

        if demand > 1:
            observed = node.topology.aggregate_bandwidth(chosen_local)
            job.metrics["intra_node_bandwidth_gbps"] = observed
        return [by_local[local] for local in chosen_local]
