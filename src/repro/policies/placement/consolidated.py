"""Consolidated placement: pack every job onto as few nodes as possible."""

from __future__ import annotations

from typing import List, Optional

from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.policies.placement.base import AvailabilityView, BasePlacementPolicy


class ConsolidatedPlacement(BasePlacementPolicy):
    """Maximise consolidation for all jobs.

    Used as the default placement in the paper's scheduling-policy comparisons
    (§4.2) and shown in §4.3 to outperform the skew heuristic on V100 clusters
    with slow (10 Gbps) interconnects, where fragmenting any distributed job is
    expensive.
    """

    name = "consolidated"

    def select_gpus(
        self,
        job: Job,
        demand: int,
        view: AvailabilityView,
        cluster_state: ClusterState,
    ) -> Optional[List[int]]:
        return self._take_consolidated(demand, view)
