"""First-free placement: the simplest possible mapping of jobs to GPUs."""

from __future__ import annotations

from typing import List, Optional

from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.policies.placement.base import AvailabilityView, BasePlacementPolicy


class FirstFreePlacement(BasePlacementPolicy):
    """Allocate the lowest-numbered free GPUs, ignoring node boundaries.

    This is the "First-Free GPU placement policy" used in the fidelity
    experiment (Fig. 18) and a useful baseline for placement studies: multi-GPU
    jobs frequently end up fragmented across servers.
    """

    name = "first-free"

    def select_gpus(
        self,
        job: Job,
        demand: int,
        view: AvailabilityView,
        cluster_state: ClusterState,
    ) -> Optional[List[int]]:
        return self._take_first_free(demand, view)
