"""Shortest Remaining Time First scheduling.

SRTF prioritises the job that is closest to finishing, minimising average JCT
when job durations are known (in simulation they are, via the trace).  It is
one of the three policies the automatic scheduler synthesizer chooses between
in §5.2 and wins on the bursty workload dominated by short jobs.

Ordering is maintained incrementally: idle jobs' remaining work is frozen
(only running jobs progress), so the priority index keeps them permanently
sorted and each round only re-sorts the running tier -- O(running log running
+ n) instead of a full O(n log n) sort with attribute-access keys.
"""

from __future__ import annotations

from typing import List

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.core.job_state import JobState
from repro.policies.scheduling.priority_index import RunnablePriorityIndex


def _srtf_key(job: Job):
    return (job.remaining_work, job.arrival_time, job.job_id)


class SrtfScheduling(SchedulingPolicy):
    """Prioritise jobs by ascending remaining work."""

    name = "srtf"

    #: Stateless gang policy: ordering by remaining work never changes which
    #: jobs run while all active jobs are already running, so steady-state
    #: rounds may be fast-forwarded.
    steady_state_safe = True

    def __init__(self) -> None:
        self._index = RunnablePriorityIndex(idle_key=_srtf_key)

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        self._index.bind(job_state)
        ordered = self._index.ordered(running_key=_srtf_key)
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]
