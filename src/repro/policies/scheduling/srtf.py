"""Shortest Remaining Time First scheduling.

SRTF prioritises the job that is closest to finishing, minimising average JCT
when job durations are known (in simulation they are, via the trace).  It is
one of the three policies the automatic scheduler synthesizer chooses between
in §5.2 and wins on the bursty workload dominated by short jobs.
"""

from __future__ import annotations

from typing import List

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.job_state import JobState


class SrtfScheduling(SchedulingPolicy):
    """Prioritise jobs by ascending remaining work."""

    name = "srtf"

    #: Stateless gang policy: ordering by remaining work never changes which
    #: jobs run while all active jobs are already running, so steady-state
    #: rounds may be fast-forwarded.
    steady_state_safe = True

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        ordered = sorted(
            job_state.runnable_jobs(),
            key=lambda j: (j.remaining_work, j.arrival_time, j.job_id),
        )
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]
