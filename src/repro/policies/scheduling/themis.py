"""Themis: finish-time fairness (FTF) scheduling.

Themis defines a job's fairness metric rho as the ratio between its projected
finish time under the shared cluster and its finish time had it run alone on
its requested allocation.  Each round, Themis offers resources to the
worst-off jobs (largest rho) -- a fraction controlled by the fairness knob
``f`` -- which equalises rho across jobs over time.  The fair-share estimate
for each job is recorded in its metrics every round (the paper's Table 7 notes
Themis only needs the scheduling policy and metric collection modules).
"""

from __future__ import annotations

import math
from typing import List

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.core.job_state import JobState


class ThemisScheduling(SchedulingPolicy):
    """Prioritise jobs with the worst finish-time fairness."""

    name = "themis"
    # Explicit fast-forward contract (C101): finish-time fairness depends on
    # `now`, so priorities drift every round even with no job events.
    steady_state_safe = False

    def __init__(self, fairness_knob: float = 0.8) -> None:
        if not 0.0 <= fairness_knob < 1.0:
            raise ConfigurationError("fairness_knob must be in [0, 1)")
        self.fairness_knob = fairness_knob

    def finish_time_fairness(self, job: Job, now: float) -> float:
        """rho = projected shared finish time / isolated finish time."""
        ideal = max(job.duration, 1e-9)
        shared = (now - job.arrival_time) + job.remaining_work
        return max(0.0, shared) / ideal

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        now = getattr(job_state, "current_time", 0.0)
        jobs = job_state.runnable_jobs()
        if not jobs:
            return []
        scored = []
        for job in jobs:
            rho = self.finish_time_fairness(job, now)
            job.metrics["finish_time_fairness"] = rho
            scored.append((rho, job))
        scored.sort(key=lambda pair: (-pair[0], pair[1].arrival_time, pair[1].job_id))

        # The auction is only among the worst-off (1 - f) fraction of jobs;
        # remaining jobs are appended afterwards so idle GPUs still get used.
        cutoff = max(1, math.ceil((1.0 - self.fairness_knob) * len(scored)))
        winners = [job for _, job in scored[:cutoff]]
        backfill = [job for _, job in scored[cutoff:]]
        ordered = winners + backfill
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]
