"""Least Attained Service scheduling (single queue).

The single-queue LAS policy from Tiresias prioritises jobs that have consumed
the least GPU-time so far, which approximates shortest-job-first without
knowing job durations.  New arrivals have zero attained service so they always
get a shot at resources quickly (good responsiveness), at the cost of
preempting long-running jobs (which hurts their JCT at high load -- the
trade-off the composition case study in §5.1 addresses with admission control).

Ordering is maintained incrementally: attained service only accrues while a
job is RUNNING, so idle jobs keep their cached position in the priority index
and each round only re-sorts the running tier before merging.
"""

from __future__ import annotations

from typing import List

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.core.job_state import JobState
from repro.policies.scheduling.priority_index import RunnablePriorityIndex


def _las_key(job: Job):
    return (job.attained_service, job.arrival_time, job.job_id)


class LasScheduling(SchedulingPolicy):
    """Prioritise jobs by ascending attained GPU-service."""

    name = "las"

    #: Stateless gang policy: attained-service ordering never changes which
    #: jobs run while every active job is already running, so steady-state
    #: rounds may be fast-forwarded.
    steady_state_safe = True

    def __init__(self) -> None:
        self._index = RunnablePriorityIndex(idle_key=_las_key)

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        self._index.bind(job_state)
        ordered = self._index.ordered(running_key=_las_key)
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]
