"""Optimus: allocate GPUs by largest marginal gain in convergence speed.

Optimus estimates each job's remaining time to convergence and distributes
GPUs greedily: every runnable job first receives one GPU in order of expected
convergence (jobs closest to finishing first), then the remaining GPUs are
handed out one at a time to the job whose completion time shrinks the most
from an extra GPU.  Optimus is elastic -- the number of GPUs a job receives
each round can differ from its request -- and it consumes the loss metric
pushed by the metric collector to estimate convergence progress.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.core.job_state import JobState


class OptimusScheduling(SchedulingPolicy):
    """Largest-marginal-gain elastic GPU allocation."""

    name = "optimus"
    # Explicit fast-forward contract (C101): marginal gains shift with every
    # progress update, so decisions may change each round.
    steady_state_safe = False

    def __init__(self, max_gpus_per_job: int = 32) -> None:
        if max_gpus_per_job < 1:
            raise ConfigurationError("max_gpus_per_job must be >= 1")
        self.max_gpus_per_job = max_gpus_per_job

    # ------------------------------------------------------------------
    # Convergence / gain model
    # ------------------------------------------------------------------

    @staticmethod
    def _estimated_remaining_work(job: Job) -> float:
        """Remaining work until convergence in requested-allocation seconds.

        Optimus uses the observed loss trajectory; with the toolkit's synthetic
        loss curves the convergence point corresponds to the job's
        ``convergence_fraction`` of its requested duration, so the estimate is
        the distance to that point (never negative).
        """
        target = job.duration * job.convergence_fraction
        return max(0.0, target - job.work_done)

    def _completion_time_with(self, job: Job, num_gpus: int) -> float:
        rate = job.throughput_factor(num_gpus)
        if rate <= 0:
            return float("inf")
        return self._estimated_remaining_work(job) / rate

    def marginal_gain(self, job: Job, current_gpus: int) -> float:
        """Reduction in estimated completion time from one additional GPU."""
        cap = min(self.max_gpus_per_job, job.scaling.max_useful_gpus)
        if current_gpus >= cap:
            return 0.0
        return self._completion_time_with(job, current_gpus) - self._completion_time_with(
            job, current_gpus + 1
        )

    # ------------------------------------------------------------------

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        jobs = sorted(
            job_state.runnable_jobs(),
            key=lambda j: (self._estimated_remaining_work(j), j.arrival_time, j.job_id),
        )
        if not jobs:
            return []
        capacity = sum(
            node.num_gpus for node in cluster_state.nodes.values() if not node.failed
        )

        allocation: Dict[int, int] = {j.job_id: 0 for j in jobs}
        by_id = {j.job_id: j for j in jobs}

        # Phase 1: one GPU per job in convergence order.
        remaining = capacity
        for job in jobs:
            if remaining <= 0:
                break
            allocation[job.job_id] = 1
            remaining -= 1

        # Phase 2: greedily hand out the rest by largest marginal gain.
        while remaining > 0:
            best_job_id = None
            best_gain = 0.0
            for job_id, gpus in allocation.items():
                if gpus == 0:
                    continue
                gain = self.marginal_gain(by_id[job_id], gpus)
                if gain > best_gain:
                    best_gain = gain
                    best_job_id = job_id
            if best_job_id is None:
                break
            allocation[best_job_id] += 1
            remaining -= 1

        return [
            ScheduleEntry(job_id=job.job_id, gpu_demand=allocation[job.job_id])
            for job in jobs
            if allocation[job.job_id] > 0
        ]
