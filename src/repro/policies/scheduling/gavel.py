"""Gavel: heterogeneity-aware Least Attained Service.

Gavel generalises scheduling policies to heterogeneous clusters by normalising
each job's resource usage by its throughput on the accelerator type it runs
on: a job that accumulated an hour on a slow K80 has attained less *effective*
service than one that ran an hour on a V100.  The policy orders jobs by this
normalised attained service and records the GPU type on which each job runs
fastest so placement can prefer it.

Simplification versus the full Gavel optimiser: the original computes a
fractional allocation matrix via an LP over (job, accelerator-type) pairs and
round-robins within rounds; on the homogeneous clusters the paper evaluates,
that machinery reduces to LAS ordering, which is what we implement (together
with the throughput normalisation that distinguishes Gavel on heterogeneous
clusters).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.core.job_state import JobState
from repro.cluster.gpu_types import GPU_TYPES


class GavelScheduling(SchedulingPolicy):
    """Heterogeneity-aware LAS ordering with per-type throughput normalisation."""

    name = "gavel"

    @staticmethod
    def job_throughput_on(job: Job, gpu_type_name: str) -> float:
        """Relative throughput of the job on the given GPU type.

        Jobs may carry profiled per-type throughputs (``per_gpu_throughput``);
        otherwise the type's generic compute factor is used.
        """
        if gpu_type_name in job.per_gpu_throughput:
            return max(1e-9, float(job.per_gpu_throughput[gpu_type_name]))
        gpu_type = GPU_TYPES.get(gpu_type_name)
        return gpu_type.compute_factor if gpu_type is not None else 1.0

    def best_gpu_type(self, job: Job, cluster_state: ClusterState) -> Optional[str]:
        """The GPU type present in the cluster on which this job runs fastest."""
        present = {node.gpu_type_name for node in cluster_state.nodes.values() if not node.failed}
        if not present:
            return None
        return max(present, key=lambda t: self.job_throughput_on(job, t))

    def normalised_service(self, job: Job, cluster_state: ClusterState) -> float:
        """Attained service scaled by the throughput of the GPUs the job used.

        Running jobs are normalised by their current GPU type; idle jobs by the
        best type available to them (their effective service if launched now).
        """
        gpus = cluster_state.gpus_for_job(job.job_id)
        if gpus:
            type_name = gpus[0].gpu_type.name
        else:
            type_name = self.best_gpu_type(job, cluster_state) or "v100"
        return job.attained_service * self.job_throughput_on(job, type_name)

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        jobs = job_state.runnable_jobs()
        ordered = sorted(
            jobs,
            key=lambda j: (self.normalised_service(j, cluster_state), j.arrival_time, j.job_id),
        )
        entries = []
        for job in ordered:
            preferred = self.best_gpu_type(job, cluster_state)
            job.metrics["preferred_gpu_type"] = preferred
            entries.append(
                ScheduleEntry(job_id=job.job_id, gpu_demand=job.num_gpus, gpu_type=preferred)
            )
        return entries
