"""Gavel: heterogeneity-aware Least Attained Service.

Gavel generalises scheduling policies to heterogeneous clusters by normalising
each job's resource usage by its throughput on the accelerator type it runs
on: a job that accumulated an hour on a slow K80 has attained less *effective*
service than one that ran an hour on a V100.  The policy orders jobs by this
normalised attained service and records the GPU type on which each job runs
fastest on the :class:`~repro.core.abstractions.ScheduleEntry` so placement
can prefer it.

Simplification versus the full Gavel optimiser: the original computes a
fractional allocation matrix via an LP over (job, accelerator-type) pairs and
round-robins within rounds; on the homogeneous clusters the paper evaluates,
that machinery reduces to LAS ordering, which is what we implement (together
with the throughput normalisation that distinguishes Gavel on heterogeneous
clusters).

Hot-path structure: the set of GPU types present in the cluster is computed
once per round (not once per job), each job's preferred type is memoized
against that set, and the priority ordering is maintained incrementally --
idle jobs' normalised service is frozen (service only accrues while RUNNING),
so only the running tier is re-sorted each round.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.core.job_state import JobState
from repro.cluster.gpu_types import GPU_TYPES
from repro.policies.scheduling.priority_index import RunnablePriorityIndex


class GavelScheduling(SchedulingPolicy):
    """Heterogeneity-aware LAS ordering with per-type throughput normalisation."""

    name = "gavel"

    #: Gang policy whose ``schedule`` is free of side effects: while every
    #: active job is running with its requested gang, re-ordering cannot
    #: change the placement outcome, so steady-state rounds may be skipped.
    steady_state_safe = True

    def __init__(self) -> None:
        self._present_types: FrozenSet[str] = frozenset()
        self._best_type_by_job: Dict[int, Optional[str]] = {}
        self._index = RunnablePriorityIndex(
            idle_key=self._idle_key,
            on_rebuild=self._best_type_by_job.clear,
            on_transition=self._on_transition,
        )

    def _on_transition(self, job: Job, old) -> None:
        # old=None means the job was (re)tracked: a replacement object may
        # carry different per-type throughputs, so its memoized type must go.
        if old is None:
            self._best_type_by_job.pop(job.job_id, None)

    @staticmethod
    def job_throughput_on(job: Job, gpu_type_name: str) -> float:
        """Relative throughput of the job on the given GPU type.

        Jobs may carry profiled per-type throughputs (``per_gpu_throughput``);
        otherwise the type's generic compute factor is used.
        """
        if gpu_type_name in job.per_gpu_throughput:
            return max(1e-9, float(job.per_gpu_throughput[gpu_type_name]))
        gpu_type = GPU_TYPES.get(gpu_type_name)
        return gpu_type.compute_factor if gpu_type is not None else 1.0

    # ------------------------------------------------------------------
    # Cached preferred-type lookup
    # ------------------------------------------------------------------

    @staticmethod
    def present_gpu_types(cluster_state: ClusterState) -> FrozenSet[str]:
        """GPU types available on healthy nodes (one cluster scan per round)."""
        return frozenset(
            node.gpu_type_name for node in cluster_state.nodes.values() if not node.failed
        )

    def _refresh_present_types(self, cluster_state: ClusterState) -> None:
        present = self.present_gpu_types(cluster_state)
        if present != self._present_types:
            self._present_types = present
            self._best_type_by_job.clear()
            # Idle keys for unplaced jobs normalise by the best present type;
            # a membership change invalidates them all.
            self._index.rebuild()

    def _cached_best_type(self, job: Job) -> Optional[str]:
        if job.job_id in self._best_type_by_job:
            return self._best_type_by_job[job.job_id]
        if not self._present_types:
            best = None
        else:
            best = max(
                self._present_types, key=lambda t: self.job_throughput_on(job, t)
            )
        self._best_type_by_job[job.job_id] = best
        return best

    def best_gpu_type(self, job: Job, cluster_state: ClusterState) -> Optional[str]:
        """The GPU type present in the cluster on which this job runs fastest."""
        present = self.present_gpu_types(cluster_state)
        if not present:
            return None
        return max(present, key=lambda t: self.job_throughput_on(job, t))

    # ------------------------------------------------------------------
    # Priority keys
    # ------------------------------------------------------------------

    def _priority_key(self, job: Job, type_name: str):
        """(normalised service, arrival, id) -- the single ordering formula."""
        return (
            job.attained_service * self.job_throughput_on(job, type_name),
            job.arrival_time,
            job.job_id,
        )

    def _idle_key(self, job: Job):
        return self._priority_key(job, self._cached_best_type(job) or "v100")

    def normalised_service(self, job: Job, cluster_state: ClusterState) -> float:
        """Attained service scaled by the throughput of the GPUs the job used.

        Running jobs are normalised by their current GPU type; idle jobs by the
        best type available to them (their effective service if launched now).
        """
        gpus = cluster_state.gpus_for_job(job.job_id)
        if gpus:
            type_name = gpus[0].gpu_type.name
        else:
            type_name = self.best_gpu_type(job, cluster_state) or "v100"
        return job.attained_service * self.job_throughput_on(job, type_name)

    # ------------------------------------------------------------------

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        self._index.bind(job_state)
        self._refresh_present_types(cluster_state)

        def running_key(job: Job):
            gpus = cluster_state.gpus_for_job(job.job_id)
            if gpus:
                type_name = gpus[0].gpu_type.name
            else:
                type_name = self._cached_best_type(job) or "v100"
            return self._priority_key(job, type_name)

        ordered = self._index.ordered(running_key=running_key)
        return [
            ScheduleEntry(
                job_id=job.job_id,
                gpu_demand=job.num_gpus,
                gpu_type=self._cached_best_type(job),
            )
            for job in ordered
        ]
