"""Observer-maintained priority structures for scheduling policies.

Every seed scheduling policy re-sorted the whole runnable set each round --
O(n log n) per round with attribute-access sort keys, even while nothing about
the ordering changed.  :class:`RunnablePriorityIndex` replaces that with a
*tiered* structure maintained through the :class:`~repro.core.job_state.JobStateObserver`
hooks:

* the **idle tier** (RUNNABLE / PREEMPTED jobs) is kept permanently sorted.
  Its keys are *frozen while idle*: attained service, remaining work, arrival
  time and job id only change while a job is RUNNING (the execution model
  advances running jobs only), so an idle job's priority is computed once on
  entry and cached until it leaves the tier.  Keys that change for other
  reasons must be repositioned explicitly (:meth:`RunnablePriorityIndex.reposition`,
  used by Tiresias' starvation promotions) or, for continuously drifting
  keys, by subclassing and overriding ``on_progress``;
* the **running tier** is small (bounded by cluster capacity, not queue
  length) and its keys drift every round, so it is sorted fresh at schedule
  time and merged with the idle tier in O(running log running + n).

Keys must be tuples whose *last* component is the job id, making them a total
order; the two sorted tiers then merge deterministically into exactly the list
``sorted(runnable_jobs(), key=...)`` would produce, which is what the
schedule-parity tests assert policy by policy.

The index binds lazily to whichever :class:`~repro.core.job_state.JobState` the
policy is called with; rebinding (a shadow simulation, a fresh run reusing the
policy object) detaches from the old registry and rebuilds from scratch, and
notifies the owner through the ``on_rebuild`` callback so per-job memo caches
(goodput curves, preferred GPU types) can be dropped with it.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState, JobStateObserver

#: Key type: a tuple ending in the job id (total order over jobs).
PriorityKey = Tuple
KeyFn = Callable[[Job], PriorityKey]

_IDLE_STATUSES = (JobStatus.RUNNABLE, JobStatus.PREEMPTED)


class RunnablePriorityIndex(JobStateObserver):
    """Tiered (idle sorted / running unsorted) view of the runnable jobs."""

    def __init__(
        self,
        idle_key: KeyFn,
        on_rebuild: Optional[Callable[[], None]] = None,
        on_transition: Optional[Callable[[Job, Optional[JobStatus]], None]] = None,
        on_idle_enter: Optional[Callable[[Job], None]] = None,
    ) -> None:
        #: ``on_rebuild`` fires before a wholesale rebuild (drop memo caches);
        #: ``on_transition(job, old_status)`` fires on every tracked
        #: status change *before* the tiers are updated, so owners can refresh
        #: state the idle key depends on (Tiresias' wait clock);
        #: ``on_idle_enter(job)`` fires after a job is inserted into the idle
        #: tier (its key is available via :meth:`idle_key_of`).
        self._idle_key_fn = idle_key
        self._on_rebuild = on_rebuild
        self._on_transition = on_transition
        self._on_idle_enter = on_idle_enter
        self._job_state: Optional[JobState] = None
        #: ``bind_epoch`` of the bound registry at attach time; a mismatch
        #: means the registry crossed a pickle boundary (which drops observer
        #: registrations) and the index must re-attach even though the object
        #: identity is unchanged (checkpoint/restart of a whole simulator).
        self._bound_epoch: int = -1
        #: Sorted list of (key, job) for RUNNABLE/PREEMPTED jobs.
        self._idle: List[Tuple[PriorityKey, Job]] = []
        self._idle_keys: Dict[int, PriorityKey] = {}
        self._running: Dict[int, Job] = {}

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    @property
    def job_state(self) -> Optional[JobState]:
        """The registry this index is currently bound to (None before bind)."""
        return self._job_state

    def bind(self, job_state: JobState) -> None:
        """Attach to ``job_state``, rebuilding if it differs from the bound one.

        Rebinding also triggers when the registry's ``bind_epoch`` moved: the
        same object crossed a pickle boundary (shard checkpoint/restart),
        which silently dropped this index from its observer lists, so the
        identity short-circuit alone would leave the index permanently stale.
        """
        epoch = getattr(job_state, "bind_epoch", 0)
        if self._job_state is job_state and self._bound_epoch == epoch:
            return
        if self._job_state is not None:
            self._job_state.remove_observer(self)
        self._job_state = job_state
        self._bound_epoch = epoch
        job_state.add_observer(self)
        self.rebuild()

    def rebuild(self) -> None:
        """Recompute both tiers from the bound registry's status indexes."""
        self._idle = []
        self._idle_keys = {}
        self._running = {}
        if self._on_rebuild is not None:
            self._on_rebuild()
        if self._job_state is None:
            return
        for job in self._job_state.runnable_jobs():
            if job.status == JobStatus.RUNNING:
                self._running[job.job_id] = job
            else:
                self._insert_idle(job)
        self._idle.sort(key=lambda entry: entry[0])

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------

    def on_job_tracked(self, job: Job) -> None:
        if self._on_transition is not None:
            self._on_transition(job, None)
        self._discard(job.job_id)
        self._admit(job)

    def on_status_change(self, job: Job, old, new) -> None:
        if self._on_transition is not None:
            self._on_transition(job, old)
        self._discard(job.job_id)
        self._admit(job)

    # NOTE: the index deliberately does NOT override on_progress.  Idle keys
    # are frozen by construction -- attained service and remaining work only
    # change while a job is RUNNING, and the running tier is re-keyed at
    # schedule time -- and JobState skips the progress dispatch entirely for
    # observers that leave on_progress unimplemented, keeping the execution
    # model's two writes per running job per round off the notification path.
    # A policy whose idle keys do drift (a continuously-keyed structure)
    # should subclass and override on_progress to call reposition().

    # ------------------------------------------------------------------
    # Mutation helpers
    # ------------------------------------------------------------------

    def _admit(self, job: Job) -> None:
        if job.status == JobStatus.RUNNING:
            self._running[job.job_id] = job
        elif job.status in _IDLE_STATUSES:
            self._insert_idle(job, sort=True)

    def _insert_idle(self, job: Job, sort: bool = False) -> None:
        key = self._idle_key_fn(job)
        self._idle_keys[job.job_id] = key
        if sort:
            insort(self._idle, (key, job), key=lambda entry: entry[0])
        else:
            self._idle.append((key, job))
        if self._on_idle_enter is not None:
            self._on_idle_enter(job)

    def _remove_idle(self, job_id: int) -> None:
        key = self._idle_keys.pop(job_id)
        index = bisect_left(self._idle, key, key=lambda entry: entry[0])
        while index < len(self._idle) and self._idle[index][1].job_id != job_id:
            index += 1
        if index < len(self._idle):
            del self._idle[index]

    def _discard(self, job_id: int) -> None:
        self._running.pop(job_id, None)
        if job_id in self._idle_keys:
            self._remove_idle(job_id)

    def reposition(self, job: Job) -> None:
        """Recompute an idle job's key and move it to its new position.

        Used for key changes driven by wall-clock time rather than job state
        (Tiresias' starvation promotions).  No-op for jobs outside the idle
        tier.
        """
        if job.job_id in self._idle_keys:
            self._remove_idle(job.job_id)
            self._insert_idle(job, sort=True)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._idle) + len(self._running)

    def idle_entries(self) -> List[Tuple[PriorityKey, Job]]:
        """The idle tier, sorted by key (the live list; do not mutate)."""
        return self._idle

    def idle_jobs(self) -> List[Job]:
        return [job for _, job in self._idle]

    def running_jobs(self) -> List[Job]:
        """The running tier (unordered)."""
        return list(self._running.values())

    def idle_key_of(self, job_id: int) -> Optional[PriorityKey]:
        return self._idle_keys.get(job_id)

    def ordered(self, running_key: KeyFn) -> List[Job]:
        """All runnable jobs, ordered as a full sort by key would order them.

        ``running_key`` computes the (drifting) keys of the running tier; they
        must be tuples comparable with the idle keys and ending in the job id.
        """
        running = sorted(
            ((running_key(job), job) for job in self._running.values()),
            key=lambda entry: entry[0],
        )
        return merge_by_key(self._idle, running)

    def check_invariants(self) -> None:
        """Assert the tiers exactly mirror the bound registry (test support)."""
        assert self._job_state is not None, "index is not bound"
        runnable = {job.job_id: job for job in self._job_state.runnable_jobs()}
        members = set(self._idle_keys) | set(self._running)
        assert members == set(runnable), (
            f"index members {sorted(members)} != runnable {sorted(runnable)}"
        )
        assert not (set(self._idle_keys) & set(self._running)), "job in both tiers"
        for job_id, job in self._running.items():
            assert job.status == JobStatus.RUNNING, f"job {job_id} mis-tiered"
        keys = [key for key, _ in self._idle]
        assert keys == sorted(keys), "idle tier out of order"
        for key, job in self._idle:
            assert job.status in _IDLE_STATUSES, f"job {job.job_id} mis-tiered"
            assert self._idle_keys[job.job_id] == key, "idle key cache drifted"


def merge_by_key(
    first: List[Tuple[PriorityKey, Job]],
    second: List[Tuple[PriorityKey, Job]],
) -> List[Job]:
    """Merge two key-sorted (key, job) lists into one job list.

    Keys are unique (they end in the job id), so the merge is deterministic.
    """
    out: List[Job] = []
    i = j = 0
    while i < len(first) and j < len(second):
        if first[i][0] <= second[j][0]:
            out.append(first[i][1])
            i += 1
        else:
            out.append(second[j][1])
            j += 1
    out.extend(job for _, job in first[i:])
    out.extend(job for _, job in second[j:])
    return out
