"""Job scheduling policies implemented on the Blox abstractions."""

from repro.policies.scheduling.fifo import FifoScheduling
from repro.policies.scheduling.las import LasScheduling
from repro.policies.scheduling.srtf import SrtfScheduling
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.policies.scheduling.optimus import OptimusScheduling
from repro.policies.scheduling.gavel import GavelScheduling
from repro.policies.scheduling.pollux import PolluxScheduling
from repro.policies.scheduling.themis import ThemisScheduling
from repro.policies.scheduling.synergy import SynergyScheduling

__all__ = [
    "FifoScheduling",
    "LasScheduling",
    "SrtfScheduling",
    "TiresiasScheduling",
    "OptimusScheduling",
    "GavelScheduling",
    "PolluxScheduling",
    "ThemisScheduling",
    "SynergyScheduling",
]
