"""Synergy: resource-sensitive scheduling.

Synergy observes that DNN jobs differ widely in how much CPU and host memory
they need per GPU, and that allocating these auxiliary resources blindly (a
GPU-proportional share) throttles CPU-hungry jobs.  In Blox terms Synergy
modifies the scheduling policy (resource-sensitive FIFO ordering) and the
placement policy (which performs the CPU/memory-aware packing -- see
:class:`repro.policies.placement.synergy_placement.SynergyPlacement`).  The
scheduling side here orders jobs FIFO but annotates each entry with the job's
auxiliary demands so experiments can inspect them.
"""

from __future__ import annotations

from typing import List

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.job_state import JobState


class SynergyScheduling(SchedulingPolicy):
    """Resource-sensitive FIFO ordering used by both Synergy modes."""

    name = "synergy"
    # Explicit fast-forward contract (C101): arrival-ordered like FIFO, but
    # the per-job demand metrics are refreshed on every invocation.
    steady_state_safe = False

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        ordered = sorted(
            job_state.runnable_jobs(), key=lambda j: (j.arrival_time, j.job_id)
        )
        for job in ordered:
            job.metrics["cpu_demand"] = job.cpu_demand_per_gpu * job.num_gpus
            job.metrics["mem_demand"] = job.mem_demand_per_gpu * job.num_gpus
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]
