"""Nexus-style inference scheduling (Blox Appendix C).

Nexus serves DNN inference: a global scheduler decides, for every model, how
many GPUs to dedicate and which batch size to use so that the aggregate
request rate is served within each model's latency SLO.  Blox's appendix
sketches how the Nexus global scheduler maps onto the scheduling-policy
abstraction; we reproduce that prototype as a self-contained planner (the
"squishy bin packing" step) that experiments and the App-C benchmark exercise
with synthetic request streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class InferenceModel:
    """An inference workload: request rate, SLO and a linear batch-latency profile.

    Executing a batch of ``b`` requests takes ``base_latency_ms + b *
    per_item_latency_ms`` milliseconds on one GPU, the standard linear profile
    Nexus assumes.
    """

    name: str
    request_rate: float          # requests per second arriving at the frontends
    slo_ms: float                # end-to-end latency objective
    base_latency_ms: float       # fixed per-batch cost
    per_item_latency_ms: float   # marginal cost per request in the batch

    def __post_init__(self) -> None:
        if self.request_rate < 0:
            raise ConfigurationError("request_rate must be >= 0")
        if self.slo_ms <= 0 or self.base_latency_ms <= 0 or self.per_item_latency_ms <= 0:
            raise ConfigurationError("latencies and SLO must be > 0")

    def batch_latency_ms(self, batch_size: int) -> float:
        return self.base_latency_ms + batch_size * self.per_item_latency_ms

    def max_batch_for_slo(self) -> int:
        """Largest batch whose queueing + execution latency fits in the SLO.

        Nexus budgets half the SLO for batching delay and half for execution,
        so the execution latency of the chosen batch must stay below SLO/2.
        """
        budget = self.slo_ms / 2.0
        batch = int((budget - self.base_latency_ms) // self.per_item_latency_ms)
        return max(1, batch)

    def throughput_at(self, batch_size: int) -> float:
        """Requests per second one GPU sustains at the given batch size."""
        return batch_size / (self.batch_latency_ms(batch_size) / 1000.0)


@dataclass(frozen=True)
class ModelAllocation:
    """Planner output for one model."""

    model: str
    batch_size: int
    full_gpus: int
    fractional_share: float      # share of a shared GPU (0 when none needed)
    throughput_per_gpu: float

    @property
    def total_gpus(self) -> float:
        return self.full_gpus + self.fractional_share


@dataclass
class NexusPlan:
    """A full allocation plan across models, the Nexus routing-table analogue."""

    allocations: List[ModelAllocation]
    shared_gpus: int
    total_gpus_used: int

    def allocation_for(self, model_name: str) -> ModelAllocation:
        for alloc in self.allocations:
            if alloc.model == model_name:
                return alloc
        raise ConfigurationError(f"no allocation for model {model_name!r}")


class NexusScheduler:
    """Squishy-bin-packing planner: GPUs and batch sizes per model under SLOs."""

    name = "nexus"

    def __init__(self, total_gpus: int) -> None:
        if total_gpus < 1:
            raise ConfigurationError("total_gpus must be >= 1")
        self.total_gpus = total_gpus

    def plan(self, models: Sequence[InferenceModel]) -> NexusPlan:
        """Compute per-model GPU counts and batch sizes.

        Each model first receives as many dedicated GPUs as its rate fully
        saturates; the fractional leftovers of all models are then packed onto
        shared GPUs (the "squishy" part), each shared GPU hosting residues that
        sum to at most one GPU's worth of load.
        """
        allocations: List[ModelAllocation] = []
        residues: List[float] = []
        full_total = 0
        for model in models:
            batch = model.max_batch_for_slo()
            throughput = model.throughput_at(batch)
            gpus_needed = model.request_rate / throughput if throughput > 0 else 0.0
            full = int(math.floor(gpus_needed))
            residue = gpus_needed - full
            allocations.append(
                ModelAllocation(
                    model=model.name,
                    batch_size=batch,
                    full_gpus=full,
                    fractional_share=residue,
                    throughput_per_gpu=throughput,
                )
            )
            full_total += full
            if residue > 1e-9:
                residues.append(residue)

        shared = self._pack_residues(residues)
        total_used = full_total + shared
        if total_used > self.total_gpus:
            raise ConfigurationError(
                f"workload needs {total_used} GPUs but only {self.total_gpus} are available; "
                "an admission decision is required (drop models or relax SLOs)"
            )
        return NexusPlan(allocations=allocations, shared_gpus=shared, total_gpus_used=total_used)

    @staticmethod
    def _pack_residues(residues: List[float]) -> int:
        """First-fit-decreasing packing of fractional GPU demands onto shared GPUs."""
        bins: List[float] = []
        for residue in sorted(residues, reverse=True):
            for i, used in enumerate(bins):
                if used + residue <= 1.0 + 1e-9:
                    bins[i] = used + residue
                    break
            else:
                bins.append(residue)
        return len(bins)

    def can_admit(self, models: Sequence[InferenceModel], candidate: InferenceModel) -> bool:
        """Admission check: does adding ``candidate`` still fit on the cluster?

        This is the joint scheduling/admission behaviour §8 of the paper
        discusses: for inference the allocation decision doubles as admission.
        """
        try:
            self.plan(list(models) + [candidate])
        except ConfigurationError:
            return False
        return True
