"""Tiresias: discretised two-dimensional LAS (Gittins-index style multi-queue).

Tiresias assigns each job a priority queue based on its attained GPU-service
(GPU count x time).  Jobs start in the highest-priority queue and are demoted
as their attained service crosses configurable thresholds; within a queue jobs
run FIFO, across queues higher-priority queues win.  Discretising priorities
avoids the continuous-LAS pathology of constantly swapping jobs whose attained
service is nearly equal.  An optional starvation guard promotes jobs back to
the top queue once they have been runnable-but-not-running for too long
(Tiresias' PROMOTE knob).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState

#: Default queue thresholds in GPU-seconds: jobs move to a lower-priority queue
#: after 1 GPU-hour and again after 8 GPU-hours of attained service.
DEFAULT_QUEUE_THRESHOLDS = (3600.0, 8 * 3600.0)


class TiresiasScheduling(SchedulingPolicy):
    """Discrete-LAS scheduling with configurable queue thresholds."""

    name = "tiresias"

    def __init__(
        self,
        queue_thresholds: Sequence[float] = DEFAULT_QUEUE_THRESHOLDS,
        starvation_promote_after: float = float("inf"),
    ) -> None:
        thresholds = list(queue_thresholds)
        if any(t <= 0 for t in thresholds):
            raise ConfigurationError("queue thresholds must be positive")
        if thresholds != sorted(thresholds):
            raise ConfigurationError("queue thresholds must be increasing")
        self.queue_thresholds = thresholds
        self.starvation_promote_after = starvation_promote_after
        self._last_run_time: Dict[int, float] = {}

    @property
    def num_queues(self) -> int:
        return len(self.queue_thresholds) + 1

    def queue_index(self, job: Job) -> int:
        """The discrete priority queue a job currently belongs to (0 = highest)."""
        for index, threshold in enumerate(self.queue_thresholds):
            if job.attained_service < threshold:
                return index
        return len(self.queue_thresholds)

    def _effective_queue(self, job: Job, now: float) -> int:
        if job.status == JobStatus.RUNNING:
            self._last_run_time[job.job_id] = now
        waited = now - self._last_run_time.get(job.job_id, job.arrival_time)
        if waited >= self.starvation_promote_after:
            return 0
        return self.queue_index(job)

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        now = getattr(job_state, "current_time", 0.0)
        ordered = sorted(
            job_state.runnable_jobs(),
            key=lambda j: (self._effective_queue(j, now), j.arrival_time, j.job_id),
        )
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]
