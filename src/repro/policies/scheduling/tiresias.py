"""Tiresias: discretised two-dimensional LAS (Gittins-index style multi-queue).

Tiresias assigns each job a priority queue based on its attained GPU-service
(GPU count x time).  Jobs start in the highest-priority queue and are demoted
as their attained service crosses configurable thresholds; within a queue jobs
run FIFO, across queues higher-priority queues win.  Discretising priorities
avoids the continuous-LAS pathology of constantly swapping jobs whose attained
service is nearly equal.  An optional starvation guard promotes jobs back to
the top queue once they have been runnable-but-not-running for too long
(Tiresias' PROMOTE knob).

Implementation notes (the incremental hot path):

* the comparator is **pure**.  The seed updated ``_last_run_time`` from inside
  the sort key; the wait clock is now maintained by
  :class:`~repro.core.job_state.JobStateObserver` transition hooks -- the
  moment a job stops RUNNING is recorded once, at the transition -- so
  ordering is safe to evaluate any number of times, and the clock stays
  correct even for rounds the simulator skips entirely;
* idle jobs live in a permanently sorted priority index.  Their queue index is
  frozen while idle (service only accrues while RUNNING); the only
  time-driven change, starvation promotion, is applied by popping due
  deadlines from a heap and repositioning just those jobs;
* the policy can bound, in closed form, when its decision next changes:
  queue-demotion crossings of running jobs (service accrues at exactly
  ``len(allocated_gpus)`` GPU-seconds per second between completions) and
  promotion deadlines of waiting jobs.  :meth:`next_policy_event_time`
  reports the earliest, letting the simulator fast-forward through the
  rounds in between.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.policies.scheduling.priority_index import RunnablePriorityIndex

#: Default queue thresholds in GPU-seconds: jobs move to a lower-priority queue
#: after 1 GPU-hour and again after 8 GPU-hours of attained service.
DEFAULT_QUEUE_THRESHOLDS = (3600.0, 8 * 3600.0)


class TiresiasScheduling(SchedulingPolicy):
    """Discrete-LAS scheduling with configurable queue thresholds."""

    name = "tiresias"

    #: ``schedule`` is side-effect free (the wait clock lives in observer
    #: hooks), so while every active job runs with its requested gang a
    #: re-ordering cannot change the outcome and rounds may be skipped.
    steady_state_safe = True

    def __init__(
        self,
        queue_thresholds: Sequence[float] = DEFAULT_QUEUE_THRESHOLDS,
        starvation_promote_after: float = float("inf"),
    ) -> None:
        thresholds = list(queue_thresholds)
        if any(t <= 0 for t in thresholds):
            raise ConfigurationError("queue thresholds must be positive")
        if thresholds != sorted(thresholds):
            raise ConfigurationError("queue thresholds must be increasing")
        if starvation_promote_after <= 0:
            raise ConfigurationError("starvation_promote_after must be positive")
        self.queue_thresholds = thresholds
        self.starvation_promote_after = starvation_promote_after
        #: Simulated time at which each job last stopped RUNNING; jobs that
        #: never ran fall back to their arrival time.  Maintained by the
        #: transition hook, never by the comparator.
        self._last_run_time: Dict[int, float] = {}
        #: (deadline, job_id) promotion heap for jobs in the idle tier.
        self._promote_heap: List[Tuple[float, int]] = []
        self._index = RunnablePriorityIndex(
            idle_key=self._idle_key,
            on_rebuild=self._reset_clocks,
            on_transition=self._record_transition,
            on_idle_enter=self._push_promotion_deadline,
        )

    def _reset_clocks(self) -> None:
        self._last_run_time.clear()
        self._promote_heap.clear()

    @property
    def num_queues(self) -> int:
        return len(self.queue_thresholds) + 1

    # ------------------------------------------------------------------
    # Priority model (pure -- safe to evaluate any number of times)
    # ------------------------------------------------------------------

    def queue_index(self, job: Job) -> int:
        """The discrete priority queue a job currently belongs to (0 = highest)."""
        for index, threshold in enumerate(self.queue_thresholds):
            if job.attained_service < threshold:
                return index
        return len(self.queue_thresholds)

    def _waited(self, job: Job, now: float) -> float:
        return now - self._last_run_time.get(job.job_id, job.arrival_time)

    def _effective_queue(self, job: Job, now: float) -> int:
        """The queue used for ordering, with the starvation guard applied.

        RUNNING jobs are never starved; waiting jobs that have not run for
        ``starvation_promote_after`` seconds are lifted to the top queue.
        """
        if (
            job.status != JobStatus.RUNNING
            and self._waited(job, now) >= self.starvation_promote_after
        ):
            return 0
        return self.queue_index(job)

    def _now(self) -> float:
        job_state = self._index.job_state
        return getattr(job_state, "current_time", 0.0) if job_state is not None else 0.0

    def _idle_key(self, job: Job):
        return (self._effective_queue(job, self._now()), job.arrival_time, job.job_id)

    # ------------------------------------------------------------------
    # Observer-driven clock and promotion bookkeeping
    # ------------------------------------------------------------------

    def _record_transition(self, job: Job, old: Optional[JobStatus]) -> None:
        """Record when a job stops RUNNING (fires before the index re-tiers it).

        Equivalent to the seed's per-round clock refresh: the last value the
        seed recorded for a job was the schedule time of the round in which it
        stopped running, which is exactly the transition time captured here.
        """
        if old == JobStatus.RUNNING and job.status != JobStatus.RUNNING:
            self._last_run_time[job.job_id] = self._now()

    def _push_promotion_deadline(self, job: Job) -> None:
        """Called when a job enters the idle tier; schedules its promotion."""
        if not math.isfinite(self.starvation_promote_after):
            return
        key = self._index.idle_key_of(job.job_id)
        if key is not None and key[0] == 0:
            return  # already in (or promoted to) the top queue: promotion is moot
        deadline = self._promotion_deadline_of(job)
        heapq.heappush(self._promote_heap, (deadline, job.job_id))

    def _promotion_deadline_of(self, job: Job) -> float:
        start = self._last_run_time.get(job.job_id, job.arrival_time)
        return start + self.starvation_promote_after

    def _apply_due_promotions(self, now: float) -> None:
        """Reposition idle jobs whose starvation deadline has passed."""
        heap = self._promote_heap
        job_state = self._index.job_state
        while heap and heap[0][0] <= now:
            deadline, job_id = heapq.heappop(heap)
            key = self._index.idle_key_of(job_id)
            if key is None or key[0] == 0:
                continue  # left the idle tier, or already top-queue: stale entry
            job = job_state.get(job_id)  # type: ignore[union-attr]
            if self._promotion_deadline_of(job) != deadline:
                continue  # clock advanced since this entry; a fresh one exists
            self._index.reposition(job)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        now = getattr(job_state, "current_time", 0.0)
        self._index.bind(job_state)
        self._apply_due_promotions(now)

        def running_key(job: Job):
            return (self.queue_index(job), job.arrival_time, job.job_id)

        ordered = self._index.ordered(running_key=running_key)
        return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]

    # ------------------------------------------------------------------
    # Event-aware fast-forward support
    # ------------------------------------------------------------------

    def next_policy_event_time(
        self, job_state: JobState, cluster_state: ClusterState, now: float
    ) -> Optional[float]:
        """Earliest queue-demotion crossing or starvation-promotion deadline.

        Running jobs accrue attained service at exactly ``len(allocated_gpus)``
        GPU-seconds per wall-clock second (a completion, which ends the
        accrual, also ends the fast-forward stretch), so the crossing into the
        next queue is closed-form.  Promotion deadlines come from the idle
        heap.
        """
        if self._index.job_state is not job_state:
            return now  # not bound to this registry; no cached state to trust
        earliest: Optional[float] = None
        for job in self._index.running_jobs():
            gpus = len(job.allocated_gpus)
            if gpus <= 0:
                continue
            for threshold in self.queue_thresholds:
                if job.attained_service < threshold:
                    crossing = now + (threshold - job.attained_service) / gpus
                    if earliest is None or crossing < earliest:
                        earliest = crossing
                    break
        promotion = self._next_promotion_deadline()
        if promotion is not None and (earliest is None or promotion < earliest):
            earliest = promotion
        return earliest

    def _next_promotion_deadline(self) -> Optional[float]:
        """Peek the earliest still-valid promotion deadline (pops stale entries)."""
        heap = self._promote_heap
        job_state = self._index.job_state
        while heap:
            deadline, job_id = heap[0]
            key = self._index.idle_key_of(job_id)
            if key is None or key[0] == 0:
                heapq.heappop(heap)  # gone from the idle tier or already top
                continue
            job = job_state.get(job_id)  # type: ignore[union-attr]
            if self._promotion_deadline_of(job) != deadline:
                heapq.heappop(heap)  # superseded by a later entry
                continue
            return deadline
        return None
