"""First-In-First-Out scheduling, the baseline every other policy is measured against."""

from __future__ import annotations

from typing import List, Optional

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.core.job_state import JobState
from repro.policies.scheduling.priority_index import RunnablePriorityIndex


def _fifo_key(job: Job):
    return (job.arrival_time, job.job_id)


class FifoScheduling(SchedulingPolicy):
    """Run jobs strictly in arrival order.

    FIFO is non-preemptive in spirit: once a job starts it keeps its GPUs until
    it finishes, and newly arriving jobs queue behind the whole backlog -- which
    is why FIFO shows the worst responsiveness at high load in the paper's
    Figure 7 while avoiding the preemption-induced JCT inflation that hits LAS
    and Tiresias there.

    ``hol_blocking`` controls whether a queued job whose GPU demand does not fit
    blocks everything behind it (strict head-of-line blocking) or whether later
    jobs may backfill the leftover GPUs.  Backfilling is the default: it matches
    how production FIFO queues behave and keeps utilisation comparable to the
    preemptive policies so the comparison isolates the ordering decision.
    """

    name = "fifo"

    #: Stateless gang policy: with every active job running on its requested
    #: allocation, rescheduling is a no-op, so steady-state rounds may be
    #: fast-forwarded (with backfilling, all running jobs always fit capacity;
    #: with strict HOL blocking the running prefix still fits, so the loop
    #: never breaks early on a running job).
    steady_state_safe = True

    def __init__(self, hol_blocking: bool = False) -> None:
        self.hol_blocking = hol_blocking
        self._index = RunnablePriorityIndex(idle_key=_fifo_key)

    def next_policy_event_time(
        self, job_state: JobState, cluster_state: ClusterState, now: float
    ) -> Optional[float]:
        # Arrival order is static and demands are the requested gangs, so the
        # decision is a pure function of the job set, statuses and capacity:
        # it can only change on external events.
        return None

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        self._index.bind(job_state)
        ordered = self._index.ordered(running_key=_fifo_key)
        if not self.hol_blocking:
            return [ScheduleEntry(job_id=j.job_id, gpu_demand=j.num_gpus) for j in ordered]
        capacity = sum(
            node.num_gpus for node in cluster_state.nodes.values() if not node.failed
        )
        entries: List[ScheduleEntry] = []
        remaining = capacity
        for job in ordered:
            if job.num_gpus > remaining:
                break
            entries.append(ScheduleEntry(job_id=job.job_id, gpu_demand=job.num_gpus))
            remaining -= job.num_gpus
        return entries
