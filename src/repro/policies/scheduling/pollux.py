"""Pollux: goodput-driven co-adaptive scheduling (simplified model).

Pollux jointly adapts each job's GPU count and batch size to maximise cluster
*goodput* -- throughput discounted by the statistical efficiency of training at
a larger effective batch size.  Two properties of the real system drive the
behaviour reproduced in the paper's Figures 8 and 9:

* at low load, Pollux expands jobs beyond their requested GPU count when
  resources are idle (better JCT than FIFO/LAS, equal responsiveness);
* Pollux avoids preempting running jobs, so at very high load it shrinks
  allocations to one GPU per running job and newly arriving jobs simply queue,
  degrading both JCT and responsiveness towards FIFO.

We model goodput as ``speedup(g) * statistical_efficiency(g)`` where the
statistical efficiency decays gently as the job scales out (the larger the
effective batch, the less useful each example).  Allocation is water-filling
over marginal goodput, with running jobs guaranteed at least one GPU (no
preemption) and queued jobs served in arrival order.

The water-filling is implemented as a lazy max-heap over marginal goodput --
O(capacity log jobs) per round instead of the seed's O(capacity x jobs) full
rescan per GPU -- and each job's goodput curve is memoized: it depends only on
the job's static profile ``(scaling, num_gpus, max_batch_scale)``, so it is
computed once per job and invalidated via :meth:`invalidate_profile` if a
profiler updates the job mid-run.  Because a job's marginal goodput changes
only when *that job* receives a GPU, the heap pop (after discarding stale
entries) is always the true argmax, and ties break on the lower job id exactly
as the seed's first-strictly-greater scan did: the schedule is bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.policies.scheduling.priority_index import RunnablePriorityIndex

#: Minimum marginal goodput for which another GPU is still worth handing out
#: (matches the seed's strictly-greater comparison against this epsilon).
_MIN_GAIN = 1e-12


def _arrival_key(job: Job):
    return (job.arrival_time, job.job_id)


class _GoodputCurve:
    """Memoized goodput-by-GPU-count curve for one job's static profile."""

    __slots__ = ("cap", "values")

    def __init__(self, cap: int, values: List[float]) -> None:
        self.cap = cap  #: GPUs beyond which the marginal goodput is zero.
        self.values = values  #: ``values[g]`` = goodput on ``g`` GPUs, g in [0, cap].


class PolluxScheduling(SchedulingPolicy):
    """Heap-based goodput-maximising elastic allocation without preemption."""

    name = "pollux"

    def __init__(self, efficiency_decay: float = 0.03, restart_penalty: float = 0.05) -> None:
        if efficiency_decay < 0:
            raise ConfigurationError("efficiency_decay must be >= 0")
        if restart_penalty < 0:
            raise ConfigurationError("restart_penalty must be >= 0")
        self.efficiency_decay = efficiency_decay
        self.restart_penalty = restart_penalty
        self._curves: Dict[int, _GoodputCurve] = {}
        #: Running and waiting tiers both order by (arrival, id) -- static
        #: keys -- so the index keeps the waiting queue permanently sorted.
        self._index = RunnablePriorityIndex(
            idle_key=_arrival_key,
            on_rebuild=self._curves.clear,
            on_transition=self._on_transition,
        )

    def _on_transition(self, job: Job, old) -> None:
        # old=None means the job was (re)tracked: a replacement object may
        # carry a different profile, so its memoized curve must go.
        if old is None:
            self._curves.pop(job.job_id, None)

    # ------------------------------------------------------------------
    # Goodput model
    # ------------------------------------------------------------------

    def statistical_efficiency(self, job: Job, num_gpus: int) -> float:
        """Diminishing usefulness of additional data-parallel replicas."""
        extra = max(0, num_gpus - 1)
        scale_limit = max(1, job.max_batch_scale)
        overscale = max(0, num_gpus - scale_limit)
        return 1.0 / (1.0 + self.efficiency_decay * extra + 0.5 * overscale)

    def goodput(self, job: Job, num_gpus: int) -> float:
        if num_gpus <= 0:
            return 0.0
        return job.scaling.speedup(num_gpus) * self.statistical_efficiency(job, num_gpus)

    def _curve(self, job: Job) -> _GoodputCurve:
        curve = self._curves.get(job.job_id)
        if curve is None:
            cap = min(job.scaling.max_useful_gpus, job.num_gpus * max(1, job.max_batch_scale))
            values = [self.goodput(job, g) for g in range(cap + 1)]
            curve = _GoodputCurve(cap, values)
            self._curves[job.job_id] = curve
        return curve

    def invalidate_profile(self, job_id: int) -> None:
        """Drop the memoized goodput curve after a job's profile changed.

        The curve depends only on ``(scaling, num_gpus, max_batch_scale)``;
        callers that update any of these mid-run (an online profiler) must
        invalidate so the next round recomputes the curve.
        """
        self._curves.pop(job_id, None)

    def marginal_goodput(self, job: Job, num_gpus: int) -> float:
        curve = self._curve(job)
        if num_gpus >= curve.cap:
            return 0.0
        gain = curve.values[num_gpus + 1] - curve.values[num_gpus]
        if num_gpus == 0 and job.status != JobStatus.RUNNING:
            # Starting a brand-new job costs a checkpoint-restore; bias very
            # slightly towards growing existing jobs, as Pollux's re-allocation
            # penalty does.
            gain -= self.restart_penalty
        return gain

    def next_policy_event_time(
        self, job_state: JobState, cluster_state: ClusterState, now: float
    ) -> Optional[float]:
        # The allocation is a pure function of the runnable set, job statuses,
        # profiles and healthy capacity -- none of which drift between
        # external events -- so the decision never changes on its own.
        return None

    # ------------------------------------------------------------------

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        self._index.bind(job_state)
        running = sorted(
            ((_arrival_key(job), job) for job in self._index.running_jobs()),
            key=lambda entry: entry[0],
        )
        waiting = self._index.idle_entries()
        if not running and not waiting:
            return []
        capacity = sum(
            node.num_gpus for node in cluster_state.nodes.values() if not node.failed
        )

        allocation: Dict[int, int] = {}
        # Running jobs are never preempted: they keep at least one GPU.
        remaining = capacity
        for _, job in running:
            if remaining <= 0:
                allocation[job.job_id] = 0
                continue
            allocation[job.job_id] = 1
            remaining -= 1
        for _, job in waiting:
            allocation[job.job_id] = 0

        # Remaining GPUs go to whichever job has the highest marginal goodput;
        # queued jobs compete here and receive their first GPU when idle
        # capacity exists (low load) but queue behind running jobs otherwise.
        # Lazy max-heap: one live entry per job (its gain changes only when it
        # receives a GPU); stale entries are discarded on pop.
        by_id = {job.job_id: job for _, job in running}
        by_id.update((job.job_id, job) for _, job in waiting)
        heap: List[Tuple[float, int, int]] = [
            (-self.marginal_goodput(by_id[job_id], gpus), job_id, gpus)
            for job_id, gpus in allocation.items()
        ]
        heapq.heapify(heap)
        while remaining > 0 and heap:
            neg_gain, job_id, gpus = heapq.heappop(heap)
            if allocation[job_id] != gpus:
                continue  # stale entry from before this job's last grant
            if -neg_gain <= _MIN_GAIN:
                break  # the best remaining marginal gain is not worth a GPU
            allocation[job_id] = gpus + 1
            remaining -= 1
            heapq.heappush(
                heap,
                (-self.marginal_goodput(by_id[job_id], gpus + 1), job_id, gpus + 1),
            )

        return [
            ScheduleEntry(job_id=job.job_id, gpu_demand=allocation[job.job_id])
            for _, job in (*running, *waiting)
            if allocation[job.job_id] > 0
        ]
