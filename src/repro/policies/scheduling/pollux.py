"""Pollux: goodput-driven co-adaptive scheduling (simplified model).

Pollux jointly adapts each job's GPU count and batch size to maximise cluster
*goodput* -- throughput discounted by the statistical efficiency of training at
a larger effective batch size.  Two properties of the real system drive the
behaviour reproduced in the paper's Figures 8 and 9:

* at low load, Pollux expands jobs beyond their requested GPU count when
  resources are idle (better JCT than FIFO/LAS, equal responsiveness);
* Pollux avoids preempting running jobs, so at very high load it shrinks
  allocations to one GPU per running job and newly arriving jobs simply queue,
  degrading both JCT and responsiveness towards FIFO.

We model goodput as ``speedup(g) * statistical_efficiency(g)`` where the
statistical efficiency decays gently as the job scales out (the larger the
effective batch, the less useful each example).  Allocation is a greedy
water-filling over marginal goodput, with running jobs guaranteed at least one
GPU (no preemption) and queued jobs served in arrival order.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.abstractions import ScheduleEntry, SchedulingPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState


class PolluxScheduling(SchedulingPolicy):
    """Greedy goodput-maximising elastic allocation without preemption."""

    name = "pollux"

    def __init__(self, efficiency_decay: float = 0.03, restart_penalty: float = 0.05) -> None:
        if efficiency_decay < 0:
            raise ConfigurationError("efficiency_decay must be >= 0")
        if restart_penalty < 0:
            raise ConfigurationError("restart_penalty must be >= 0")
        self.efficiency_decay = efficiency_decay
        self.restart_penalty = restart_penalty

    # ------------------------------------------------------------------
    # Goodput model
    # ------------------------------------------------------------------

    def statistical_efficiency(self, job: Job, num_gpus: int) -> float:
        """Diminishing usefulness of additional data-parallel replicas."""
        extra = max(0, num_gpus - 1)
        scale_limit = max(1, job.max_batch_scale)
        overscale = max(0, num_gpus - scale_limit)
        return 1.0 / (1.0 + self.efficiency_decay * extra + 0.5 * overscale)

    def goodput(self, job: Job, num_gpus: int) -> float:
        if num_gpus <= 0:
            return 0.0
        return job.scaling.speedup(num_gpus) * self.statistical_efficiency(job, num_gpus)

    def marginal_goodput(self, job: Job, num_gpus: int) -> float:
        cap = min(job.scaling.max_useful_gpus, job.num_gpus * max(1, job.max_batch_scale))
        if num_gpus >= cap:
            return 0.0
        gain = self.goodput(job, num_gpus + 1) - self.goodput(job, num_gpus)
        if num_gpus == 0 and job.status != JobStatus.RUNNING:
            # Starting a brand-new job costs a checkpoint-restore; bias very
            # slightly towards growing existing jobs, as Pollux's re-allocation
            # penalty does.
            gain -= self.restart_penalty
        return gain

    # ------------------------------------------------------------------

    def schedule(self, job_state: JobState, cluster_state: ClusterState) -> List[ScheduleEntry]:
        jobs = job_state.runnable_jobs()
        if not jobs:
            return []
        capacity = sum(
            node.num_gpus for node in cluster_state.nodes.values() if not node.failed
        )

        running = [j for j in jobs if j.status == JobStatus.RUNNING]
        waiting = sorted(
            (j for j in jobs if j.status != JobStatus.RUNNING),
            key=lambda j: (j.arrival_time, j.job_id),
        )

        allocation: Dict[int, int] = {j.job_id: 0 for j in jobs}
        by_id = {j.job_id: j for j in jobs}

        # Running jobs are never preempted: they keep at least one GPU.
        remaining = capacity
        for job in sorted(running, key=lambda j: (j.arrival_time, j.job_id)):
            if remaining <= 0:
                break
            allocation[job.job_id] = 1
            remaining -= 1

        # Remaining GPUs go to whichever job has the highest marginal goodput;
        # queued jobs compete here and receive their first GPU when idle
        # capacity exists (low load) but queue behind running jobs otherwise.
        while remaining > 0:
            best_id = None
            best_gain = 1e-12
            for job_id, gpus in allocation.items():
                gain = self.marginal_goodput(by_id[job_id], gpus)
                if gain > best_gain:
                    best_gain = gain
                    best_id = job_id
            if best_id is None:
                break
            allocation[best_id] += 1
            remaining -= 1

        ordered = sorted(running, key=lambda j: (j.arrival_time, j.job_id)) + waiting
        return [
            ScheduleEntry(job_id=j.job_id, gpu_demand=allocation[j.job_id])
            for j in ordered
            if allocation[j.job_id] > 0
        ]
