"""Concrete instances of the Blox abstractions.

Subpackages:

* :mod:`repro.policies.admission` -- accept-all, threshold (Accept-Nx), quota.
* :mod:`repro.policies.scheduling` -- FIFO, LAS, SRTF, Tiresias, Optimus, Gavel,
  Pollux, Themis, Synergy, Nexus-style inference scheduling.
* :mod:`repro.policies.placement` -- first-free, consolidated, Tiresias skew
  heuristic, profile-based (Tiresias+), Synergy-aware, bandwidth-aware
  intra-node placement.
* :mod:`repro.policies.termination` -- epoch-based and loss-based termination.
"""
