"""Loss-based termination (Blox §5.3).

The Philly study observed that around 75% of jobs reach within 0.1% of their
lowest loss using only 40% of their epochs.  The loss-based termination policy
marks a job complete as soon as its loss has converged, freeing its resources
early.  In the workload generators this convergence point is encoded as the
job's ``convergence_fraction``; the policy terminates a job once it has done
that fraction of its requested work (equivalently, once the synthetic loss
curve flattens below the job's threshold).
"""

from __future__ import annotations

from repro.core.abstractions import TerminationPolicy
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job


class LossBasedTermination(TerminationPolicy):
    """Terminate a job once its training loss has converged.

    ``min_fraction`` guards against pathological profiles terminating a job
    before it has made any meaningful progress.
    """

    name = "loss-termination"

    def __init__(self, min_fraction: float = 0.05) -> None:
        if not 0.0 < min_fraction <= 1.0:
            raise ConfigurationError("min_fraction must be in (0, 1]")
        self.min_fraction = min_fraction

    def work_target(self, job: Job) -> float:
        fraction = max(self.min_fraction, min(1.0, job.convergence_fraction))
        return job.duration * fraction
