"""Termination policies: when is a job done?"""

from repro.policies.termination.epoch import EpochBasedTermination
from repro.policies.termination.loss_based import LossBasedTermination

__all__ = ["EpochBasedTermination", "LossBasedTermination"]
