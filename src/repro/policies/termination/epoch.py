"""Epoch-based termination: run exactly the work the user submitted."""

from __future__ import annotations

from repro.core.abstractions import TerminationPolicy
from repro.core.job import Job


class EpochBasedTermination(TerminationPolicy):
    """Default behaviour: a job completes after its full requested duration.

    This corresponds to users specifying a fixed number of epochs; the paper
    notes (citing the Philly analysis) that users typically over-estimate this
    number, which is what the loss-based policy exploits.
    """

    name = "epoch-termination"

    def work_target(self, job: Job) -> float:
        return job.duration
