"""FIFO admission control with a cluster-size-relative threshold (Blox §5.1).

The composition case study pairs LAS scheduling with an admission policy that
only admits new jobs while the cumulative GPU demand of admitted, unfinished
jobs stays below ``threshold_factor`` times the cluster's GPU count (e.g.
"Accept 1.2x").  Jobs beyond the threshold wait in a FIFO admission queue and
are released as running jobs complete.  Trading a little responsiveness for
fewer preemptions of admitted jobs improves average JCT at high load.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Sequence

from repro.core.abstractions import AdmissionPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState


class ThresholdAdmission(AdmissionPolicy):
    """Admit jobs FIFO while admitted GPU demand stays below a threshold."""

    def __init__(self, threshold_factor: float = 1.5) -> None:
        if threshold_factor <= 0:
            raise ConfigurationError(
                f"threshold_factor must be > 0, got {threshold_factor}"
            )
        self.threshold_factor = threshold_factor
        self.name = f"accept-{threshold_factor:g}x"
        self._queue: Deque[Job] = deque()

    def pending_jobs(self) -> List[Job]:
        return list(self._queue)

    def _admitted_demand(self, job_state: JobState) -> int:
        return sum(j.num_gpus for j in job_state.active_jobs())

    def accept(
        self,
        new_jobs: Sequence[Job],
        cluster_state: ClusterState,
        job_state: JobState,
    ) -> List[Job]:
        for job in new_jobs:
            job.status = JobStatus.WAITING_ADMISSION
            self._queue.append(job)

        limit = self.threshold_factor * cluster_state.total_gpus
        demand = self._admitted_demand(job_state)
        accepted: List[Job] = []
        while self._queue and demand + self._queue[0].num_gpus <= limit:
            job = self._queue.popleft()
            demand += job.num_gpus
            accepted.append(job)
        return accepted
