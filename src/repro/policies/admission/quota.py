"""Per-user quota admission, one of the "possible instances" listed in Table 5."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence

from repro.core.abstractions import AdmissionPolicy
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState


class UserQuotaAdmission(AdmissionPolicy):
    """Limit the number of GPUs each user may have admitted at once.

    Jobs exceeding their user's quota wait in a per-user FIFO queue and are
    released as that user's earlier jobs finish.  ``default_quota`` applies to
    users without an explicit entry in ``quotas``.

    A job whose gang is *larger than its user's whole quota* can never be
    admitted no matter how many earlier jobs finish; queueing it would wait
    forever (and, with such a job in the queue, the simulator's stall detector
    never fires -- the livelock noted in the ROADMAP).  Such jobs are rejected
    at submission instead: they are tracked in the registry with status
    ``FAILED`` and ``metrics["admission_rejected"]`` set, so runs terminate
    and the rejection is observable in the results.
    """

    name = "user-quota"

    def __init__(self, default_quota: int = 16, quotas: Dict[str, int] = None) -> None:
        if default_quota < 1:
            raise ConfigurationError("default_quota must be >= 1")
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})
        for user, quota in self.quotas.items():
            if quota < 1:
                raise ConfigurationError(f"quota for user {user!r} must be >= 1")
        self._queues: Dict[str, Deque[Job]] = {}
        #: Ids of jobs rejected because their gang exceeds the user quota.
        self.rejected_job_ids: List[int] = []

    def pending_jobs(self) -> List[Job]:
        pending: List[Job] = []
        for queue in self._queues.values():
            pending.extend(queue)
        return sorted(pending, key=lambda j: j.job_id)

    def _quota_for(self, user: str) -> int:
        return self.quotas.get(user, self.default_quota)

    def _user_usage(self, job_state: JobState) -> Dict[str, int]:
        usage: Dict[str, int] = {}
        for job in job_state.active_jobs():
            usage[job.user] = usage.get(job.user, 0) + job.num_gpus
        return usage

    def accept(
        self,
        new_jobs: Sequence[Job],
        cluster_state: ClusterState,
        job_state: JobState,
    ) -> List[Job]:
        for job in new_jobs:
            if job.num_gpus > self._quota_for(job.user):
                # Admission-reject: this gang can never fit the user's quota,
                # so holding it would livelock.  Track it so the registry (and
                # the simulator's termination checks) see a terminal job.
                job_state.track(job)
                job.status = JobStatus.FAILED
                job.metrics["admission_rejected"] = "gang_exceeds_user_quota"
                self.rejected_job_ids.append(job.job_id)
                continue
            job.status = JobStatus.WAITING_ADMISSION
            self._queues.setdefault(job.user, deque()).append(job)

        usage = self._user_usage(job_state)
        accepted: List[Job] = []
        for user in sorted(self._queues):
            queue = self._queues[user]
            quota = self._quota_for(user)
            used = usage.get(user, 0)
            while queue and used + queue[0].num_gpus <= quota:
                job = queue.popleft()
                used += job.num_gpus
                accepted.append(job)
        return sorted(accepted, key=lambda j: j.arrival_time)
