"""Job admission policies: gatekeeping newly submitted jobs."""

from repro.policies.admission.accept_all import AcceptAll
from repro.policies.admission.threshold import ThresholdAdmission
from repro.policies.admission.quota import UserQuotaAdmission

__all__ = ["AcceptAll", "ThresholdAdmission", "UserQuotaAdmission"]
