"""The default admission policy: accept every submitted job immediately."""

from __future__ import annotations

from typing import List, Sequence

from repro.core.abstractions import AdmissionPolicy
from repro.core.cluster_state import ClusterState
from repro.core.job import Job
from repro.core.job_state import JobState


class AcceptAll(AdmissionPolicy):
    """Admit every arriving job into the schedulable pool.

    This is the admission policy implicitly used by most prior schedulers and
    the "Accept All" baseline in the composition case study (§5.1).
    """

    name = "accept-all"

    def accept(
        self,
        new_jobs: Sequence[Job],
        cluster_state: ClusterState,
        job_state: JobState,
    ) -> List[Job]:
        return list(new_jobs)
