"""(D) Determinism rules.

Bit-identical schedules are the ground the whole bench/parity story stands
on (modular-scheduler comparisons are only meaningful when runs are
reproducible), so these rules ban the three classic nondeterminism sources:
ambient randomness (D101), ambient wall-clock / environment reads on the
simulation path (D102/D103), and memory-layout-dependent ordering -- set
iteration order (D104) and ``id()`` (D105).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.analysis.core import FileContext, Rule, dotted_name, parent_of

#: Wall-clock reads D102 bans (matched against the written dotted call).
WALLCLOCK_CALLEES: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)
#: Suffix-matched (``datetime.datetime.now`` and ``datetime.now`` both hit).
WALLCLOCK_SUFFIXES: Tuple[str, ...] = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Consumers that make set iteration order-safe (or order-irrelevant).
ORDER_SAFE_CONSUMERS: FrozenSet[str] = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)


class UnseededRandomRule(Rule):
    """D101: module-level ``random.*`` calls / unseeded ``random.Random()``.

    Module-level randomness shares one hidden global stream across every
    caller, so adding any draw anywhere perturbs every schedule after it.
    All randomness must flow through an explicitly seeded ``random.Random``
    instance owned by the component.
    """

    rule_id = "D101"
    description = (
        "module-level random.* call or unseeded Random() -- randomness must "
        "come from an explicitly seeded random.Random instance"
    )
    hint = "thread a seeded random.Random(seed) through the component"

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        if name in ("random.Random", "random.SystemRandom", "Random", "SystemRandom"):
            if name.endswith("SystemRandom") or not (node.args or node.keywords):
                ctx.report(self, node, f"unseeded RNG construction `{name}()`")
            return
        if name.startswith("random.") and name.count(".") == 1:
            ctx.report(self, node, f"module-level `{name}()` draws from the global RNG")
            return
        if ".random." in name and (
            name.startswith("np.") or name.startswith("numpy.")
        ):
            ctx.report(
                self,
                node,
                f"global numpy RNG call `{name}()`",
                hint="use numpy.random.Generator seeded via default_rng(seed)",
            )


class WallClockRule(Rule):
    """D102: wall-clock reads inside simulation-path packages.

    Simulated time comes from the engine clock; reading the host clock on
    the simulation path makes payloads (and anything branching on them)
    differ between a run and its replay.  Measurement-only reads are
    allowlisted per file+callee in the manifest.
    """

    rule_id = "D102"
    description = (
        "wall-clock read on the simulation path -- simulated time must come "
        "from the engine clock"
    )
    hint = (
        "use the simulated clock, or add a manifest allowlist entry if this "
        "is measurement-only"
    )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not ctx.in_simulation_path():
            return
        name = dotted_name(node.func)
        if name is None:
            return
        hit = name in WALLCLOCK_CALLEES or any(
            name == suffix or name.endswith("." + suffix)
            for suffix in WALLCLOCK_SUFFIXES
        )
        if not hit:
            return
        if ctx.manifest.wallclock_allowed(ctx.rel, self.rule_id, name):
            return
        ctx.report(self, node, f"wall-clock read `{name}()` in simulation package")


class EnvReadRule(Rule):
    """D103: process-environment reads inside simulation-path packages.

    Environment contents differ across hosts and launches; simulation
    behaviour keyed on them is invisible, unrecorded configuration.  Config
    must arrive through explicit constructor/spec parameters.
    """

    rule_id = "D103"
    description = (
        "os.environ/os.getenv read on the simulation path -- configuration "
        "must be explicit"
    )
    hint = "pass the value in via constructor/RunSpec instead"

    def visit_Attribute(self, ctx: FileContext, node: ast.Attribute) -> None:
        if not ctx.in_simulation_path():
            return
        if dotted_name(node) == "os.environ" and not ctx.manifest.wallclock_allowed(
            ctx.rel, self.rule_id, "os.environ"
        ):
            ctx.report(self, node, "`os.environ` read in simulation package")

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not ctx.in_simulation_path():
            return
        if dotted_name(node.func) == "os.getenv" and not ctx.manifest.wallclock_allowed(
            ctx.rel, self.rule_id, "os.getenv"
        ):
            ctx.report(self, node, "`os.getenv()` read in simulation package")


class IdOrderingRule(Rule):
    """D105: ``id()`` in simulation code.

    ``id()`` is a memory address -- process-layout-dependent and different
    on every run -- so any key, comparison, or tiebreak built on it is
    nondeterministic by construction.
    """

    rule_id = "D105"
    description = "id() is a memory address; never use it in keys or ordering"
    hint = "key on a stable identifier (job_id, node_id, name) instead"

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        if not ctx.in_simulation_path():
            return
        if isinstance(node.func, ast.Name) and node.func.id == "id" and node.args:
            ctx.report(self, node, "`id()` call in simulation package")


# ---------------------------------------------------------------------------
# D104: unordered set iteration feeding ordering-sensitive sinks
# ---------------------------------------------------------------------------


def _is_set_annotation(node: Optional[ast.AST]) -> bool:
    """``Set[...]`` / ``FrozenSet[...]`` / bare ``set`` annotations."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("Set", "FrozenSet", "set", "frozenset", "MutableSet")
    if isinstance(node, ast.Attribute):  # typing.Set etc.
        return node.attr in ("Set", "FrozenSet", "MutableSet")
    return False


def _is_dict_of_set_annotation(node: Optional[ast.AST]) -> bool:
    """``Dict[K, Set[V]]`` annotations (``self._free_by_node`` style)."""
    if not isinstance(node, ast.Subscript):
        return False
    base = node.value
    base_name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name not in ("Dict", "dict", "DefaultDict", "defaultdict", "Mapping", "MutableMapping"):
        return False
    sl = node.slice
    if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
        return _is_set_annotation(sl.elts[1])
    return False


class _ScopeTypes:
    """Set-typed names visible in one function (or module) scope."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def mark(self, name: str, is_set: bool) -> None:
        if is_set:
            self.set_names.add(name)
        else:
            self.set_names.discard(name)


class UnorderedIterationRule(Rule):
    """D104: iterating a set where the resulting order can leak out.

    Set iteration order depends on insertion history and hash seeds; when
    it feeds list building, routing, or schedule emission the run is no
    longer replayable.  Iterations whose consumer is order-insensitive
    (``sorted``/``len``/``sum``/``min``/``max``/``any``/``all``/set
    building) are not flagged.  Known limitation: set-ness is inferred per
    scope from literals, annotations, and set-returning operations --
    values passed through untyped parameters are not tracked, and
    ``list.extend(<set>)`` is deliberately not a sink (the repo idiom
    extends then sorts once).
    """

    rule_id = "D104"
    description = (
        "iteration over a set feeds an ordering-sensitive sink -- wrap in "
        "sorted(...)"
    )
    hint = "iterate sorted(<set>) so the order is stable across runs"

    def begin_file(self, ctx: FileContext) -> None:
        # attr name -> "set" | "dict_of_set", per enclosing class, built from
        # __init__/class-level annotations so self._x resolves in any method.
        self._class_attrs: Dict[ast.ClassDef, Dict[str, str]] = {}
        if ctx.tree is None or ctx.module is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._class_attrs[node] = self._collect_class_attrs(node)

    @staticmethod
    def _collect_class_attrs(cls: ast.ClassDef) -> Dict[str, str]:
        attrs: Dict[str, str] = {}

        def note(name: str, annotation: ast.AST) -> None:
            if _is_set_annotation(annotation):
                attrs[name] = "set"
            elif _is_dict_of_set_annotation(annotation):
                attrs[name] = "dict_of_set"

        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                note(stmt.target.id, stmt.annotation)
        for stmt in ast.walk(cls):
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Attribute
            ):
                if (
                    isinstance(stmt.target.value, ast.Name)
                    and stmt.target.value.id == "self"
                ):
                    note(stmt.target.attr, stmt.annotation)
        return attrs

    # -- scope analysis --------------------------------------------------

    def _owning_class_attrs(self, node: ast.AST) -> Dict[str, str]:
        cur: Optional[ast.AST] = node
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                return self._class_attrs.get(cur, {})
            cur = parent_of(cur)
        return {}

    def _is_set_expr(
        self, node: ast.AST, scope: _ScopeTypes, attrs: Dict[str, str]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in scope.set_names
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return attrs.get(node.attr) == "set"
            return False
        if isinstance(node, ast.Subscript):
            return self._is_dict_of_set_expr(node.value, scope, attrs)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, scope, attrs) or self._is_set_expr(
                node.right, scope, attrs
            )
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in (
                    "union",
                    "intersection",
                    "difference",
                    "symmetric_difference",
                    "copy",
                ) and self._is_set_expr(node.func.value, scope, attrs):
                    return True
                if method in ("get", "pop", "setdefault") and self._is_dict_of_set_expr(
                    node.func.value, scope, attrs
                ):
                    return True
        return False

    def _is_dict_of_set_expr(
        self, node: ast.AST, scope: _ScopeTypes, attrs: Dict[str, str]
    ) -> bool:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return attrs.get(node.attr) == "dict_of_set"
        return False

    # -- visitors --------------------------------------------------------

    def visit_FunctionDef(self, ctx: FileContext, node: ast.FunctionDef) -> None:
        self._check_scope(ctx, node)

    def visit_AsyncFunctionDef(
        self, ctx: FileContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._check_scope(ctx, node)

    def visit_Module(self, ctx: FileContext, node: ast.Module) -> None:
        self._check_scope(ctx, node)

    def _check_scope(self, ctx: FileContext, fn: ast.AST) -> None:
        if ctx.module is None:
            return
        attrs = self._owning_class_attrs(fn)
        scope = _ScopeTypes()

        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
                if arg.annotation is not None and _is_set_annotation(arg.annotation):
                    scope.mark(arg.arg, True)
            body = fn.body
        else:
            body = getattr(fn, "body", [])

        # Forward pass in statement order: assignments refine name types,
        # sinks are checked against the types known at that point.  Nested
        # function bodies are skipped -- they get their own scope visit.
        for stmt in body:
            self._walk_stmt(ctx, stmt, scope, attrs)

    def _walk_stmt(
        self, ctx: FileContext, stmt: ast.AST, scope: _ScopeTypes, attrs: Dict[str, str]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return

        if isinstance(stmt, ast.Assign):
            self._check_expr(ctx, stmt.value, scope, attrs)
            is_set = self._is_set_expr(stmt.value, scope, attrs)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    scope.mark(target.id, is_set)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._check_expr(ctx, stmt.value, scope, attrs)
            if isinstance(stmt.target, ast.Name):
                scope.mark(stmt.target.id, _is_set_annotation(stmt.annotation))
            return
        if isinstance(stmt, ast.AugAssign):
            self._check_expr(ctx, stmt.value, scope, attrs)
            return
        if isinstance(stmt, ast.For):
            self._check_iter(ctx, stmt.iter, scope, attrs)
            if not self._is_set_expr(stmt.iter, scope, attrs):
                self._check_expr(ctx, stmt.iter, scope, attrs)
            self._mark_loop_target(stmt, scope, attrs)
            for inner in stmt.body + stmt.orelse:
                self._walk_stmt(ctx, inner, scope, attrs)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._check_expr(ctx, stmt.test, scope, attrs)
            for inner in stmt.body + stmt.orelse:
                self._walk_stmt(ctx, inner, scope, attrs)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(ctx, item.context_expr, scope, attrs)
            for inner in stmt.body:
                self._walk_stmt(ctx, inner, scope, attrs)
            return
        if isinstance(stmt, ast.Try):
            for inner in (
                stmt.body
                + [s for h in stmt.handlers for s in h.body]
                + stmt.orelse
                + stmt.finalbody
            ):
                self._walk_stmt(ctx, inner, scope, attrs)
            return

        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._check_expr(ctx, child, scope, attrs)

    def _mark_loop_target(
        self, stmt: ast.For, scope: _ScopeTypes, attrs: Dict[str, str]
    ) -> None:
        """``for ids in <dict-of-set>.values()`` makes the target a set."""
        it = stmt.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and self._is_dict_of_set_expr(it.func.value, scope, attrs)
        ):
            if it.func.attr == "values" and isinstance(stmt.target, ast.Name):
                scope.mark(stmt.target.id, True)
            elif (
                it.func.attr == "items"
                and isinstance(stmt.target, ast.Tuple)
                and len(stmt.target.elts) == 2
                and isinstance(stmt.target.elts[1], ast.Name)
            ):
                scope.mark(stmt.target.elts[1].id, True)

    def _check_expr(
        self,
        ctx: FileContext,
        expr: ast.AST,
        scope: _ScopeTypes,
        attrs: Dict[str, str],
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda, ast.SetComp, ast.DictComp)):
                continue
            if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                # A comprehension handed straight to sorted()/len()/... is
                # order-insensitive regardless of what it iterates.
                if self._consumer_is_order_safe(node):
                    continue
                for gen in node.generators:
                    self._check_iter(ctx, gen.iter, scope, attrs)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("list", "tuple", "enumerate") and node.args:
                    if self._consumer_is_order_safe(node):
                        continue
                    self._check_iter(ctx, node.args[0], scope, attrs)

    @staticmethod
    def _consumer_is_order_safe(node: ast.AST) -> bool:
        parent = parent_of(node)
        if isinstance(parent, ast.Call):
            name = dotted_name(parent.func)
            if name in ORDER_SAFE_CONSUMERS:
                return True
        return False

    def _check_iter(
        self, ctx: FileContext, it: ast.AST, scope: _ScopeTypes, attrs: Dict[str, str]
    ) -> None:
        if self._is_set_expr(it, scope, attrs):
            desc = dotted_name(it) or "a set expression"
            ctx.report(
                self,
                it,
                f"iterating `{desc}` (a set) in an ordering-sensitive context",
            )


DETERMINISM_RULES = (
    UnseededRandomRule,
    WallClockRule,
    EnvReadRule,
    UnorderedIterationRule,
    IdOrderingRule,
)
