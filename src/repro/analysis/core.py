"""Core of the repo's AST-based invariant linter.

The framework is a *visitor pipeline*: each file is parsed **once**, every
registered rule declares the node types it cares about via ``visit_<Node>``
methods, and a single walk over the tree dispatches each node to every
interested rule.  Rules report :class:`Finding` objects through the
:class:`FileContext`; cross-module rules additionally accumulate *facts*
during the per-file pass and emit findings in a ``finalize`` step once every
file has been seen (see :mod:`repro.analysis.rules_contracts`).

Why a custom linter instead of flake8 plugins: the invariants being enforced
are repo-specific semantic contracts (bit-identical schedules, spawn-safe
picklability, policy fast-forward flags -- see ``docs/architecture.md``),
not style.  They need project knowledge (which packages are on the
simulation path, which classes cross process pipes, which functions are
hot), which lives in :mod:`repro.analysis.manifest`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.manifest import LintManifest

#: Finding severities, in gating order.  Both gate the exit code; the split
#: exists so report consumers can prioritise.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete location."""

    rule: str
    severity: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    hint: str = ""

    def render(self) -> str:
        tail = f"  (fix: {self.hint})" if self.hint else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}{tail}"

    def as_record(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def baseline_key(self, line_text: str) -> Tuple[str, str, str]:
        """Identity used by the grandfathering baseline.

        Keyed on the *content* of the flagged line rather than its number, so
        unrelated edits above a grandfathered finding do not un-grandfather
        it; see :mod:`repro.analysis.baseline`.
        """
        return (self.rule, self.path, line_text.strip())


class Rule:
    """Base class for one lint rule.

    Subclasses set ``rule_id``/``description`` (and optionally ``hint`` /
    ``severity``) and implement any number of ``visit_<NodeType>`` methods,
    each called as ``visit_X(ctx, node)`` during the single tree walk.
    ``begin_file``/``end_file`` bracket each file; ``finalize`` runs once
    after all files for cross-module rules.
    """

    rule_id: str = "X000"
    severity: str = "error"
    description: str = ""
    hint: str = ""

    def begin_file(self, ctx: "FileContext") -> None:
        return None

    def end_file(self, ctx: "FileContext") -> None:
        return None

    def finalize(self, project: "ProjectState") -> List[Finding]:
        return []


@dataclass
class ProjectState:
    """Facts accumulated across files for the cross-module ``finalize`` pass.

    ``policy_classes`` is filled by the contract rules' per-file visitors;
    ``root`` is the directory lint ran from (used to resolve
    ``docs/policies.md``).
    """

    root: Path
    manifest: LintManifest
    #: One entry per policy-like class seen: see rules_contracts.PolicyClassFact.
    policy_classes: List[object] = field(default_factory=list)


class FileContext:
    """Everything rules may consult about the file being linted."""

    def __init__(
        self,
        path: Path,
        rel: str,
        source: str,
        tree: Optional[ast.AST],
        manifest: LintManifest,
        project: ProjectState,
    ) -> None:
        self.path = path
        #: Repo-relative posix path ("src/repro/simulator/engine.py").
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.manifest = manifest
        self.project = project
        #: Dotted module name for files under ``src/`` ("repro.simulator.engine"),
        #: ``None`` for anything else (tests, tools).
        self.module = manifest.module_for(rel)
        self.findings: List[Finding] = []

    # ------------------------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def in_simulation_path(self) -> bool:
        return self.manifest.is_simulation_module(self.module)

    def report(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule.rule_id,
                severity=rule.severity,
                path=self.rel,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                hint=rule.hint if hint is None else hint,
            )
        )


class SyntaxErrorRule(Rule):
    """L100: the file does not parse.  Reported by the pipeline itself."""

    rule_id = "L100"
    description = "file failed to parse; nothing else can be checked"
    hint = "fix the syntax error"


def set_parents(tree: ast.AST) -> None:
    """Attach ``_lint_parent`` backrefs so rules can inspect usage context."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._lint_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_lint_parent", None)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Pipeline:
    """One-parse-per-file, N-rules dispatch.

    The dispatch table maps node types to the rules whose ``visit_<Node>``
    methods want them, so adding a rule never adds another tree walk.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules: List[Rule] = list(rules)
        self._dispatch: Dict[type, List[Tuple[Rule, str]]] = {}
        for rule in self.rules:
            for attr in dir(rule):
                if not attr.startswith("visit_"):
                    continue
                node_type = getattr(ast, attr[len("visit_"):], None)
                if node_type is None or not isinstance(node_type, type):
                    continue
                self._dispatch.setdefault(node_type, []).append((rule, attr))

    def run_file(
        self,
        path: Path,
        rel: str,
        source: str,
        manifest: LintManifest,
        project: ProjectState,
    ) -> FileContext:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            ctx = FileContext(path, rel, source, None, manifest, project)
            rule = SyntaxErrorRule()
            ctx.findings.append(
                Finding(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                    hint=rule.hint,
                )
            )
            return ctx

        set_parents(tree)
        ctx = FileContext(path, rel, source, tree, manifest, project)
        for rule in self.rules:
            rule.begin_file(ctx)
        for node in ast.walk(tree):
            handlers = self._dispatch.get(type(node))
            if not handlers:
                continue
            for rule, attr in handlers:
                getattr(rule, attr)(ctx, node)
        for rule in self.rules:
            rule.end_file(ctx)
        return ctx

    def finalize(self, project: ProjectState) -> List[Finding]:
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.finalize(project))
        return findings
