"""Inline suppressions: ``# repro-lint: disable=RULE[,RULE]``.

A suppression silences the named rules on its own line only (there is no
block form -- narrow scope keeps suppressions honest).  Every suppression
must actually suppress something: unused markers are themselves findings
(L101), so stale suppressions cannot accumulate as the code under them
changes.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from repro.analysis.core import Finding

SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)")


def _comment_tokens(source: str):
    """(line, text) for every real COMMENT token.

    Tokenizing (rather than regex-scanning raw lines) means a marker inside
    a string literal -- e.g. a lint-test fixture snippet -- is not a
    suppression in the file that embeds it.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        # Unparseable tail: the pipeline reports L100 for the file anyway;
        # comments before the error were already yielded.
        return


class FileSuppressions:
    """Per-file suppression table with usage tracking."""

    def __init__(self, rel: str, source: str) -> None:
        self.rel = rel
        #: line number -> set of rule ids suppressed there.
        self.by_line: Dict[int, Set[str]] = {}
        #: (line, rule) pairs that suppressed at least one finding.
        self.used: Set[Tuple[int, str]] = set()
        for lineno, text in _comment_tokens(source):
            match = SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            self.by_line.setdefault(lineno, set()).update(rules)

    def suppresses(self, finding: Finding) -> bool:
        rules = self.by_line.get(finding.line)
        if rules and finding.rule in rules:
            self.used.add((finding.line, finding.rule))
            return True
        return False

    def unused_findings(self) -> List[Finding]:
        out: List[Finding] = []
        for lineno in sorted(self.by_line):
            for rule in sorted(self.by_line[lineno]):
                if (lineno, rule) in self.used:
                    continue
                out.append(
                    Finding(
                        rule="L101",
                        severity="error",
                        path=self.rel,
                        line=lineno,
                        col=1,
                        message=f"suppression for {rule} does not match any finding",
                        hint="remove the stale # repro-lint: disable marker",
                    )
                )
        return out
