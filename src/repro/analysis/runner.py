"""Drives the pipeline over real files or in-memory fixture sources.

``lint_paths`` is what the CLI calls; ``lint_sources``/``lint_source`` lint
virtual ``{relative path: source}`` trees so the per-rule fixture tests can
exercise scope-sensitive rules (a fixture under
``src/repro/simulator/fake.py`` lands in simulation scope) without writing
bad code to disk where CI would lint it.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.core import Finding, Pipeline, ProjectState
from repro.analysis.manifest import LintManifest, default_manifest
from repro.analysis.suppressions import FileSuppressions


@dataclass
class LintResult:
    """Outcome of one lint run: gating findings + coverage counters."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _default_rules():
    from repro.analysis import ALL_RULES

    return [cls() for cls in ALL_RULES]


def discover_files(paths: Sequence[Path], root: Path) -> List[Path]:
    """Expand path args into a sorted, deduplicated list of ``.py`` files."""
    seen: List[Path] = []
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            parts = candidate.parts
            if "__pycache__" in parts or any(
                part.startswith(".") and part not in (".", "..") for part in parts
            ):
                continue
            if candidate.suffix == ".py" and candidate not in seen:
                seen.append(candidate)
    return seen


def changed_files_since(ref: str, root: Path) -> List[Path]:
    """Files changed since ``ref`` (``--diff`` mode), rename/delete-aware.

    Uses ``git diff --name-status -M``: deletions are skipped (nothing to
    lint), renames lint the *new* path.  Untracked files are included so a
    brand-new module cannot dodge the diff lint.
    """
    diff = subprocess.run(
        ["git", "diff", "--name-status", "-M", ref, "--", "*.py"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    )
    out: List[Path] = []
    for line in diff.stdout.splitlines():
        parts = line.split("\t")
        if not parts or not parts[0]:
            continue
        status = parts[0][0]
        if status == "D":
            continue
        # Renames/copies are "R<score>\told\tnew"; everything else "X\tpath".
        rel = parts[2] if status in ("R", "C") and len(parts) > 2 else parts[1]
        candidate = root / rel
        if candidate.suffix == ".py" and candidate.exists():
            out.append(candidate)
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    )
    for rel in untracked.stdout.splitlines():
        candidate = root / rel
        if candidate.suffix == ".py" and candidate.exists() and candidate not in out:
            out.append(candidate)
    return sorted(out)


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_sources(
    sources: Dict[str, str],
    root: Optional[Path] = None,
    manifest: Optional[LintManifest] = None,
    rules=None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint an in-memory ``{relative path: source}`` tree."""
    manifest = manifest or default_manifest()
    root = root or Path.cwd()
    pipeline = Pipeline(rules if rules is not None else _default_rules())
    project = ProjectState(root=root, manifest=manifest)
    result = LintResult()

    contexts = []
    suppressions: Dict[str, FileSuppressions] = {}
    line_cache: Dict[str, List[str]] = {}
    for rel in sorted(sources):
        source = sources[rel]
        ctx = pipeline.run_file(root / rel, rel, source, manifest, project)
        contexts.append(ctx)
        suppressions[rel] = FileSuppressions(rel, source)
        line_cache[rel] = ctx.lines
        result.files_checked += 1

    raw: List[Finding] = []
    for ctx in contexts:
        raw.extend(ctx.findings)
    raw.extend(pipeline.finalize(project))

    gating: List[Finding] = []
    for finding in raw:
        table = suppressions.get(finding.path)
        if table is not None and table.suppresses(finding):
            result.suppressed += 1
            continue
        lines = line_cache.get(finding.path, [])
        text = lines[finding.line - 1] if 1 <= finding.line <= len(lines) else ""
        if baseline is not None and baseline.contains(finding, text):
            result.baselined += 1
            continue
        gating.append(finding)

    for rel in sorted(suppressions):
        gating.extend(suppressions[rel].unused_findings())

    gating.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.findings = gating
    return result


def lint_source(
    source: str,
    virtual_path: str = "src/repro/simulator/fixture.py",
    manifest: Optional[LintManifest] = None,
    root: Optional[Path] = None,
    rules=None,
) -> List[Finding]:
    """Lint one in-memory snippet under a virtual path (test helper)."""
    return lint_sources(
        {virtual_path: source}, root=root, manifest=manifest, rules=rules
    ).findings


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    manifest: Optional[LintManifest] = None,
    baseline: Optional[Baseline] = None,
    rules=None,
) -> LintResult:
    """Lint files/directories on disk (the CLI entry path)."""
    root = root or Path.cwd()
    files = discover_files(paths, root)
    sources: Dict[str, str] = {}
    for path in files:
        rel = _relative(path, root)
        try:
            sources[rel] = path.read_text(encoding="utf-8")
        except OSError:
            # Unreadable file (permissions, raced delete): skip rather than
            # crash the whole run; --diff mode already filters deletions.
            continue
    return lint_sources(
        sources, root=root, manifest=manifest, rules=rules, baseline=baseline
    )
