"""CLI for the invariant linter: ``python -m repro.lint``.

Exit codes: 0 clean, 1 findings, 2 usage/environment error -- CI gates on
them directly.  ``--diff <ref>`` keeps the CI job O(changed files) as the
repo grows; ``--write-baseline`` exists for downstream adopters (this
repo's checked-in baseline is empty and must stay so).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.runner import (
    LintResult,
    changed_files_since,
    lint_paths,
)

DEFAULT_BASELINE = "tools/lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter: determinism (D1xx), picklability "
            "(P1xx), policy contracts (C1xx), hot-path hygiene (H1xx). "
            "See docs/static-analysis.md for the rule catalog."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--diff",
        metavar="REF",
        help="lint only files changed since the given git ref "
        "(renames follow the new path, deletions are skipped)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root paths are reported relative to (default: cwd)",
    )
    return parser


def _render_text(result: LintResult, stream) -> None:
    for finding in result.findings:
        print(finding.render(), file=stream)
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
    )
    extras: List[str] = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    print(summary, file=stream)


def _render_json(result: LintResult, stream) -> None:
    json.dump(
        {
            "findings": [f.as_record() for f in result.findings],
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
        },
        stream,
        indent=2,
    )
    print(file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root).resolve()

    baseline: Optional[Baseline] = None
    baseline_path = root / args.baseline
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    if args.diff:
        try:
            files = changed_files_since(args.diff, root)
        except subprocess.CalledProcessError as exc:
            stderr = (exc.stderr or "").strip()
            print(f"error: git diff against {args.diff!r} failed: {stderr}", file=sys.stderr)
            return 2
        # Restrict the diff set to the requested paths so
        # `--diff REF src/` does not drag in changed tooling files.
        wanted = [
            (p if Path(p).is_absolute() else root / p) for p in args.paths
        ]
        files = [
            f
            for f in files
            if any(
                f == w or w in f.parents for w in (p.resolve() for p in wanted)
            )
        ]
        if not files:
            print("0 finding(s) in 0 file(s) (no changed files)", file=sys.stdout)
            return 0
        result = lint_paths(files, root=root, baseline=baseline)
    else:
        result = lint_paths(
            [Path(p) for p in args.paths], root=root, baseline=baseline
        )

    if args.write_baseline:
        pairs = []
        for finding in result.findings:
            source_path = root / finding.path
            try:
                lines = source_path.read_text(encoding="utf-8").splitlines()
                text = lines[finding.line - 1] if finding.line <= len(lines) else ""
            except OSError:
                text = ""
            pairs.append((finding, text))
        Baseline.from_findings(pairs).dump(baseline_path)
        print(
            f"wrote {len(pairs)} finding(s) to {baseline_path}", file=sys.stdout
        )
        return 0

    if args.format == "json":
        _render_json(result, sys.stdout)
    else:
        _render_text(result, sys.stdout)
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
