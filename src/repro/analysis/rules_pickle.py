"""(P) Picklability / spawn-safety rules.

The parallel federation backend ships :class:`~repro.core.job.Job` /
:class:`~repro.core.job_state.JobState` snapshots, shard factories, scenario
timelines, and :class:`~repro.federation.router.ShardViewSummary` digests
across ``multiprocessing`` (spawn) pipes and into checkpoint files.  A
lambda, open handle, lock, or weakref growing into one of those classes
breaks pickling only at runtime, on the parallel path, under load -- these
rules catch it at diff time instead.

Which classes are "pipe-crossing" is declared in the manifest's
``PICKLE_REGISTRY``; a class with a matching ``__getstate__`` **and**
``__setstate__`` pair may hold transient unpicklables (it promised to strip
them), so P101 only fires when the pair is absent and P102 fires when the
pair is half-written.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional

from repro.analysis.core import FileContext, Rule, dotted_name, parent_of

#: Constructors whose results never survive a pickle round-trip.
HAZARD_CALLS: FrozenSet[str] = frozenset(
    {
        "open",
        "io.open",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "weakref.ref",
        "weakref.proxy",
        "weakref.WeakSet",
        "weakref.WeakKeyDictionary",
        "weakref.WeakValueDictionary",
    }
)


def _enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    cur = parent_of(node)
    while cur is not None:
        if isinstance(cur, ast.ClassDef):
            return cur
        cur = parent_of(cur)
    return None


def _has_state_pair(cls: ast.ClassDef) -> bool:
    names = {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return "__getstate__" in names and "__setstate__" in names


def _stored_in_instance_state(node: ast.AST) -> bool:
    """True when ``node`` is the value of ``self.x = ...`` / a class attr.

    Transient uses (a sort-key lambda, a lock acquired and dropped inside a
    method) do not land in instance state and are not pickle hazards.
    """
    parent = parent_of(node)
    if isinstance(parent, (ast.Assign, ast.AnnAssign)):
        targets = (
            parent.targets if isinstance(parent, ast.Assign) else [parent.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id == "self":
                    return True
            if isinstance(target, ast.Name):
                # Class-level assignment (directly in the class body).
                grand = parent_of(parent)
                if isinstance(grand, ast.ClassDef):
                    return True
    if isinstance(parent, ast.keyword) and parent.arg == "default":
        call = parent_of(parent)
        if isinstance(call, ast.Call) and dotted_name(call.func) in (
            "field",
            "dataclasses.field",
        ):
            return True
    return False


class PickleHazardRule(Rule):
    """P101: unpicklable state growing into a pipe-crossing class.

    Fires on lambdas stored into instance/class state and on any
    lock/weakref/open-handle construction anywhere in a registry class,
    unless the class carries a ``__getstate__``/``__setstate__`` pair that
    promises to strip the transient state before pickling.
    """

    rule_id = "P101"
    description = (
        "pipe-crossing class holds a lambda/open handle/lock/weakref "
        "without a __getstate__/__setstate__ pair"
    )
    hint = (
        "add a __getstate__/__setstate__ pair that drops the transient "
        "state, or keep the state out of the class"
    )

    def _applicable_class(
        self, ctx: FileContext, node: ast.AST
    ) -> Optional[ast.ClassDef]:
        cls = _enclosing_class(node)
        if cls is None:
            return None
        if not ctx.manifest.pickle_registry_class(ctx.rel, cls.name):
            return None
        if _has_state_pair(cls):
            return None
        return cls

    def visit_Lambda(self, ctx: FileContext, node: ast.Lambda) -> None:
        cls = self._applicable_class(ctx, node)
        if cls is None:
            return
        if _stored_in_instance_state(node):
            ctx.report(
                self,
                node,
                f"lambda stored in state of pipe-crossing class `{cls.name}` "
                "(lambdas cannot be pickled)",
            )

    def visit_Call(self, ctx: FileContext, node: ast.Call) -> None:
        cls = self._applicable_class(ctx, node)
        if cls is None:
            return
        name = dotted_name(node.func)
        if name in HAZARD_CALLS:
            ctx.report(
                self,
                node,
                f"`{name}()` inside pipe-crossing class `{cls.name}` without "
                "a __getstate__/__setstate__ pair",
            )


class HalfStatePairRule(Rule):
    """P102: a registry class defining only one of the state pair.

    A lone ``__getstate__`` silently changes what pickles *out* while
    ``__init__``-less unpickling restores raw dicts; a lone ``__setstate__``
    never runs against the default state.  Either half alone is a latent
    corruption, so the pair must land together.
    """

    rule_id = "P102"
    description = "__getstate__ without __setstate__ (or vice versa)"
    hint = "define both halves of the pair"

    def visit_ClassDef(self, ctx: FileContext, node: ast.ClassDef) -> None:
        if not ctx.manifest.pickle_registry_class(ctx.rel, node.name):
            return
        names = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        has_get = "__getstate__" in names
        has_set = "__setstate__" in names
        if has_get != has_set:
            present = "__getstate__" if has_get else "__setstate__"
            missing = "__setstate__" if has_get else "__getstate__"
            ctx.report(
                self,
                node,
                f"`{node.name}` defines {present} but not {missing}",
            )


PICKLE_RULES = (PickleHazardRule, HalfStatePairRule)
