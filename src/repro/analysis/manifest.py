"""The per-package manifest: repo knowledge the generic rules consult.

The linter's rules are generic AST checks; everything repo-specific --
which packages sit on the simulation path, which files are allowed to read
wall-clock and for what, which classes cross process pipes, which functions
are hot -- is declared here so adding an exception is a reviewed one-line
manifest change rather than an inline suppression scattered in code.

Tests construct custom :class:`LintManifest` instances to lint fixture
snippets under virtual paths; ``default_manifest()`` is what the CLI uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

#: Packages whose code executes inside the simulated clock: reading
#: wall-clock or process environment here breaks replay determinism.
#: (telemetry/bench/dashboard/trace/experiments are deliberately absent --
#: they wrap runs and may read the real clock.)
SIMULATION_PACKAGES: Tuple[str, ...] = (
    "repro.core",
    "repro.cluster",
    "repro.simulator",
    "repro.policies",
    "repro.scenarios",
    "repro.federation",
    "repro.runtime",
    "repro.workloads",
    "repro.metrics",
    "repro.baselines",
    "repro.synthesizer",
)

#: (path suffix, rule id) -> callees that file may legitimately use.
#: Wall-clock reads on the simulation path that are *measurement*, not
#: schedule input: bench wall-time accounting in the engines and the
#: parallel supervisor's liveness heartbeats.  Each entry names the exact
#: callees so a new clock read in the same file still gets flagged.
WALLCLOCK_ALLOWLIST: Dict[Tuple[str, str], FrozenSet[str]] = {
    # Engine wall-time accounting around the round loop (reported in
    # BENCH_core.json; never fed back into the schedule).
    ("repro/simulator/engine.py", "D102"): frozenset({"time.perf_counter"}),
    # Serial federation engine: same wall-time bookkeeping.
    ("repro/federation/engine.py", "D102"): frozenset({"time.perf_counter"}),
    # Parallel workers: monotonic supervisor heartbeats/timeouts and
    # perf_counter wall-time breakdowns (both excluded from parity by
    # NONDETERMINISTIC_KINDS).
    ("repro/federation/parallel.py", "D102"): frozenset(
        {"time.perf_counter", "time.monotonic"}
    ),
    # Scenario-matrix CLI entry point: stamps wall-clock `started_at` into
    # report metadata (never consumed by the simulation itself).
    ("repro/scenarios/__main__.py", "D102"): frozenset({"time.time"}),
}

#: Classes that cross process pipes (spawned federation workers, checkpoint
#: snapshots) and therefore must stay pickle-clean: no lambdas, open
#: handles, locks, or weakrefs in instance state without a
#: ``__getstate__``/``__setstate__`` pair.  class name -> defining file.
PICKLE_REGISTRY: Dict[str, str] = {
    "Job": "repro/core/job.py",
    "JobState": "repro/core/job_state.py",
    "ShardViewSummary": "repro/federation/router.py",
    "UniformShardFactory": "repro/federation/engine.py",
    "ScenarioManagerFactory": "repro/federation/engine.py",
    "TimelineClusterManager": "repro/scenarios/timeline.py",
    "ClusterEvent": "repro/scenarios/events.py",
    "NodeFailureEvent": "repro/scenarios/events.py",
    "NodeRecoveryEvent": "repro/scenarios/events.py",
    "ScaleOutEvent": "repro/scenarios/events.py",
    "ScaleInEvent": "repro/scenarios/events.py",
    "GpuUpgradeEvent": "repro/scenarios/events.py",
}

#: Files allowed to define ``on_progress`` overrides.  The registry fans
#: progress writes out only to *overriding* observers, so every override
#: puts two extra dispatches per running job per round on the hot path --
#: the base definition itself is the one documented exception.
ON_PROGRESS_ALLOWED: Tuple[str, ...] = ("repro/core/job_state.py",)

#: Functions that are hot even without a ``# hot-path`` marker, as
#: ``<path suffix>::<qualified name>``.  H102 bans logging/telemetry emit
#: calls inside these and inside any function whose ``def`` line (or the
#: line above it) carries a ``# hot-path`` comment.
HOT_PATH_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "repro/core/job.py::_StatusField.__set__",
        "repro/core/job.py::_ProgressField.__set__",
        "repro/core/job_state.py::JobState._notify_progress",
        "repro/core/job_state.py::JobState._reindex_status",
        "repro/simulator/execution.py::ExecutionModel.advance",
        "repro/simulator/execution.py::ExecutionModel.advance_steady",
        "repro/simulator/execution.py::ExecutionModel.steady_scan",
        "repro/simulator/execution.py::ExecutionModel.advance_steady_bulk",
        # _append_records is deliberately absent: it *is* the batched
        # round-record choke point, so telemetry emission belongs there.
        "repro/simulator/event_core.py::EventCore._completion_event_round",
        "repro/simulator/event_core.py::EventCore._rounds_until",
    }
)

#: Where the policy reference doc lives (for C103) and which package
#: prefixes hold registry policies (for the C rules' class discovery).
POLICY_DOC_PATH = "docs/policies.md"
POLICY_PACKAGE_PREFIXES: Tuple[str, ...] = (
    "repro.policies",
    "repro.synthesizer",
)

#: Base-class names that mark a class as part of the policy registry, and
#: which contract family applies to it.
SCHEDULING_POLICY_BASES: FrozenSet[str] = frozenset({"SchedulingPolicy"})
OTHER_POLICY_BASES: FrozenSet[str] = frozenset(
    {"AdmissionPolicy", "PlacementPolicy", "TerminationPolicy", "Router"}
)


@dataclass(frozen=True)
class LintManifest:
    """Bundles the repo knowledge above; tests swap in custom instances."""

    simulation_packages: Tuple[str, ...] = SIMULATION_PACKAGES
    wallclock_allowlist: Dict[Tuple[str, str], FrozenSet[str]] = field(
        default_factory=lambda: dict(WALLCLOCK_ALLOWLIST)
    )
    pickle_registry: Dict[str, str] = field(
        default_factory=lambda: dict(PICKLE_REGISTRY)
    )
    on_progress_allowed: Tuple[str, ...] = ON_PROGRESS_ALLOWED
    hot_path_functions: FrozenSet[str] = HOT_PATH_FUNCTIONS
    policy_doc_path: str = POLICY_DOC_PATH
    policy_package_prefixes: Tuple[str, ...] = POLICY_PACKAGE_PREFIXES

    # ------------------------------------------------------------------

    def module_for(self, rel: str) -> Optional[str]:
        """Dotted module for a repo-relative path, ``None`` outside ``src/``.

        Virtual fixture paths used by tests follow the same convention, so
        ``"src/repro/simulator/fake.py"`` lands in simulation scope.
        """
        parts = rel.replace("\\", "/").split("/")
        if "src" in parts:
            parts = parts[parts.index("src") + 1 :]
        if not parts or parts[0] != "repro" or not parts[-1].endswith(".py"):
            return None
        parts[-1] = parts[-1][: -len(".py")]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def is_simulation_module(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.simulation_packages
        )

    def wallclock_allowed(self, rel: str, rule_id: str, callee: str) -> bool:
        rel = rel.replace("\\", "/")
        for (suffix, rule), callees in sorted(self.wallclock_allowlist.items()):
            if rule == rule_id and rel.endswith(suffix) and callee in callees:
                return True
        return False

    def pickle_registry_class(self, rel: str, class_name: str) -> bool:
        expected = self.pickle_registry.get(class_name)
        return expected is not None and rel.replace("\\", "/").endswith(expected)

    def on_progress_override_allowed(self, rel: str) -> bool:
        rel = rel.replace("\\", "/")
        return any(rel.endswith(suffix) for suffix in self.on_progress_allowed)

    def is_hot_path_function(self, rel: str, qualname: str) -> bool:
        rel = rel.replace("\\", "/")
        key_tail = f"::{qualname}"
        return any(
            rel.endswith(entry.split("::", 1)[0]) and entry.endswith(key_tail)
            for entry in sorted(self.hot_path_functions)
        )

    def is_policy_module(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.policy_package_prefixes
        )


def default_manifest() -> LintManifest:
    return LintManifest()
