"""repro.analysis -- the repo's AST-based invariant linter.

``python -m repro.lint`` is the CLI front door; this package holds the
framework (:mod:`~repro.analysis.core`), the repo-knowledge manifest
(:mod:`~repro.analysis.manifest`), and the rule families:

* **D** determinism (:mod:`~repro.analysis.rules_determinism`)
* **P** picklability / spawn-safety (:mod:`~repro.analysis.rules_pickle`)
* **C** policy-contract conformance (:mod:`~repro.analysis.rules_contracts`)
* **H** hot-path hygiene (:mod:`~repro.analysis.rules_hotpath`)

plus the pipeline-level pseudo-rules **L100** (syntax error) and **L101**
(unused suppression).  See ``docs/static-analysis.md`` for the catalog.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.analysis.core import Finding, Pipeline, Rule, SyntaxErrorRule
from repro.analysis.manifest import LintManifest, default_manifest
from repro.analysis.rules_contracts import CONTRACT_RULES
from repro.analysis.rules_determinism import DETERMINISM_RULES
from repro.analysis.rules_hotpath import HOTPATH_RULES
from repro.analysis.rules_pickle import PICKLE_RULES
from repro.analysis.runner import (
    LintResult,
    lint_paths,
    lint_source,
    lint_sources,
)

#: Every registered rule class, in reporting order.  Adding a rule means
#: appending it here, documenting it in docs/static-analysis.md (CI's
#: check_docs.py cross-checks the two), and adding a fixture test.
ALL_RULES: Tuple[Type[Rule], ...] = (
    DETERMINISM_RULES + PICKLE_RULES + CONTRACT_RULES + HOTPATH_RULES
)


def rule_catalog() -> Dict[str, str]:
    """rule id -> one-line description, including pipeline pseudo-rules."""
    catalog: Dict[str, str] = {
        cls.rule_id: cls.description for cls in ALL_RULES
    }
    catalog[SyntaxErrorRule.rule_id] = SyntaxErrorRule.description
    catalog["L101"] = "suppression marker does not match any finding"
    return catalog


__all__ = [
    "ALL_RULES",
    "Finding",
    "LintManifest",
    "LintResult",
    "Pipeline",
    "Rule",
    "default_manifest",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "rule_catalog",
]
