"""(C) Policy-contract conformance rules (cross-module pass).

The simulator's event-skipping fast-forward trusts three class-level flags
(``supports_fast_forward`` / ``steady_state_safe`` /
``next_policy_event_time`` -- see ``docs/architecture.md``): a
mis-declaration does not crash, it silently skips rounds the policy needed
and corrupts the schedule.  These rules resolve the policy registry
statically -- every class subclassing one of the policy bases under the
policy packages -- and check the declarations are explicit (C101), honest
(C102), and documented (C103).

Collection happens during the per-file pass (:class:`ContractCollector`
appends one :class:`PolicyClassFact` per policy class); the checks run in
``finalize`` once the whole registry has been seen.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.core import Finding, FileContext, ProjectState, Rule
from repro.analysis.manifest import OTHER_POLICY_BASES, SCHEDULING_POLICY_BASES

#: Methods whose bodies C102 scans for per-round mutation.
DECISION_METHODS = ("schedule", "accept", "place", "should_terminate", "route")


@dataclass(frozen=True)
class PolicyClassFact:
    """Everything the finalize checks need to know about one policy class."""

    rel: str
    line: int
    name: str
    module: str
    #: Last components of the base names ("SchedulingPolicy", ...).
    bases: Tuple[str, ...]
    declares_next_event: bool
    declares_supports_ff: bool
    declares_steady_safe: bool
    steady_safe_true: bool
    #: ``(method, line, "self.attr")`` for each direct self-mutation inside a
    #: decision method body.
    decision_mutations: Tuple[Tuple[str, int, str], ...] = ()

    @property
    def is_scheduling(self) -> bool:
        return any(b in SCHEDULING_POLICY_BASES for b in self.bases)

    @property
    def is_router(self) -> bool:
        return "Router" in self.bases


def _base_names(node: ast.ClassDef) -> Tuple[str, ...]:
    names: List[str] = []
    for base in node.bases:
        while isinstance(base, ast.Subscript):  # Generic[...] style
            base = base.value
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return tuple(names)


def _class_flag(node: ast.ClassDef, flag: str) -> Tuple[bool, Optional[bool]]:
    """(declared, constant value if literal True/False) for a class-body flag."""
    for stmt in node.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == flag:
                if isinstance(value, ast.Constant) and isinstance(value.value, bool):
                    return True, value.value
                return True, None
    return False, None


def _decision_mutations(node: ast.ClassDef) -> Tuple[Tuple[str, int, str], ...]:
    """Direct ``self.x = / self.x[k] = / self.x += / del self.x`` writes
    inside decision-method bodies (helper methods are out of scope -- see
    the C102 docstring for the limitation)."""
    out: List[Tuple[str, int, str]] = []
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name not in DECISION_METHODS:
            continue
        for sub in ast.walk(stmt):
            targets: List[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            elif isinstance(sub, ast.Delete):
                targets = sub.targets
            for target in targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    out.append((stmt.name, sub.lineno, f"self.{base.attr}"))
    return tuple(out)


class ContractCollector(Rule):
    """C101 + the shared fact collector.

    C101: every scheduling policy in the registry must *explicitly* declare
    its fast-forward contract -- define ``next_policy_event_time``, or
    assign ``supports_fast_forward`` / ``steady_state_safe`` in the class
    body.  Inheriting the base defaults silently is how a policy ends up
    fast-forwarded under the wrong assumptions; the declaration is the
    audit trail.
    """

    rule_id = "C101"
    description = (
        "scheduling policy does not explicitly declare its fast-forward "
        "contract (next_policy_event_time / supports_fast_forward / "
        "steady_state_safe)"
    )
    hint = (
        "declare the audited contract explicitly in the class body, e.g. "
        "`steady_state_safe = False`"
    )

    def visit_ClassDef(self, ctx: FileContext, node: ast.ClassDef) -> None:
        if ctx.module is None:
            return
        bases = _base_names(node)
        known = SCHEDULING_POLICY_BASES | OTHER_POLICY_BASES
        if not any(b in known for b in bases):
            return
        in_policy_pkg = ctx.manifest.is_policy_module(ctx.module)
        if not in_policy_pkg and "Router" not in bases:
            return
        method_names = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        declares_sff, _ = _class_flag(node, "supports_fast_forward")
        declares_sss, sss_value = _class_flag(node, "steady_state_safe")
        ctx.project.policy_classes.append(
            PolicyClassFact(
                rel=ctx.rel,
                line=node.lineno,
                name=node.name,
                module=ctx.module,
                bases=bases,
                declares_next_event="next_policy_event_time" in method_names,
                declares_supports_ff=declares_sff,
                declares_steady_safe=declares_sss,
                steady_safe_true=bool(sss_value),
                decision_mutations=_decision_mutations(node),
            )
        )

    def finalize(self, project: ProjectState) -> List[Finding]:
        findings: List[Finding] = []
        for fact in project.policy_classes:
            if not fact.is_scheduling:
                continue
            if fact.name.startswith("_"):
                continue
            if (
                fact.declares_next_event
                or fact.declares_supports_ff
                or fact.declares_steady_safe
            ):
                continue
            findings.append(
                Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=fact.rel,
                    line=fact.line,
                    col=1,
                    message=(
                        f"scheduling policy `{fact.name}` inherits the "
                        "fast-forward contract implicitly; declare it"
                    ),
                    hint=self.hint,
                )
            )
        return findings


class SteadyStateMutationRule(Rule):
    """C102: ``steady_state_safe = True`` must mean what it says.

    A steady-state-safe policy promises its decisions are reproducible from
    the visible state, so the engine may skip invoking it across steady
    strides.  Direct ``self.*`` writes inside its decision methods are
    per-round mutable captures that break that promise.  Known limitation:
    only *direct* assignments in the decision-method body are seen --
    mutation routed through helper methods (the audited memo-refresh idiom
    in gavel/tiresias) is trusted.
    """

    rule_id = "C102"
    description = (
        "steady_state_safe=True policy mutates self inside a decision "
        "method (per-round mutable capture)"
    )
    hint = (
        "drop the flag, or move the state behind an observer/index that "
        "updates on events rather than per decision"
    )

    def finalize(self, project: ProjectState) -> List[Finding]:
        findings: List[Finding] = []
        for fact in project.policy_classes:
            if not fact.steady_safe_true:
                continue
            for method, line, attr in fact.decision_mutations:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        severity=self.severity,
                        path=fact.rel,
                        line=line,
                        col=1,
                        message=(
                            f"`{fact.name}.{method}` assigns `{attr}` while "
                            "declaring steady_state_safe=True"
                        ),
                        hint=self.hint,
                    )
                )
        return findings


class PolicyDocRule(Rule):
    """C103: every registered policy appears in ``docs/policies.md``.

    The policy reference is the contract users pick policies by; a policy
    missing from it is unreviewable.  Scope: concrete classes under
    ``repro.policies`` plus federation routers.  Skipped silently when the
    doc file is absent (linting a fixture tree) -- the CLI always runs from
    the repo root where it exists.
    """

    rule_id = "C103"
    description = "registered policy class is missing from docs/policies.md"
    hint = "add a row for the class to docs/policies.md"

    def finalize(self, project: ProjectState) -> List[Finding]:
        doc_path = project.root / project.manifest.policy_doc_path
        try:
            doc_text = doc_path.read_text(encoding="utf-8")
        except OSError:
            return []
        findings: List[Finding] = []
        for fact in project.policy_classes:
            if fact.name.startswith("_"):
                continue
            in_scope = fact.module.startswith("repro.policies") or fact.is_router
            if not in_scope:
                continue
            if fact.name in doc_text:
                continue
            findings.append(
                Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=fact.rel,
                    line=fact.line,
                    col=1,
                    message=(
                        f"policy class `{fact.name}` is not documented in "
                        f"{project.manifest.policy_doc_path}"
                    ),
                    hint=self.hint,
                )
            )
        return findings


CONTRACT_RULES = (ContractCollector, SteadyStateMutationRule, PolicyDocRule)
