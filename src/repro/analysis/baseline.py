"""The grandfathering baseline: known findings that do not gate (yet).

The baseline exists so the linter can be adopted mid-project without a
flag-day: pre-existing findings are checked in (``tools/lint_baseline.json``),
new code gates immediately, and the baseline only ever shrinks.  **The
checked-in baseline of this repo is empty** -- every true positive found at
introduction time was fixed in the same PR -- and the CI job keeps it that
way; the machinery stays because downstream forks adopting new rules need
the ramp.

Entries are keyed on ``(rule, path, stripped line text)`` rather than line
numbers, so edits elsewhere in a file do not resurrect grandfathered
findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Set, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1


class Baseline:
    """A set of grandfathered finding keys, JSON-(de)serializable."""

    def __init__(self, keys: Set[Tuple[str, str, str]] = None) -> None:
        self.keys: Set[Tuple[str, str, str]] = set(keys or ())

    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        version = int(data.get("version", 0))
        if version > BASELINE_VERSION:
            raise ValueError(
                f"baseline version {version} is newer than supported "
                f"{BASELINE_VERSION}"
            )
        keys = {
            (entry["rule"], entry["path"], entry["content"])
            for entry in data.get("findings", [])
        }
        return cls(keys)

    def dump(self, path: Path) -> None:
        findings = [
            {"rule": rule, "path": rel, "content": content}
            for rule, rel, content in sorted(self.keys)
        ]
        path.write_text(
            json.dumps({"version": BASELINE_VERSION, "findings": findings}, indent=2)
            + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------

    def contains(self, finding: Finding, line_text: str) -> bool:
        return finding.baseline_key(line_text) in self.keys

    @classmethod
    def from_findings(
        cls, findings: List[Tuple[Finding, str]]
    ) -> "Baseline":
        """Build a baseline grandfathering ``(finding, line text)`` pairs."""
        return cls({f.baseline_key(text) for f, text in findings})
