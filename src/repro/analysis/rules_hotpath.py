"""(H) Hot-path hygiene rules.

The engine's per-round cost story (207 -> 7.9k rounds/s) depends on two
disciplines: the progress fan-out only dispatches to observers that
*override* ``on_progress`` (so observers that don't, cost nothing -- H101
keeps it that way), and the innermost accounting functions stay free of
logging/telemetry emission (H102).  Hot functions are marked either with a
``# hot-path`` comment on (or immediately above) the ``def`` line, or by
listing ``<file>::<Qual.name>`` in the manifest's ``HOT_PATH_FUNCTIONS``.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional

from repro.analysis.core import FileContext, Rule, dotted_name, parent_of

#: Call patterns banned inside hot functions: stdout, logging, warnings,
#: and telemetry emission (``*.emit(...)`` is the TraceRecorder hot call).
BANNED_CALL_NAMES: FrozenSet[str] = frozenset({"print"})
BANNED_CALL_PREFIXES = ("logging.", "logger.", "log.", "warnings.")
BANNED_METHOD_NAMES: FrozenSet[str] = frozenset(
    {"emit", "debug", "info", "warning", "error", "critical", "exception", "log"}
)
#: Receivers whose methods above count as emission (``self.logger.info``,
#: ``self.recorder.emit``, bare ``logger.debug`` ...).
EMITTER_RECEIVER_HINTS = ("logger", "logging", "log", "recorder", "warnings")


def _qualname(fn: ast.AST) -> str:
    parts: List[str] = [getattr(fn, "name", "<lambda>")]
    cur: Optional[ast.AST] = parent_of(fn)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            parts.append(cur.name)
        cur = parent_of(cur)
    return ".".join(reversed(parts))


def _has_hot_marker(ctx: FileContext, fn: ast.AST) -> bool:
    line = getattr(fn, "lineno", 0)
    for candidate in (line, line - 1):
        if "# hot-path" in ctx.line_text(candidate):
            return True
    # Decorated defs: lineno points at the def, markers may sit above the
    # first decorator.
    decorators = getattr(fn, "decorator_list", [])
    if decorators:
        first = min(d.lineno for d in decorators)
        if "# hot-path" in ctx.line_text(first - 1):
            return True
    return False


class OnProgressOverrideRule(Rule):
    """H101: ``on_progress`` overrides outside the documented exceptions.

    ``JobState``'s registry fans progress writes out *only* to observers
    that override ``on_progress``; every override therefore re-adds two
    dispatches per running job per round to the hottest loop in the system.
    New overrides must be a reviewed manifest change, not a drive-by.
    """

    rule_id = "H101"
    description = (
        "on_progress override outside the documented exceptions re-enters "
        "the per-round hot path"
    )
    hint = (
        "consume job lifecycle events (on_status_change) instead, or add "
        "the file to ON_PROGRESS_ALLOWED with a rationale"
    )

    def visit_FunctionDef(self, ctx: FileContext, node: ast.FunctionDef) -> None:
        if node.name != "on_progress":
            return
        if ctx.module is None:
            return
        if not isinstance(parent_of(node), ast.ClassDef):
            return
        if ctx.manifest.on_progress_override_allowed(ctx.rel):
            return
        ctx.report(
            self,
            node,
            f"`{_qualname(node)}` overrides on_progress outside the "
            "documented exceptions",
        )


class HotPathEmitRule(Rule):
    """H102: logging/telemetry emission inside hot functions.

    A single ``logger.debug`` in ``ExecutionModel.advance`` costs a frame
    plus string formatting per running job per round even when the handler
    is disabled.  Telemetry for hot events belongs at the round-record
    choke point, not inside the accounting itself.
    """

    rule_id = "H102"
    description = (
        "logging/telemetry emit call inside a function marked # hot-path "
        "or listed in the hot-path manifest"
    )
    hint = (
        "move the emission to the round-record choke point (outside the "
        "hot function)"
    )

    def visit_FunctionDef(self, ctx: FileContext, node: ast.FunctionDef) -> None:
        self._check(ctx, node)

    def visit_AsyncFunctionDef(
        self, ctx: FileContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._check(ctx, node)

    def _check(self, ctx: FileContext, fn: ast.AST) -> None:
        if ctx.module is None:
            return
        qual = _qualname(fn)
        hot = _has_hot_marker(ctx, fn) or ctx.manifest.is_hot_path_function(
            ctx.rel, qual
        )
        if not hot:
            return
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not fn:
                # Nested defs are usually deferred work; they get their own
                # marker if they are hot.
                continue
            if isinstance(sub, ast.Call) and self._is_emission(sub):
                name = dotted_name(sub.func) or "<call>"
                ctx.report(
                    self,
                    sub,
                    f"`{name}()` inside hot-path function `{qual}`",
                )

    @staticmethod
    def _is_emission(call: ast.Call) -> bool:
        name = dotted_name(call.func)
        if name is None:
            return False
        if name in BANNED_CALL_NAMES:
            return True
        if any(name.startswith(prefix) for prefix in BANNED_CALL_PREFIXES):
            return True
        if isinstance(call.func, ast.Attribute) and call.func.attr in BANNED_METHOD_NAMES:
            parts = name.split(".")
            receiver = parts[-2] if len(parts) >= 2 else ""
            receiver = receiver.lstrip("_")
            if receiver in EMITTER_RECEIVER_HINTS or (
                len(parts) >= 3 and parts[-2].lstrip("_") in EMITTER_RECEIVER_HINTS
            ):
                return True
            if call.func.attr == "emit":
                # Any ``x.emit(...)`` counts: the only emit in the codebase
                # is the TraceRecorder's, and that must stay off hot paths.
                return True
        return False


HOTPATH_RULES = (OnProgressOverrideRule, HotPathEmitRule)
