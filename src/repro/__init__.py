"""repro: a reproduction of Blox, a modular toolkit for deep learning schedulers.

The package mirrors the structure described in the Blox paper (EuroSys '24):

* :mod:`repro.core` -- the seven scheduler abstractions, the ``JobState`` and
  ``ClusterState`` shared data structures and the composable scheduling loop.
* :mod:`repro.cluster` -- the cluster substrate (nodes, GPUs, topology).
* :mod:`repro.workloads` -- model profiles, trace schema and trace generators
  (Philly-like, Pollux-like, Tiresias-like, bursty).
* :mod:`repro.policies` -- concrete instances of the admission, scheduling,
  placement and termination abstractions (FIFO, LAS, SRTF, Tiresias, Optimus,
  Gavel, Pollux, Themis, Synergy, ...).
* :mod:`repro.simulator` -- the round-based simulation engine and execution
  model shared by all policies.
* :mod:`repro.runtime` -- the deployment-path components (CentralScheduler,
  WorkerManager, BloxClientLibrary) with central and optimistic lease renewal.
* :mod:`repro.synthesizer` -- the automatic scheduler synthesizer.
* :mod:`repro.experiments` -- one runner per table/figure of the paper.
"""

from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.core.cluster_state import ClusterState
from repro.core.blox_manager import BloxManager
from repro.simulator.engine import Simulator, SimulationResult
from repro.cluster.builder import build_cluster

__version__ = "0.1.0"

__all__ = [
    "Job",
    "JobStatus",
    "JobState",
    "ClusterState",
    "BloxManager",
    "Simulator",
    "SimulationResult",
    "build_cluster",
    "__version__",
]
