"""Philly-like workload trace generator.

The Blox evaluation replays the public Microsoft Philly trace with Poisson
arrivals (rate lambda controls cluster load) and randomly maps each job to one
of the Table-2 models.  The production trace itself is not redistributable, so
this generator synthesises a trace with the same statistics the schedulers are
sensitive to, following the published Philly analysis:

* Poisson arrival process with a configurable ``jobs_per_hour`` rate,
* a GPU-demand mix dominated by single-GPU jobs with a tail of 8/16-GPU jobs,
* heavy-tailed (log-normal) job durations with a median of a couple of hours
  and a long tail of multi-day jobs,
* per-job model assignment drawn uniformly from the Table-2 workloads, which
  supplies per-iteration time, scaling, placement-sensitivity and CPU/memory
  profiles.

Every draw is made from a seeded ``random.Random`` so traces are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence

from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.workloads.models import PHILLY_MODELS, ModelProfile, get_model
from repro.workloads.trace import Trace

#: Fraction of jobs requesting each GPU count (mirrors the Philly analysis:
#: most jobs are single-GPU, a small tail is heavily distributed).
DEFAULT_GPU_DEMAND_MIX: Dict[int, float] = {1: 0.65, 2: 0.12, 4: 0.12, 8: 0.08, 16: 0.03}

#: Order in which workloads gain a consolidation preference as the workload mix
#: evolves (§4.3, Fig. 11).  The first five are the models whose tensor-size
#: skew exceeds the Tiresias heuristic's threshold; the remaining three are the
#: ones the heuristic misses when they too become placement sensitive.
CONSOLIDATION_PREFERENCE_ORDER: Sequence[str] = (
    "recoder",
    "vgg16",
    "lstm",
    "cyclegan",
    "transformer",
    "resnet50",
    "resnet18",
    "a3c",
)


@dataclass
class PhillyTraceGenerator:
    """Configurable generator for Philly-like traces."""

    num_jobs: int = 400
    jobs_per_hour: float = 6.0
    seed: int = 0
    models: Sequence[str] = tuple(CONSOLIDATION_PREFERENCE_ORDER)
    gpu_demand_mix: Dict[int, float] = field(default_factory=lambda: dict(DEFAULT_GPU_DEMAND_MIX))
    median_duration_hours: float = 3.0
    duration_sigma: float = 1.5
    min_duration_hours: float = 0.25
    max_duration_hours: float = 200.0
    placement_sensitive_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ConfigurationError("num_jobs must be >= 1")
        if self.jobs_per_hour <= 0:
            raise ConfigurationError("jobs_per_hour must be > 0")
        if abs(sum(self.gpu_demand_mix.values()) - 1.0) > 1e-6:
            raise ConfigurationError("gpu_demand_mix probabilities must sum to 1")
        if self.placement_sensitive_count is not None and not (
            0 <= self.placement_sensitive_count <= len(self.models)
        ):
            raise ConfigurationError(
                "placement_sensitive_count must be between 0 and the number of models"
            )

    # ------------------------------------------------------------------

    def _sample_gpus(self, rng: random.Random) -> int:
        roll = rng.random()
        cumulative = 0.0
        for gpus, probability in sorted(self.gpu_demand_mix.items()):
            cumulative += probability
            if roll <= cumulative:
                return gpus
        return max(self.gpu_demand_mix)

    def _sample_duration(self, rng: random.Random) -> float:
        import math

        mu = math.log(self.median_duration_hours * 3600.0)
        duration = rng.lognormvariate(mu, self.duration_sigma)
        return min(
            self.max_duration_hours * 3600.0,
            max(self.min_duration_hours * 3600.0, duration),
        )

    def _is_placement_sensitive(self, model: ModelProfile) -> bool:
        if self.placement_sensitive_count is None:
            return model.placement_sensitive
        sensitive = set(CONSOLIDATION_PREFERENCE_ORDER[: self.placement_sensitive_count])
        return model.name in sensitive

    def _comm_intensity(self, model: ModelProfile, sensitive: bool) -> float:
        if self.placement_sensitive_count is None:
            return model.comm_intensity
        # When the experiment overrides the sensitivity mix, the execution model
        # must agree with the override: sensitive jobs pay a real penalty when
        # fragmented, insensitive jobs barely notice.
        return max(0.5, model.comm_intensity) if sensitive else min(0.08, model.comm_intensity)

    def _make_job(self, index: int, arrival: float, rng: random.Random) -> Job:
        model = get_model(rng.choice(list(self.models)))
        sensitive = self._is_placement_sensitive(model)
        return Job(
            job_id=index,
            arrival_time=arrival,
            num_gpus=self._sample_gpus(rng),
            duration=self._sample_duration(rng),
            model_name=model.name,
            iteration_time=model.iteration_time,
            scaling=model.scaling_profile(),
            placement_sensitive=sensitive,
            skew=model.skew,
            comm_intensity=self._comm_intensity(model, sensitive),
            cpu_demand_per_gpu=model.cpu_demand_per_gpu,
            mem_demand_per_gpu=model.mem_demand_per_gpu,
            max_batch_scale=model.max_batch_scale,
            user=f"user-{rng.randrange(16)}",
        )

    def iter_jobs(self) -> Iterator[Job]:
        """Lazily yield the trace's jobs in ``(arrival_time, job_id)`` order.

        Identical RNG draw sequence to :meth:`generate` -- the two produce the
        same jobs bit-for-bit -- but O(1) memory: streaming federation runs
        (``ParallelFederationEngine.run_stream``) consume million-job traces
        through this without the parent process ever holding the trace.
        """
        rng = random.Random(self.seed)
        mean_inter_arrival = 3600.0 / self.jobs_per_hour
        arrival = 0.0
        for index in range(self.num_jobs):
            yield self._make_job(index, arrival, rng)
            arrival += rng.expovariate(1.0 / mean_inter_arrival)

    def generate(self) -> Trace:
        return Trace(
            jobs=list(self.iter_jobs()),
            name=f"philly-{self.jobs_per_hour:g}jph-seed{self.seed}",
        )


def generate_philly_trace(
    num_jobs: int = 400,
    jobs_per_hour: float = 6.0,
    seed: int = 0,
    tracked_window: Optional[tuple] = None,
    **kwargs,
) -> Trace:
    """Convenience wrapper mirroring the paper's usage.

    ``tracked_window`` is an ``(start, end)`` index pair selecting the
    steady-state jobs whose JCT/responsiveness the experiment reports (the
    paper uses jobs 3000-4000 of the full trace; scaled-down traces use a
    proportionally smaller window).
    """
    trace = PhillyTraceGenerator(
        num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed, **kwargs
    ).generate()
    if tracked_window is not None:
        trace.tracked_range = tracked_window
    return trace
