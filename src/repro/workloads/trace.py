"""The workload trace abstraction shared by all generators and parsers.

A trace is an ordered stream of job submissions (arrival time, requested GPUs,
isolated duration, model).  The Blox paper tracks a "steady-state" window of
job ids for its load-sweep experiments; :meth:`Trace.tracked_ids` exposes the
same mechanism.  Because simulations mutate job objects, experiments that run
the same trace under several policies must use :meth:`Trace.fresh_jobs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.exceptions import ConfigurationError
from repro.core.job import Job


@dataclass
class Trace:
    """An immutable-by-convention list of jobs plus the tracked steady-state window."""

    jobs: List[Job]
    name: str = "trace"
    tracked_range: Optional[tuple] = None  # (start_index, end_index) into the job list
    #: Explicit tracked job ids.  Takes precedence over ``tracked_range``;
    #: used by trace transformations (spike injection) whose added jobs
    #: interleave with the original arrivals, where an index window would
    #: silently re-target to different jobs after the re-sort.
    tracked_job_ids: Optional[tuple] = None

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ConfigurationError("a trace must contain at least one job")
        self.jobs = sorted(self.jobs, key=lambda j: (j.arrival_time, j.job_id))
        if self.tracked_range is not None:
            start, end = self.tracked_range
            if not (0 <= start < end <= len(self.jobs)):
                raise ConfigurationError(
                    f"tracked_range {self.tracked_range} out of bounds for {len(self.jobs)} jobs"
                )
        if self.tracked_job_ids is not None:
            known = {job.job_id for job in self.jobs}
            missing = [i for i in self.tracked_job_ids if i not in known]
            if missing:
                raise ConfigurationError(
                    f"tracked_job_ids reference jobs not in the trace: {missing}"
                )

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    # ------------------------------------------------------------------

    def fresh_jobs(self) -> List[Job]:
        """Jobs with reset dynamic state, safe to hand to a new simulation."""
        return [job.copy_static() for job in self.jobs]

    def tracked_ids(self) -> List[int]:
        """Ids of the jobs whose JCT/responsiveness the experiment reports."""
        if self.tracked_job_ids is not None:
            return list(self.tracked_job_ids)
        if self.tracked_range is None:
            return [job.job_id for job in self.jobs]
        start, end = self.tracked_range
        return [job.job_id for job in self.jobs[start:end]]

    def with_tracked_range(self, start: int, end: int) -> "Trace":
        return Trace(jobs=self.fresh_jobs(), name=self.name, tracked_range=(start, end))

    # ------------------------------------------------------------------
    # Aggregate statistics (used in tests and for sanity-checking generators)
    # ------------------------------------------------------------------

    def duration_hours(self) -> float:
        """Span between the first and last arrival, in hours."""
        arrivals = [j.arrival_time for j in self.jobs]
        return (max(arrivals) - min(arrivals)) / 3600.0

    def average_gpu_demand(self) -> float:
        return sum(j.num_gpus for j in self.jobs) / len(self.jobs)

    def average_duration_hours(self) -> float:
        return sum(j.duration for j in self.jobs) / len(self.jobs) / 3600.0

    def offered_load(self, total_gpus: int) -> float:
        """Average fraction of the cluster the trace demands (>1 means oversubscribed)."""
        if total_gpus <= 0:
            raise ConfigurationError("total_gpus must be > 0")
        span_seconds = max(j.arrival_time for j in self.jobs) - min(
            j.arrival_time for j in self.jobs
        )
        span_seconds = max(span_seconds, 1.0)
        gpu_seconds = sum(j.num_gpus * j.duration for j in self.jobs)
        return gpu_seconds / (span_seconds * total_gpus)

    def subset(self, max_jobs: int) -> "Trace":
        """First ``max_jobs`` jobs of the trace (used to scale experiments down)."""
        if max_jobs < 1:
            raise ConfigurationError("max_jobs must be >= 1")
        jobs = [job.copy_static() for job in self.jobs[:max_jobs]]
        return Trace(jobs=jobs, name=f"{self.name}-first{max_jobs}")
