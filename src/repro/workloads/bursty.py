"""Bursty and spiky workload variants used by the composition case studies.

Two patterns from the paper:

* §5.1 injects an extra 16 short jobs during one hour of every day on top of
  the Philly trace ("workload spikes", Fig. 13) -- :func:`add_daily_spike`.
* §5.2 evaluates the automatic synthesizer on a "bursty" trace where, every
  four hours, the load doubles with short jobs for two consecutive hours --
  :func:`make_bursty_trace`.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.workloads.models import get_model, model_names
from repro.workloads.philly import PhillyTraceGenerator
from repro.workloads.trace import Trace


def _make_short_job(job_id: int, arrival: float, rng: random.Random, min_minutes: float, max_minutes: float) -> Job:
    model = get_model(rng.choice(model_names()))
    return Job(
        job_id=job_id,
        arrival_time=arrival,
        num_gpus=rng.choice([1, 1, 1, 2, 4]),
        duration=rng.uniform(min_minutes, max_minutes) * 60.0,
        model_name=model.name,
        iteration_time=model.iteration_time,
        scaling=model.scaling_profile(),
        placement_sensitive=model.placement_sensitive,
        skew=model.skew,
        comm_intensity=model.comm_intensity,
        cpu_demand_per_gpu=model.cpu_demand_per_gpu,
        mem_demand_per_gpu=model.mem_demand_per_gpu,
        max_batch_scale=model.max_batch_scale,
        user="burst",
    )


def _kept_tracking(trace: Trace):
    """Tracked window of the original trace, carried by job id.

    Injected spike jobs interleave with the original arrivals, so an
    index-based ``tracked_range`` would re-target to different jobs (possibly
    the spikes themselves) after the merged list is re-sorted; pinning the
    original tracked *ids* keeps the reported population identical.  ``None``
    when the original trace tracked everything -- the spiked trace then
    tracks everything too, spikes included.
    """
    if trace.tracked_range is None and trace.tracked_job_ids is None:
        return None
    return tuple(trace.tracked_ids())


def add_daily_spike(
    trace: Trace,
    jobs_per_spike: int = 16,
    spike_hour: float = 10.0,
    seed: int = 0,
    min_minutes: float = 10.0,
    max_minutes: float = 60.0,
) -> Trace:
    """Inject ``jobs_per_spike`` short jobs during one hour of every simulated day."""
    if jobs_per_spike < 0:
        raise ConfigurationError("jobs_per_spike must be >= 0")
    rng = random.Random(seed)
    jobs: List[Job] = trace.fresh_jobs()
    next_id = max(j.job_id for j in jobs) + 1
    span = max(j.arrival_time for j in jobs)
    day = 0
    while day * 86400.0 < span:
        spike_start = day * 86400.0 + spike_hour * 3600.0
        if spike_start < span:
            for _ in range(jobs_per_spike):
                arrival = spike_start + rng.uniform(0.0, 3600.0)
                jobs.append(_make_short_job(next_id, arrival, rng, min_minutes, max_minutes))
                next_id += 1
        day += 1
    return Trace(jobs=jobs, name=f"{trace.name}-spiked", tracked_job_ids=_kept_tracking(trace))


def add_spike(
    trace: Trace,
    start_time: float,
    num_jobs: int,
    duration_seconds: float = 3600.0,
    seed: int = 0,
    min_minutes: float = 10.0,
    max_minutes: float = 60.0,
) -> Trace:
    """Inject one load spike: ``num_jobs`` short jobs arriving in a window.

    The one-shot building block behind scenario load-spike timelines (see
    :mod:`repro.scenarios.spec`): arrivals are sampled uniformly in
    ``[start_time, start_time + duration_seconds)`` from ``seed`` alone, so
    the same call always extends the trace with the same jobs.
    """
    if num_jobs < 0:
        raise ConfigurationError("num_jobs must be >= 0")
    if duration_seconds <= 0:
        raise ConfigurationError("duration_seconds must be > 0")
    rng = random.Random(seed)
    jobs: List[Job] = trace.fresh_jobs()
    next_id = max(j.job_id for j in jobs) + 1
    for _ in range(num_jobs):
        arrival = start_time + rng.uniform(0.0, duration_seconds)
        jobs.append(_make_short_job(next_id, arrival, rng, min_minutes, max_minutes))
        next_id += 1
    return Trace(jobs=jobs, name=f"{trace.name}-spike", tracked_job_ids=_kept_tracking(trace))


def make_bursty_trace(
    num_jobs: int = 300,
    base_jobs_per_hour: float = 8.0,
    burst_every_hours: float = 4.0,
    burst_length_hours: float = 2.0,
    burst_multiplier: float = 2.0,
    seed: int = 0,
) -> Trace:
    """A Philly-like base load with periodic bursts of short jobs (§5.2).

    Every ``burst_every_hours`` the generator adds ``burst_multiplier`` times
    the base load of short jobs (10-60 minute runtimes) for
    ``burst_length_hours`` consecutive hours.
    """
    if burst_every_hours <= 0 or burst_length_hours <= 0:
        raise ConfigurationError("burst period and length must be > 0")
    base = PhillyTraceGenerator(
        num_jobs=num_jobs, jobs_per_hour=base_jobs_per_hour, seed=seed
    ).generate()
    rng = random.Random(seed + 1)
    jobs = base.fresh_jobs()
    next_id = max(j.job_id for j in jobs) + 1
    span = max(j.arrival_time for j in jobs)
    burst_rate = base_jobs_per_hour * burst_multiplier
    t = 0.0
    while t < span:
        burst_end = min(t + burst_length_hours * 3600.0, span)
        expected_jobs = int(round(burst_rate * (burst_end - t) / 3600.0))
        for _ in range(expected_jobs):
            arrival = rng.uniform(t, burst_end)
            jobs.append(_make_short_job(next_id, arrival, rng, 10.0, 60.0))
            next_id += 1
        t += burst_every_hours * 3600.0
    return Trace(jobs=jobs, name=f"bursty-{base_jobs_per_hour:g}jph-seed{seed}")
