"""Tiresias-like workload trace generator.

The Tiresias open-source simulator ships the ``csv-60`` trace: roughly sixty
jobs with a strongly bimodal service distribution (many short exploratory jobs
and a handful of very long production runs), which is exactly the regime where
discretised LAS shines.  This generator reproduces that shape: a configurable
fraction of "short" jobs (tens of minutes to a couple of hours) and a tail of
"long" jobs (tens of hours), with GPU demands skewed towards distributed jobs
more than the Philly mix (Tiresias targets distributed training).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.workloads.models import get_model, model_names
from repro.workloads.trace import Trace


def generate_tiresias_trace(
    num_jobs: int = 60,
    jobs_per_hour: float = 6.0,
    short_fraction: float = 0.7,
    seed: int = 0,
    tracked_window: Optional[tuple] = None,
) -> Trace:
    """Generate a bimodal (short/long) trace in the style of Tiresias' csv-60."""
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if not 0.0 <= short_fraction <= 1.0:
        raise ConfigurationError("short_fraction must be in [0, 1]")

    rng = random.Random(seed)
    names = model_names()
    mean_inter_arrival = 3600.0 / jobs_per_hour
    arrival = 0.0
    jobs = []
    for index in range(num_jobs):
        model = get_model(rng.choice(names))
        if rng.random() < short_fraction:
            duration = rng.uniform(0.3, 2.5) * 3600.0
        else:
            duration = rng.uniform(10.0, 60.0) * 3600.0
        gpus = rng.choice([1, 1, 2, 2, 4, 4, 8, 16])
        jobs.append(
            Job(
                job_id=index,
                arrival_time=arrival,
                num_gpus=gpus,
                duration=duration,
                model_name=model.name,
                iteration_time=model.iteration_time,
                scaling=model.scaling_profile(),
                placement_sensitive=model.placement_sensitive,
                skew=model.skew,
                comm_intensity=model.comm_intensity,
                cpu_demand_per_gpu=model.cpu_demand_per_gpu,
                mem_demand_per_gpu=model.mem_demand_per_gpu,
                max_batch_scale=model.max_batch_scale,
            )
        )
        arrival += rng.expovariate(1.0 / mean_inter_arrival)
    trace = Trace(jobs=jobs, name=f"tiresias-{num_jobs}jobs-seed{seed}")
    if tracked_window is not None:
        trace.tracked_range = tracked_window
    return trace
