"""CSV trace parsing and serialisation.

The Blox paper highlights that adding new workload parsers was part of
implementing Pollux and Synergy (their traces use a different schema).  We
support a simple canonical schema -- ``job_id, arrival_time, num_gpus,
duration, model_name`` -- which is enough to round-trip any trace produced by
the generators; model-specific profile fields are re-hydrated from the model
catalogue on load.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from repro.core.exceptions import TraceFormatError
from repro.core.job import Job
from repro.workloads.models import PHILLY_MODELS, get_model
from repro.workloads.trace import Trace

REQUIRED_COLUMNS = ("job_id", "arrival_time", "num_gpus", "duration", "model_name")


def save_trace_csv(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` in the canonical CSV schema; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(REQUIRED_COLUMNS)
        for job in trace.jobs:
            writer.writerow(
                [job.job_id, f"{job.arrival_time:.3f}", job.num_gpus, f"{job.duration:.3f}", job.model_name]
            )
    return path


def load_trace_csv(path: Union[str, Path], name: str = "") -> Trace:
    """Load a trace from the canonical CSV schema.

    Raises :class:`~repro.core.exceptions.TraceFormatError` when columns are
    missing or values cannot be parsed, naming the offending row.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    jobs: List[Job] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or any(c not in reader.fieldnames for c in REQUIRED_COLUMNS):
            raise TraceFormatError(
                f"trace {path} is missing required columns; expected {REQUIRED_COLUMNS}"
            )
        for row_number, row in enumerate(reader, start=2):
            try:
                model_name = row["model_name"].strip().lower()
                if model_name in PHILLY_MODELS:
                    profile = get_model(model_name)
                    job = Job(
                        job_id=int(row["job_id"]),
                        arrival_time=float(row["arrival_time"]),
                        num_gpus=int(row["num_gpus"]),
                        duration=float(row["duration"]),
                        model_name=profile.name,
                        iteration_time=profile.iteration_time,
                        scaling=profile.scaling_profile(),
                        placement_sensitive=profile.placement_sensitive,
                        skew=profile.skew,
                        comm_intensity=profile.comm_intensity,
                        cpu_demand_per_gpu=profile.cpu_demand_per_gpu,
                        mem_demand_per_gpu=profile.mem_demand_per_gpu,
                        max_batch_scale=profile.max_batch_scale,
                    )
                else:
                    job = Job(
                        job_id=int(row["job_id"]),
                        arrival_time=float(row["arrival_time"]),
                        num_gpus=int(row["num_gpus"]),
                        duration=float(row["duration"]),
                        model_name=model_name or "generic",
                    )
            except (KeyError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{row_number}: could not parse row: {exc}") from exc
            jobs.append(job)
    if not jobs:
        raise TraceFormatError(f"trace {path} contains no jobs")
    return Trace(jobs=jobs, name=name or path.stem)
